"""Integration: every example script must run clean end-to-end.

Examples double as executable documentation and as acceptance tests — each
contains its own assertions about the expected outcome (burst found,
suspects flagged, streaming matches offline, ...).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=EXAMPLES_DIR.parent,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed\nstdout:\n{completed.stdout}\n"
        f"stderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} produced no output"


def test_every_example_is_covered():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "fraud_detection",
        "road_congestion",
        "algorithm_comparison",
        "streaming_monitor",
        "store_pipeline",
        "aml_simulation",
    } <= names
