"""RetryPolicy unit tests (fake clock — no real sleeping) and the
client retry loop against a live server that sheds then recovers."""

import asyncio
import random
import threading

import pytest

from repro.service import (
    BurstingFlowService,
    OverloadedError,
    RetryPolicy,
    ServiceClient,
    StaleEpochError,
)
from repro.temporal import TemporalFlowNetwork

SEED_EDGES = [
    ("s", "a", 1, 4.0),
    ("a", "t", 2, 3.0),
    ("s", "b", 3, 5.0),
    ("b", "t", 4, 2.0),
]


class _PinnedRng:
    """random.Random stand-in returning a fixed stream of floats."""

    def __init__(self, values):
        self._values = list(values)

    def random(self):
        return self._values.pop(0) if self._values else 0.5


class TestRetryPolicyDelays:
    def test_exponential_growth_without_hint(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0
        )
        delays = [policy.delay_for(attempt) for attempt in range(4)]
        assert delays == [0.1, 0.2, 0.4, 0.8]

    def test_max_delay_caps_the_curve(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=3.0, jitter=0.0)
        assert policy.delay_for(5) == 3.0

    def test_retry_after_ms_is_a_floor(self):
        policy = RetryPolicy(base_delay=0.01, jitter=0.0)
        # Hint above the exponential term: the hint wins.
        assert policy.delay_for(0, retry_after_ms=500) == 0.5
        # Hint below it: the exponential term wins.
        policy_big = RetryPolicy(base_delay=2.0, jitter=0.0)
        assert policy_big.delay_for(0, retry_after_ms=100) == 2.0

    def test_hint_floor_may_exceed_max_delay(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.05, jitter=0.0)
        assert policy.delay_for(9, retry_after_ms=2000) == 2.0

    def test_jitter_is_symmetric_and_bounded(self):
        # rng.random() = 1.0 -> +jitter, 0.0 -> -jitter.
        high = RetryPolicy(
            base_delay=1.0, jitter=0.25, rng=_PinnedRng([1.0])
        )
        low = RetryPolicy(
            base_delay=1.0, jitter=0.25, rng=_PinnedRng([0.0])
        )
        assert high.delay_for(0) == pytest.approx(1.25)
        assert low.delay_for(0) == pytest.approx(0.75)

    def test_jittered_delays_stay_within_band(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.2, rng=random.Random(7))
        for attempt in range(6):
            base = min(0.1 * 2.0**attempt, 2.0)
            assert base * 0.8 <= policy.delay_for(attempt) <= base * 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


class _ServerThread:
    """A BurstingFlowService on a daemon thread (blocking-client tests)."""

    def __init__(self, **service_kwargs):
        self.network = TemporalFlowNetwork.from_tuples(SEED_EDGES)
        self.service_kwargs = service_kwargs
        self._ready = threading.Event()
        self._stop = None
        self.address = None

    def __enter__(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10.0), "server failed to start"
        return self

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10.0)

    def _run(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self.service = BurstingFlowService(self.network, **self.service_kwargs)
            self.address = await self.service.start("127.0.0.1", 0)
            self._ready.set()
            await self._stop.wait()
            await self.service.stop()

        asyncio.run(main())


class TestClientRetryLoop:
    def test_overloaded_retries_until_capacity_frees_up(self):
        """Fake clock: the sleeps the client takes are recorded, never
        slept, and capacity 'frees up' after two shed attempts."""
        with _ServerThread(max_pending=1) as server:
            host, port = server.address
            slept = []
            # Hold the single admission slot so queries are shed...
            server.service.admission.admit()

            def fake_sleep(seconds):
                slept.append(seconds)
                if len(slept) == 2:  # ...until the second backoff.
                    server.service.admission.release()

            policy = RetryPolicy(
                max_attempts=4, base_delay=0.001, jitter=0.0
            )
            with ServiceClient(
                host, port, retry=policy, sleep=fake_sleep
            ) as client:
                reply = client.query("s", "t", 2)
            assert reply.density > 0
            assert len(slept) == 2
            # Each sleep honoured the server's retry_after_ms hint
            # (25ms * (1 + inflight) with one slot held = 50ms floor).
            assert all(s >= 0.050 for s in slept)

    def test_budget_exhaustion_raises_the_typed_error(self):
        with _ServerThread(max_pending=1) as server:
            host, port = server.address
            server.service.admission.admit()  # never released
            slept = []
            policy = RetryPolicy(max_attempts=3, base_delay=0.001, jitter=0.0)
            with ServiceClient(
                host, port, retry=policy, sleep=slept.append
            ) as client:
                with pytest.raises(OverloadedError):
                    client.query("s", "t", 2)
            assert len(slept) == 2  # max_attempts - 1 backoffs
            server.service.admission.release()

    def test_stale_retries_until_replication_catches_up(self):
        """A direct client using ``min_epoch`` for read-your-writes
        waits out replication instead of hard-failing: typed ``stale``
        replies retry under the same policy as ``overloaded`` ones."""
        with _ServerThread() as server:
            host, port = server.address
            slept = []

            def fake_sleep(seconds):
                slept.append(seconds)
                # "Replication catches up" between the attempts.
                with ServiceClient(host, port) as writer:
                    writer.append([("b", "t", 9, 1.0)])

            policy = RetryPolicy(max_attempts=3, base_delay=0.001, jitter=0.0)
            with ServiceClient(
                host, port, retry=policy, sleep=fake_sleep
            ) as client:
                fence = client.ping() + 1
                reply = client.query("s", "t", 2, min_epoch=fence)
            assert reply.epoch >= fence
            assert len(slept) == 1
            # The backoff honoured the server's 25ms stale hint.
            assert slept[0] >= 0.025

    def test_stale_budget_exhaustion_raises_the_typed_error(self):
        with _ServerThread() as server:
            host, port = server.address
            slept = []
            policy = RetryPolicy(max_attempts=3, base_delay=0.001, jitter=0.0)
            with ServiceClient(
                host, port, retry=policy, sleep=slept.append
            ) as client:
                with pytest.raises(StaleEpochError):
                    client.query("s", "t", 2, min_epoch=10**9)
            assert len(slept) == 2  # max_attempts - 1 backoffs

    def test_no_policy_means_no_retry(self):
        with _ServerThread(max_pending=1) as server:
            host, port = server.address
            server.service.admission.admit()
            with ServiceClient(host, port) as client:
                with pytest.raises(OverloadedError):
                    client.query("s", "t", 2)
            server.service.admission.release()


class TestSustainedOverload:
    """The retry loop when the server sheds for a long stretch, not one
    blip: every backoff honours the live ``retry_after_ms`` hint, the
    jittered delays stay inside the configured band while never dipping
    below the hint, the budget bounds total attempts, and exhaustion
    surfaces the typed error — per client, across many clients at once."""

    ATTEMPTS = 5

    def test_every_backoff_honours_the_live_hint(self):
        with _ServerThread(max_pending=2) as server:
            host, port = server.address
            # Both slots held for the whole test: sustained overload.
            server.service.admission.admit()
            server.service.admission.admit()
            hints = []
            slept = []

            def fake_sleep(seconds):
                # Snapshot the hint the server would currently send
                # (25ms per (1 + inflight)); the sleep must cover it.
                hints.append(0.025 * (1 + server.service.admission.inflight))
                slept.append(seconds)

            policy = RetryPolicy(
                max_attempts=self.ATTEMPTS,
                base_delay=0.001,
                jitter=0.2,
                rng=random.Random(3),
            )
            with ServiceClient(
                host, port, retry=policy, sleep=fake_sleep
            ) as client:
                with pytest.raises(OverloadedError):
                    client.query("s", "t", 2)
            assert len(slept) == self.ATTEMPTS - 1  # budget-bounded
            assert all(
                got >= hint - 1e-9 for got, hint in zip(slept, hints)
            ), f"a backoff undercut the server hint: {slept} vs {hints}"
            server.service.admission.release()
            server.service.admission.release()

    def test_jitter_decorrelates_but_respects_the_floor(self):
        policy = RetryPolicy(
            max_attempts=4,
            base_delay=0.2,
            multiplier=1.0,
            jitter=0.25,
            rng=random.Random(11),
        )
        delays = [policy.delay_for(a, retry_after_ms=100) for a in range(20)]
        # Jittered: constant parameters still give distinct delays...
        assert len(set(delays)) > 1
        # ...within the ±25% band around the 0.2s exponential term...
        assert all(0.15 <= delay <= 0.25 for delay in delays)
        # ...and the server hint stays a hard floor under the band.
        floored = [policy.delay_for(0, retry_after_ms=400) for _ in range(20)]
        assert all(delay >= 0.4 for delay in floored)

    def test_many_clients_exhaust_independently_with_typed_errors(self):
        with _ServerThread(max_pending=1) as server:
            host, port = server.address
            server.service.admission.admit()  # sustained: never released
            failures = []
            sleeps_per_client = {}

            def worker(index):
                slept = []
                policy = RetryPolicy(
                    max_attempts=3, base_delay=0.001, jitter=0.0
                )
                try:
                    with ServiceClient(
                        host, port, retry=policy, sleep=slept.append
                    ) as client:
                        client.query("s", "t", 2)
                except OverloadedError as exc:
                    failures.append(exc)
                sleeps_per_client[index] = slept

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)
            # Every client got the typed error after its own budget —
            # no bare socket errors, no unbounded retry storms.
            assert len(failures) == 6
            assert all(exc.retry_after_ms > 0 for exc in failures)
            assert all(
                len(slept) == 2 for slept in sleeps_per_client.values()
            )
            server.service.admission.release()

    def test_recovery_after_sustained_shed(self):
        """Once the overload clears, the same client+policy succeeds
        with no residual state from the shed streak."""
        with _ServerThread(max_pending=1) as server:
            host, port = server.address
            server.service.admission.admit()
            policy = RetryPolicy(max_attempts=2, base_delay=0.001, jitter=0.0)
            with ServiceClient(
                host, port, retry=policy, sleep=lambda _s: None
            ) as client:
                with pytest.raises(OverloadedError):
                    client.query("s", "t", 2)
                server.service.admission.release()
                reply = client.query("s", "t", 2)
                assert reply.density > 0
