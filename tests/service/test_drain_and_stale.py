"""Replica-mode protocol surface: min_epoch fencing and graceful drain."""

import asyncio

import pytest

from repro.service import (
    BurstingFlowService,
    DrainReply,
    DrainRequest,
    ErrorReply,
    QueryRequest,
    StaleEpochError,
    parse_reply,
    parse_request,
)
from repro.service.protocol import (
    ERROR_OVERLOADED,
    ERROR_STALE,
    raise_for_error,
    reply_payload,
    request_payload,
)
from repro.temporal import TemporalFlowNetwork

SEED_EDGES = [
    ("s", "a", 1, 4.0),
    ("a", "t", 2, 3.0),
    ("s", "b", 3, 5.0),
    ("b", "t", 4, 2.0),
]


def _service(**kwargs):
    return BurstingFlowService(
        TemporalFlowNetwork.from_tuples(SEED_EDGES), **kwargs
    )


class TestProtocolRoundTrips:
    def test_min_epoch_round_trips(self):
        request = QueryRequest(
            id="q1", source="s", sink="t", delta=2, min_epoch=7
        )
        parsed = parse_request(request_payload(request))
        assert parsed.min_epoch == 7

    def test_min_epoch_omitted_by_default(self):
        payload = request_payload(
            QueryRequest(id="q1", source="s", sink="t", delta=2)
        )
        assert "min_epoch" not in payload
        assert parse_request(payload).min_epoch is None

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "7"])
    def test_min_epoch_validation(self, bad):
        from repro.service.protocol import ProtocolError

        payload = request_payload(
            QueryRequest(id="q1", source="s", sink="t", delta=2)
        )
        payload["min_epoch"] = bad
        with pytest.raises(ProtocolError):
            parse_request(payload)

    def test_drain_request_and_reply_round_trip(self):
        parsed = parse_request({"v": 1, "id": "d1", "op": "drain"})
        assert isinstance(parsed, DrainRequest)
        reply = parse_reply(
            reply_payload(DrainReply(id="d1", draining=True, inflight=3))
        )
        assert isinstance(reply, DrainReply)
        assert reply.draining and reply.inflight == 3

    def test_stale_error_round_trips_epoch_and_raises_typed(self):
        wire = reply_payload(
            ErrorReply("q1", ERROR_STALE, "behind", retry_after_ms=25, epoch=4)
        )
        reply = parse_reply(wire)
        assert reply.kind == ERROR_STALE and reply.epoch == 4
        with pytest.raises(StaleEpochError) as excinfo:
            raise_for_error(reply)
        assert excinfo.value.epoch == 4


class TestServerBehaviour:
    def test_min_epoch_behind_gets_stale_error(self):
        async def scenario():
            service = _service()
            async with service:
                current = service.network.epoch
                reply = await service.handle_request(
                    QueryRequest(
                        id="q1", source="s", sink="t", delta=2,
                        min_epoch=current + 5,
                    )
                )
                assert isinstance(reply, ErrorReply)
                assert reply.kind == ERROR_STALE
                assert reply.epoch == current
                # At or below the current epoch the query is served.
                served = await service.handle_request(
                    QueryRequest(
                        id="q2", source="s", sink="t", delta=2,
                        min_epoch=current,
                    )
                )
                assert served.ok

        asyncio.run(scenario())

    def test_drain_rejects_new_work_and_flags_health(self):
        async def scenario():
            service = _service(replica_id="r0")
            async with service:
                assert not service.draining
                ack = await service.handle_request(DrainRequest(id="d1"))
                assert isinstance(ack, DrainReply) and ack.draining
                assert service.draining
                shed = await service.handle_request(
                    QueryRequest(id="q1", source="s", sink="t", delta=2)
                )
                assert isinstance(shed, ErrorReply)
                assert shed.kind == ERROR_OVERLOADED
                snapshot = service.snapshot()
                assert snapshot["draining"] is True
                assert snapshot["replica"] == "r0"
                assert await service.drain(timeout=1.0)

        asyncio.run(scenario())

    def test_http_drain_and_healthz(self):
        async def scenario():
            service = _service(replica_id="r1")
            host, port = await service.start("127.0.0.1", 0)
            try:
                import json

                async def http(method, path):
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(
                        f"{method} {path} HTTP/1.1\r\n"
                        f"Host: x\r\nContent-Length: 0\r\n\r\n".encode()
                    )
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    head, _, body = raw.partition(b"\r\n\r\n")
                    status = int(head.split(b" ", 2)[1])
                    return status, json.loads(body)

                status, health = await http("GET", "/healthz")
                assert status == 200
                assert health == {
                    "ok": True, "epoch": service.network.epoch,
                    "draining": False, "replica": "r1",
                }
                status, ack = await http("POST", "/drain")
                assert status == 200 and ack["draining"] is True
                status, health = await http("GET", "/healthz")
                assert status == 503 and health["ok"] is False
            finally:
                await service.stop()

        asyncio.run(scenario())
