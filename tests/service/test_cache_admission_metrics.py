"""Tests for the result cache, admission controller and metrics."""

import pytest

from repro.service.admission import AdmissionController
from repro.service.cache import ResultCache
from repro.service.metrics import (
    LatencyHistogram,
    ServiceMetrics,
    merge_latencies,
)
from repro.service.protocol import DeadlineExceededError, OverloadedError


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


KEY = (3, "s", "t", 2, "bfq*", None)
ANSWER = (300.0, (10, 13), 900.0)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get(KEY) is None
        cache.put(KEY, ANSWER)
        assert cache.get(KEY) == ANSWER
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put((1,), "a")
        cache.put((2,), "b")
        cache.get((1,))  # bump (1,) to most-recent
        cache.put((3,), "c")  # evicts (2,)
        assert cache.get((2,)) is None
        assert cache.get((1,)) == "a"
        assert cache.get((3,)) == "c"
        assert cache.evictions == 1

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl=10.0, clock=clock)
        cache.put(KEY, ANSWER)
        clock.advance(9.9)
        assert cache.get(KEY) == ANSWER
        clock.advance(0.2)
        assert cache.get(KEY) is None
        assert cache.expirations == 1

    def test_purge_epochs_below_drops_only_stale(self):
        cache = ResultCache(capacity=8)
        cache.put((1, "s", "t", 2), "old")
        cache.put((2, "s", "t", 2), "older-still-stale")
        cache.put((3, "s", "t", 2), "fresh")
        dropped = cache.purge_epochs_below(3)
        assert dropped == 2
        assert cache.invalidations == 2
        assert len(cache) == 1
        assert cache.get((3, "s", "t", 2)) == "fresh"

    def test_clear_counts_invalidations(self):
        cache = ResultCache(capacity=4)
        cache.put(KEY, ANSWER)
        cache.clear()
        assert len(cache) == 0
        assert cache.invalidations == 1

    def test_snapshot_schema(self):
        cache = ResultCache(capacity=4)
        cache.put(KEY, ANSWER)
        cache.get(KEY)
        snapshot = cache.snapshot()
        assert snapshot["size"] == 1
        assert snapshot["hits"] == 1
        assert snapshot["hit_rate"] == 1.0

    def test_rejects_bad_sizing(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(capacity=1, ttl=0)


class TestAdmissionController:
    def test_sheds_typed_overloaded_when_full(self):
        admission = AdmissionController(max_pending=2)
        admission.admit()
        admission.admit()
        with pytest.raises(OverloadedError) as excinfo:
            admission.admit()
        assert excinfo.value.retry_after_ms > 0
        assert admission.shed_total == 1
        assert admission.inflight == 2

    def test_release_reopens_admission(self):
        admission = AdmissionController(max_pending=1)
        admission.admit()
        admission.release()
        admission.admit()  # does not raise
        assert admission.admitted_total == 2

    def test_release_without_admit_is_a_bug(self):
        admission = AdmissionController(max_pending=1)
        with pytest.raises(RuntimeError):
            admission.release()

    def test_retry_hint_grows_with_depth(self):
        shallow = AdmissionController(max_pending=1)
        deep = AdmissionController(max_pending=16)
        shallow.admit()
        for _ in range(16):
            deep.admit()
        with pytest.raises(OverloadedError) as few:
            shallow.admit()
        with pytest.raises(OverloadedError) as many:
            deep.admit()
        assert many.value.retry_after_ms > few.value.retry_after_ms

    def test_deadline_uses_default_budget(self):
        clock = FakeClock()
        admission = AdmissionController(
            max_pending=1, default_timeout=5.0, clock=clock
        )
        assert admission.deadline_for(None) == pytest.approx(clock.now + 5.0)

    def test_deadline_caps_requested_budget(self):
        clock = FakeClock()
        admission = AdmissionController(
            max_pending=1, max_timeout=10.0, clock=clock
        )
        assert admission.deadline_for(999.0) == pytest.approx(clock.now + 10.0)

    def test_remaining_charges_the_clock(self):
        clock = FakeClock()
        admission = AdmissionController(max_pending=1, clock=clock)
        deadline = admission.deadline_for(2.0)
        clock.advance(1.5)
        assert admission.remaining(deadline) == pytest.approx(0.5)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError):
            admission.remaining(deadline)


class TestLatencyHistogram:
    def test_quantiles_over_window(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):
            histogram.observe(value / 1000.0)
        assert histogram.count == 100
        assert histogram.quantile(0.5) == pytest.approx(0.051, abs=2e-3)
        assert histogram.quantile(0.99) == pytest.approx(0.100, abs=2e-3)

    def test_empty_quantile_is_none(self):
        assert LatencyHistogram().quantile(0.5) is None
        assert LatencyHistogram().snapshot()["p50_ms"] is None

    def test_window_is_bounded(self):
        histogram = LatencyHistogram(window=4)
        for value in (1.0, 1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 9.0  # old values rolled out
        assert histogram.count == 8  # lifetime count still exact

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.observe(0.010)
        b.observe(0.030)
        merged = merge_latencies([a, b])
        assert merged.count == 2
        assert merged.total_seconds == pytest.approx(0.040)


class TestCoarseHistogramPath:
    """The bounded-memory path selected above EXACT_WINDOW_LIMIT."""

    def test_mode_selection_is_automatic(self):
        from repro.service.metrics import EXACT_WINDOW_LIMIT

        assert LatencyHistogram().exact
        assert LatencyHistogram(window=EXACT_WINDOW_LIMIT).exact
        assert not LatencyHistogram(window=EXACT_WINDOW_LIMIT + 1).exact
        assert not LatencyHistogram(window=1_000_000).exact

    def test_agrees_with_exact_path_within_bucket_error(self):
        """Identical data through both paths: every quantile within the
        coarse path's ~4% relative error (plus the floor bucket)."""
        import random

        from repro.service.metrics import EXACT_WINDOW_LIMIT

        rng = random.Random(10)
        exact = LatencyHistogram(window=EXACT_WINDOW_LIMIT)
        coarse = LatencyHistogram(window=EXACT_WINDOW_LIMIT + 1)
        for _ in range(5000):
            value = rng.lognormvariate(-6.0, 1.5)  # ~2.5ms median spread
            exact.observe(value)
            coarse.observe(value)
        assert exact.count == coarse.count == 5000
        for q in (0.1, 0.5, 0.9, 0.95, 0.99, 0.999):
            want = exact.quantile(q)
            got = coarse.quantile(q)
            assert got == pytest.approx(want, rel=0.05), (q, want, got)

    def test_snapshot_schema_is_identical(self):
        coarse = LatencyHistogram(window=10**6)
        coarse.observe(0.004)
        snapshot = coarse.snapshot()
        assert set(snapshot) == {"count", "mean_ms", "p50_ms", "p95_ms", "p99_ms"}
        assert snapshot["count"] == 1
        assert snapshot["p50_ms"] == pytest.approx(4.0, rel=0.05)
        assert LatencyHistogram(window=10**6).snapshot()["p50_ms"] is None

    def test_memory_is_bounded_by_buckets_not_window(self):
        from repro.service.metrics import _BUCKET_COUNT

        coarse = LatencyHistogram(window=10**9)
        for index in range(50_000):
            coarse.observe((index % 97 + 1) / 1000.0)
        assert coarse._buckets is not None
        assert len(coarse._buckets) == _BUCKET_COUNT
        assert coarse._window is None
        assert coarse.count == 50_000

    def test_extremes_clamp_to_edge_buckets(self):
        coarse = LatencyHistogram(window=10**6)
        coarse.observe(0.0)
        coarse.observe(1e-9)
        coarse.observe(1e6)
        assert coarse.quantile(0.0) > 0.0
        assert coarse.quantile(1.0) >= 1.0

    def test_merge_mixed_modes_stays_bounded(self):
        exact = LatencyHistogram()
        coarse = LatencyHistogram(window=10**6)
        for value in (0.010, 0.020, 0.030):
            exact.observe(value)
            coarse.observe(value)
        merged = merge_latencies([exact, coarse])
        assert not merged.exact
        assert merged.count == 6
        assert merged.quantile(0.5) == pytest.approx(0.020, rel=0.05)
        still_exact = merge_latencies([exact, exact])
        assert still_exact.exact


class TestServiceMetrics:
    def test_snapshot_schema(self):
        metrics = ServiceMetrics()
        metrics.count_request("query")
        metrics.observe_miss()
        metrics.observe_solve("bfq*", 0.004)
        metrics.count_request("query")
        metrics.observe_hit(0.0001)
        metrics.count_error("overloaded")
        metrics.count_error("timeout")
        metrics.observe_append(3)
        metrics.observe_invalidated(2)
        metrics.observe_restart()
        metrics.set_queue_depth(5)
        metrics.set_queue_depth(1)

        snapshot = metrics.snapshot()
        assert snapshot["requests"]["query"] == 2
        assert snapshot["errors"]["overloaded"] == 1
        assert snapshot["cache"]["hits"] == 1
        assert snapshot["cache"]["misses"] == 1
        assert snapshot["cache"]["hit_rate"] == 0.5
        assert snapshot["cache"]["invalidated"] == 2
        assert snapshot["queue"] == {"depth": 1, "high_water": 5, "shed": 1}
        assert snapshot["timeouts"] == 1
        assert snapshot["worker_restarts"] == 1
        assert snapshot["appended_edges"] == 3
        solve = snapshot["latency"]["solve"]["bfq*"]
        assert solve["count"] == 1
        assert solve["p50_ms"] == pytest.approx(4.0)
        assert snapshot["latency"]["cache_hit"]["count"] == 1

    def test_hit_rate_none_before_first_query(self):
        assert ServiceMetrics().cache_hit_rate is None
