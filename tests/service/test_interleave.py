"""Epoch-invalidation correctness under interleaved appends and queries.

The ISSUE acceptance criterion: answers served by the concurrent service
are **exactly equal** (density, interval, flow value) to a fresh
sequential :func:`repro.core.engine.find_bursting_flow`, *including under
interleaved streaming appends*.  The hypothesis test drives randomized
interleavings sequentially; the concurrency test overlaps queries and
appends for real and validates each reply against the network state its
``epoch`` pins down.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BurstingFlowQuery, find_bursting_flow
from repro.service import BurstingFlowService
from repro.service.protocol import AppendRequest, QueryRequest
from repro.temporal import TemporalFlowNetwork

NODES = ["s", "a", "b", "t"]

#: Seed edges touching every node, so queries never hit unknown nodes.
SEED_EDGES = [
    ("s", "a", 1, 4.0),
    ("a", "t", 2, 3.0),
    ("s", "b", 3, 5.0),
    ("b", "t", 4, 2.0),
]


def fresh_triple(edges, source, sink, delta):
    network = TemporalFlowNetwork.from_tuples(edges)
    result = find_bursting_flow(
        network, BurstingFlowQuery(source, sink, delta)
    )
    return (result.density, result.interval, result.flow_value)


edge_strategy = (
    st.tuples(
        st.sampled_from(NODES),
        st.sampled_from(NODES),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=9),
    )
    .filter(lambda e: e[0] != e[1])
    .map(lambda e: (e[0], e[1], e[2], float(e[3])))
)

query_op = st.tuples(
    st.just("query"),
    st.sampled_from(NODES),
    st.sampled_from(NODES),
    st.integers(min_value=1, max_value=6),
).filter(lambda op: op[1] != op[2])

append_op = st.tuples(
    st.just("append"),
    st.lists(edge_strategy, min_size=1, max_size=3),
)


@given(ops=st.lists(st.one_of(query_op, append_op), max_size=10))
@settings(max_examples=30, deadline=None)
def test_interleaved_ops_always_serve_fresh_answers(ops):
    async def scenario():
        network = TemporalFlowNetwork.from_tuples(SEED_EDGES)
        shadow = list(SEED_EDGES)
        async with BurstingFlowService(network) as service:
            last_epoch = -1
            for position, op in enumerate(ops):
                if op[0] == "append":
                    edges = op[1]
                    reply = await service.handle_request(
                        AppendRequest(id=f"a{position}", edges=tuple(edges))
                    )
                    assert reply.ok, reply
                    assert reply.epoch > last_epoch
                    last_epoch = reply.epoch
                    shadow.extend(edges)
                else:
                    _, source, sink, delta = op
                    reply = await service.handle_request(
                        QueryRequest(
                            id=f"q{position}", source=source,
                            sink=sink, delta=delta,
                        )
                    )
                    assert reply.ok, reply
                    served = (reply.density, reply.interval, reply.flow_value)
                    assert served == fresh_triple(shadow, source, sink, delta)

    asyncio.run(scenario())


def test_truly_concurrent_queries_and_appends_pin_one_epoch():
    """Overlapping queries and appends: each reply matches the network
    state its epoch identifies (seed + every append acked at <= epoch)."""

    append_edges = [
        ("s", "a", 5 + i, float(2 + i)) for i in range(4)
    ] + [("a", "b", 6, 3.0), ("b", "t", 9, 4.0)]
    query_specs = [("s", "t", d) for d in (1, 2, 3, 4, 5, 2, 3)]

    async def scenario():
        network = TemporalFlowNetwork.from_tuples(SEED_EDGES)
        async with BurstingFlowService(network) as service:

            async def one_append(index, edge):
                await asyncio.sleep(0.001 * index)
                reply = await service.handle_request(
                    AppendRequest(id=f"a{index}", edges=(edge,))
                )
                assert reply.ok, reply
                return reply.epoch, edge

            async def one_query(index, spec):
                await asyncio.sleep(0.0005 * index)
                source, sink, delta = spec
                reply = await service.handle_request(
                    QueryRequest(
                        id=f"q{index}", source=source, sink=sink, delta=delta
                    )
                )
                assert reply.ok, reply
                return reply.epoch, spec, (
                    reply.density, reply.interval, reply.flow_value
                )

            appends = [
                one_append(i, edge) for i, edge in enumerate(append_edges)
            ]
            queries = [
                one_query(i, spec) for i, spec in enumerate(query_specs)
            ]
            results = await asyncio.gather(*appends, *queries)
            return (
                results[: len(append_edges)],
                results[len(append_edges):],
            )

    append_records, query_records = asyncio.run(scenario())

    # Appends hold the exclusive writer lock, so their acked epochs give
    # the serialization order — and therefore the exact edge set at any
    # epoch: the seed plus every append acked at or before it.
    epochs = [epoch for epoch, _ in append_records]
    assert len(set(epochs)) == len(epochs)

    for query_epoch, (source, sink, delta), served in query_records:
        visible = list(SEED_EDGES) + [
            edge
            for append_epoch, edge in sorted(append_records)
            if append_epoch <= query_epoch
        ]
        assert served == fresh_triple(visible, source, sink, delta), (
            f"query ({source}->{sink}, delta={delta}) at epoch "
            f"{query_epoch} diverged from the state its epoch pins"
        )
