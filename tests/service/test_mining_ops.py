"""Service-tier mining ops: ``scan`` / ``patterns`` over every transport.

The service exposes the mining pipeline end-to-end: POST /scan runs the
funnel against the *served* network (appends made over the wire are
picked up by the scan's sync), GET /patterns reads the durable store,
and a server started without a pattern store answers both with a typed
``invalid`` error instead of a crash.
"""

import asyncio
import json
import urllib.parse
import urllib.request

import pytest

from repro.exceptions import ReproError
from repro.mining import MiningPipeline, PatternStore
from repro.service import BurstingFlowService, ServiceClient
from repro.service.protocol import (
    AppendRequest,
    ErrorReply,
    PatternsReply,
    PatternsRequest,
    ScanReply,
    ScanRequest,
)
from repro.temporal import TemporalFlowNetwork

from tests.mining.conftest import PLANTED_PAIRS, planted_edges


def run(coroutine):
    return asyncio.run(coroutine)


def mining_service(tmp_path, network=None):
    network = network or TemporalFlowNetwork.from_tuples(planted_edges())
    store = PatternStore(tmp_path / "patterns")
    mining = MiningPipeline(network, store)
    return BurstingFlowService(network, mining=mining), store


class TestHandleScan:
    def test_scan_persists_and_rescan_dedupes(self, tmp_path):
        async def scenario():
            service, store = mining_service(tmp_path)
            try:
                async with service:
                    first = await service.handle_request(
                        ScanRequest(id="s1", delta=4)
                    )
                    second = await service.handle_request(
                        ScanRequest(id="s2", delta=4)
                    )
                    return first, second, store.ids()
            finally:
                store.close()

        first, second, ids = run(scenario())
        assert isinstance(first, ScanReply) and first.ok
        assert first.new == len(PLANTED_PAIRS) and first.deduped == 0
        assert second.new == 0 and second.deduped == len(PLANTED_PAIRS)
        assert set(first.new_ids) == ids
        assert first.funnel["amortization"] > 1.0

    def test_wire_append_is_visible_to_the_next_scan(self, tmp_path):
        async def scenario():
            service, store = mining_service(tmp_path)
            try:
                async with service:
                    await service.handle_request(
                        ScanRequest(id="s1", delta=4)
                    )
                    # A hot burst arrives over the wire (not via mining).
                    edges = tuple(
                        ("fresh_s", "fresh_t", 50 + t, 60.0)
                        for t in range(5)
                    )
                    ack = await service.handle_request(
                        AppendRequest(id="a1", edges=edges)
                    )
                    assert ack.ok, ack
                    reply = await service.handle_request(
                        ScanRequest(id="s2", delta=4)
                    )
                    return reply, store.query(source="fresh_s")
            finally:
                store.close()

        reply, fresh = run(scenario())
        assert reply.ok
        assert [r.sink for r in fresh] == ["fresh_t"]
        assert set(reply.new_ids) == {r.pattern_id for r in fresh}

    def test_explicit_pairs_and_persist_all(self, tmp_path):
        async def scenario():
            service, store = mining_service(tmp_path)
            try:
                async with service:
                    reply = await service.handle_request(
                        ScanRequest(
                            id="s1",
                            delta=4,
                            pairs=(("s_star", "t_star"),),
                            persist="all",
                        )
                    )
                    return reply
            finally:
                store.close()

        reply = run(scenario())
        assert reply.ok and reply.new == 1
        assert reply.funnel["candidates"] == 1

    def test_scan_without_mining_is_a_typed_invalid_error(self):
        async def scenario():
            network = TemporalFlowNetwork.from_tuples(planted_edges())
            async with BurstingFlowService(network) as service:
                scan = await service.handle_request(
                    ScanRequest(id="s1", delta=4)
                )
                patterns = await service.handle_request(
                    PatternsRequest(id="g1")
                )
                return scan, patterns

        scan, patterns = run(scenario())
        assert isinstance(scan, ErrorReply) and scan.kind == "invalid"
        assert "mining is not enabled" in scan.message
        assert isinstance(patterns, ErrorReply) and patterns.kind == "invalid"

    def test_mining_over_a_different_network_is_refused(self, tmp_path):
        ours = TemporalFlowNetwork.from_tuples(planted_edges())
        theirs = TemporalFlowNetwork.from_tuples(planted_edges())
        with PatternStore(tmp_path / "patterns") as store:
            mining = MiningPipeline(theirs, store)
            with pytest.raises(ReproError, match="same network"):
                BurstingFlowService(ours, mining=mining)


class TestHandlePatterns:
    def test_filters_pass_through(self, tmp_path):
        async def scenario():
            service, store = mining_service(tmp_path)
            try:
                async with service:
                    await service.handle_request(ScanRequest(id="s1", delta=4))
                    reply = await service.handle_request(
                        PatternsRequest(id="g1", source="s_star", limit=1)
                    )
                    metrics = service.snapshot()
                    return reply, metrics
            finally:
                store.close()

        reply, metrics = run(scenario())
        assert isinstance(reply, PatternsReply) and reply.ok
        assert len(reply.patterns) == 1
        assert reply.patterns[0]["source"] == "s_star"
        assert reply.patterns[0]["pattern_id"].startswith("bf_")
        assert metrics["mining"]["scans"] == 1
        assert metrics["mining"]["patterns"] == len(PLANTED_PAIRS)


class TestWireTransports:
    def test_client_scan_and_patterns_round_trip(self, tmp_path):
        async def scenario():
            service, store = mining_service(tmp_path)
            try:
                async with service:
                    host, port = await service.start()
                    loop = asyncio.get_running_loop()

                    def session():
                        with ServiceClient(host, port) as client:
                            scan = client.scan(4)
                            dense = client.patterns(min_density=1.0, limit=2)
                            return scan, dense

                    return await loop.run_in_executor(None, session)
            finally:
                store.close()

        scan, dense = run(scenario())
        assert isinstance(scan, ScanReply) and scan.new == len(PLANTED_PAIRS)
        assert len(dense) == 2
        assert all(record["density"] >= 1.0 for record in dense)

    def test_http_scan_and_patterns(self, tmp_path):
        async def scenario():
            service, store = mining_service(tmp_path)
            try:
                async with service:
                    host, port = await service.start()
                    loop = asyncio.get_running_loop()
                    base = f"http://{host}:{port}"

                    def session():
                        body = json.dumps(
                            {"v": 1, "id": "s1", "op": "scan", "delta": 4}
                        ).encode()
                        request = urllib.request.Request(
                            f"{base}/scan", data=body,
                            headers={"Content-Type": "application/json"},
                        )
                        with urllib.request.urlopen(request) as response:
                            scan = json.loads(response.read())
                        query = urllib.parse.urlencode(
                            {"min_density": 1.0, "limit": 2}
                        )
                        with urllib.request.urlopen(
                            f"{base}/patterns?{query}"
                        ) as response:
                            patterns = json.loads(response.read())
                        return scan, patterns

                    return await loop.run_in_executor(None, session)
            finally:
                store.close()

        scan, patterns = run(scenario())
        assert len(scan["result"]["new_ids"]) == len(PLANTED_PAIRS)
        assert len(patterns["result"]["patterns"]) == 2

    def test_protocol_rejects_malformed_scan(self):
        from repro.service.protocol import ProtocolError, parse_request

        with pytest.raises(ProtocolError):
            parse_request(
                json.dumps(
                    {"v": 1, "id": "s", "op": "scan", "delta": 4,
                     "persist": "sometimes"}
                ).encode()
            )
        with pytest.raises(ProtocolError):
            parse_request(
                json.dumps({"v": 1, "id": "s", "op": "scan"}).encode()
            )
