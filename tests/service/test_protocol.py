"""Tests for the versioned JSON wire protocol."""

import json

import pytest

from repro.service.protocol import (
    PROTOCOL_VERSION,
    AppendReply,
    AppendRequest,
    DeadlineExceededError,
    ErrorReply,
    MetricsRequest,
    OverloadedError,
    PingRequest,
    PongReply,
    ProtocolError,
    QueryReply,
    QueryRequest,
    RemoteServiceError,
    encode,
    parse_reply,
    parse_request,
    raise_for_error,
    reply_payload,
    request_payload,
)


class TestRequestRoundTrip:
    def test_query_round_trips(self):
        request = QueryRequest(
            id="q1", source="s", sink="t", delta=3,
            algorithm="bfq*", kernel="persistent", timeout=5.0,
        )
        line = encode(request_payload(request))
        assert line.endswith(b"\n")
        assert parse_request(line) == request

    def test_query_defaults_omitted_on_wire(self):
        request = QueryRequest(id="q2", source=1, sink=2, delta=1)
        payload = request_payload(request)
        assert "algorithm" not in payload
        assert "kernel" not in payload
        assert "timeout" not in payload
        assert parse_request(payload) == request

    def test_append_round_trips(self):
        request = AppendRequest(id="a1", edges=(("s", "t", 7, 2.5),))
        assert parse_request(encode(request_payload(request))) == request

    def test_metrics_and_ping_round_trip(self):
        for request in (MetricsRequest(id="m"), PingRequest(id="p")):
            assert parse_request(encode(request_payload(request))) == request


class TestRequestValidation:
    def test_wrong_version_is_typed(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request({"v": 99, "op": "ping", "id": "x"})
        assert excinfo.value.kind == "unsupported_version"

    def test_missing_version_is_typed(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request({"op": "ping", "id": "x"})
        assert excinfo.value.kind == "unsupported_version"

    def test_malformed_json(self):
        with pytest.raises(ProtocolError):
            parse_request(b"{nope\n")

    def test_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_request({"v": PROTOCOL_VERSION, "op": "drop-tables", "id": ""})

    @pytest.mark.parametrize("delta", [0, -3, 1.5, True, "2"])
    def test_bad_delta(self, delta):
        with pytest.raises(ProtocolError, match="delta"):
            parse_request(
                {"v": PROTOCOL_VERSION, "op": "query", "id": "",
                 "source": "s", "sink": "t", "delta": delta}
            )

    def test_missing_source(self):
        with pytest.raises(ProtocolError, match="source"):
            parse_request(
                {"v": PROTOCOL_VERSION, "op": "query", "id": "",
                 "sink": "t", "delta": 1}
            )

    @pytest.mark.parametrize("timeout", [0, -1, "fast", False])
    def test_bad_timeout(self, timeout):
        with pytest.raises(ProtocolError, match="timeout"):
            parse_request(
                {"v": PROTOCOL_VERSION, "op": "query", "id": "",
                 "source": "s", "sink": "t", "delta": 1,
                 "timeout": timeout}
            )

    def test_bad_append_edge_shape(self):
        with pytest.raises(ProtocolError, match=r"edges\[0\]"):
            parse_request(
                {"v": PROTOCOL_VERSION, "op": "append", "id": "",
                 "edges": [["s", "t", 1]]}
            )

    def test_bad_append_timestamp(self):
        with pytest.raises(ProtocolError, match="timestamp"):
            parse_request(
                {"v": PROTOCOL_VERSION, "op": "append", "id": "",
                 "edges": [["s", "t", 1.5, 2.0]]}
            )


class TestReplyRoundTrip:
    def test_query_reply_floats_are_exact(self):
        # JSON emits repr-exact doubles, so a served density compares ==
        # to the in-process engine answer — the acceptance criterion.
        reply = QueryReply(
            id="q1", density=900.0 / 7.0, interval=(10, 13),
            flow_value=0.1 + 0.2, cached=False, epoch=4, elapsed_ms=1.25,
        )
        parsed = parse_reply(encode(reply_payload(reply)))
        assert parsed.density == reply.density
        assert parsed.flow_value == reply.flow_value
        assert parsed.interval == (10, 13)
        assert parsed.cached is False
        assert parsed.epoch == 4

    def test_not_found_reply(self):
        reply = QueryReply(
            id="q", density=0.0, interval=None, flow_value=0.0,
            cached=False, epoch=0, elapsed_ms=0.0,
        )
        parsed = parse_reply(encode(reply_payload(reply)))
        assert parsed.interval is None
        assert not parsed.found

    def test_append_and_pong_round_trip(self):
        append = AppendReply(id="a", appended=3, epoch=9, invalidated=2)
        assert parse_reply(encode(reply_payload(append))) == append
        pong = PongReply(id="p", epoch=9)
        assert parse_reply(encode(reply_payload(pong))) == pong

    def test_error_reply_round_trips(self):
        reply = ErrorReply(id="e", kind="overloaded", message="full",
                           retry_after_ms=50)
        parsed = parse_reply(encode(reply_payload(reply)))
        assert parsed == reply

    def test_wire_is_single_line(self):
        payload = reply_payload(
            ErrorReply(id="e", kind="invalid", message="bad\nnews")
        )
        line = encode(payload)
        assert line.count(b"\n") == 1  # the terminator only
        assert json.loads(line)["error"]["message"] == "bad\nnews"


class TestRaiseForError:
    def test_ok_reply_passes_through(self):
        pong = PongReply(id="p", epoch=1)
        assert raise_for_error(pong) is pong

    def test_overloaded_raises_with_hint(self):
        with pytest.raises(OverloadedError) as excinfo:
            raise_for_error(ErrorReply("", "overloaded", "full", 75))
        assert excinfo.value.retry_after_ms == 75

    def test_timeout_raises_deadline(self):
        with pytest.raises(DeadlineExceededError):
            raise_for_error(ErrorReply("", "timeout", "late"))

    def test_invalid_raises_protocol(self):
        with pytest.raises(ProtocolError):
            raise_for_error(ErrorReply("", "invalid", "bad"))

    def test_internal_raises_remote(self):
        with pytest.raises(RemoteServiceError):
            raise_for_error(ErrorReply("", "internal", "boom"))
