"""End-to-end tests for the concurrent delta-BFlow query service.

The acceptance criterion of the service subsystem: every served answer —
including under concurrency, caching and interleaved appends — is
**exactly equal** (density, interval, flow value) to a fresh sequential
:func:`repro.core.engine.find_bursting_flow` on the same network state.
"""

import asyncio
import json
import urllib.request

import pytest

from repro import BurstingFlowQuery, find_bursting_flow
from repro.exceptions import ReproError
from repro.service import (
    BurstingFlowService,
    OverloadedError,
    ProcessEnginePool,
    QueryRequest,
    ServiceClient,
)
from repro.service.protocol import AppendRequest, ErrorReply, QueryReply
from repro.temporal import TemporalFlowNetwork


def run(coroutine):
    return asyncio.run(coroutine)


def fresh_answer(network, source, sink, delta, algorithm="bfq*"):
    result = find_bursting_flow(
        network, BurstingFlowQuery(source, sink, delta), algorithm=algorithm
    )
    return (result.density, result.interval, result.flow_value)


def assert_matches(reply: QueryReply, network, source, sink, delta):
    density, interval, flow_value = fresh_answer(network, source, sink, delta)
    assert reply.ok, reply
    assert reply.density == density
    assert reply.interval == interval
    assert reply.flow_value == flow_value


class TestHandleRequest:
    def test_cold_query_equals_sequential(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                return await service.handle_request(
                    QueryRequest(id="q", source="s", sink="t", delta=2)
                )

        reply = run(scenario())
        assert reply.cached is False
        assert_matches(reply, burst_network, "s", "t", 2)

    def test_warm_query_is_cached_and_identical(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                request = QueryRequest(id="q", source="s", sink="t", delta=2)
                cold = await service.handle_request(request)
                warm = await service.handle_request(request)
                return cold, warm

        cold, warm = run(scenario())
        assert cold.cached is False and warm.cached is True
        assert (warm.density, warm.interval, warm.flow_value) == (
            cold.density, cold.interval, cold.flow_value
        )

    def test_append_bumps_epoch_and_invalidates(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                request = QueryRequest(id="q", source="s", sink="t", delta=2)
                await service.handle_request(request)
                before = service.network.epoch
                ack = await service.handle_request(
                    AppendRequest(
                        id="a", edges=(("s", "a", 11, 300.0), ("a", "t", 12, 300.0))
                    )
                )
                after = await service.handle_request(request)
                return before, ack, after

        before, ack, after = run(scenario())
        assert ack.ok and ack.appended == 2
        assert ack.epoch > before
        assert ack.invalidated == 1  # the cached (s, t, 2) answer died
        assert after.cached is False  # recomputed on the new epoch
        assert_matches(after, burst_network, "s", "t", 2)

    def test_unknown_node_is_typed_invalid(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                return await service.handle_request(
                    QueryRequest(id="q", source="nobody", sink="t", delta=2)
                )

        reply = run(scenario())
        assert isinstance(reply, ErrorReply) and reply.kind == "invalid"

    def test_unknown_algorithm_is_typed_invalid(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                return await service.handle_request(
                    QueryRequest(
                        id="q", source="s", sink="t", delta=2,
                        algorithm="wizardry",
                    )
                )

        reply = run(scenario())
        assert isinstance(reply, ErrorReply) and reply.kind == "invalid"

    def test_unknown_kernel_is_typed_invalid(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                return await service.handle_request(
                    QueryRequest(
                        id="q", source="s", sink="t", delta=2, kernel="cuda"
                    )
                )

        reply = run(scenario())
        assert isinstance(reply, ErrorReply) and reply.kind == "invalid"

    def test_kernel_dropped_for_baseline_algorithms(self, burst_network):
        # naive has no incremental state; a kernel request must not fail.
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                return await service.handle_request(
                    QueryRequest(
                        id="q", source="s", sink="t", delta=2,
                        algorithm="naive", kernel="persistent",
                    )
                )

        reply = run(scenario())
        assert reply.ok
        density, interval, _ = fresh_answer(burst_network, "s", "t", 2)
        assert (reply.density, reply.interval) == (density, interval)

    def test_rejects_unknown_default_kernel(self, burst_network):
        with pytest.raises(ReproError, match="kernel"):
            BurstingFlowService(burst_network, kernel="cuda")

    def test_append_rejects_bad_edge_but_reports_epoch(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                reply = await service.handle_request(
                    AppendRequest(
                        id="a",
                        edges=(("x", "y", 5, 1.0), ("x", "y", 5, -3.0)),
                    )
                )
                return reply, service.network.epoch

        reply, epoch = run(scenario())
        assert isinstance(reply, ErrorReply) and reply.kind == "invalid"
        # The first (valid) edge landed before the failure was detected.
        assert epoch > 0


class TestAdmissionUnderLoad:
    def test_saturation_sheds_typed_overloaded_not_hangs(self, burst_network):
        """ISSUE acceptance: saturation produces Overloaded, never hangs."""

        async def scenario():
            service = BurstingFlowService(burst_network, max_pending=2)

            release = asyncio.Event()

            async def slow_answer(*_args):
                await release.wait()
                return (1.0, (0, 1), 1.0)

            service.engine.answer = slow_answer  # occupy every slot
            try:
                requests = [
                    QueryRequest(id=f"q{i}", source="s", sink="t", delta=i + 1)
                    for i in range(5)
                ]
                tasks = [
                    asyncio.create_task(service.handle_request(r))
                    for r in requests
                ]
                await asyncio.sleep(0.05)  # let two admit, three shed
                release.set()
                replies = await asyncio.wait_for(
                    asyncio.gather(*tasks), timeout=10.0
                )
                return replies, service.snapshot()
            finally:
                await service.stop()

        replies, snapshot = run(scenario())
        shed = [r for r in replies if isinstance(r, ErrorReply)]
        served = [r for r in replies if not isinstance(r, ErrorReply)]
        assert len(served) == 2 and len(shed) == 3
        for reply in shed:
            assert reply.kind == "overloaded"
            assert reply.retry_after_ms > 0
        assert snapshot["queue"]["shed"] == 3
        assert snapshot["admission"]["inflight"] == 0  # all slots returned

    def test_deadline_produces_typed_timeout(self, burst_network):
        async def scenario():
            service = BurstingFlowService(burst_network)

            async def never_answers(*_args):
                await asyncio.sleep(3600)

            service.engine.answer = never_answers
            try:
                return await service.handle_request(
                    QueryRequest(
                        id="q", source="s", sink="t", delta=2, timeout=0.05
                    )
                )
            finally:
                await service.stop()

        reply = run(scenario())
        assert isinstance(reply, ErrorReply) and reply.kind == "timeout"


class TestTcpTransport:
    def test_concurrent_burst_equals_sequential(self, burst_network):
        """A concurrent NDJSON burst over TCP matches the offline engine."""
        deltas = [1, 2, 3, 5, 8, 13, 2, 3]  # repeats exercise the cache

        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                host, port = await service.start()

                async def one_query(index, delta):
                    reader, writer = await asyncio.open_connection(host, port)
                    line = json.dumps(
                        {"v": 1, "id": f"q{index}", "op": "query",
                         "source": "s", "sink": "t", "delta": delta}
                    ).encode() + b"\n"
                    writer.write(line)
                    await writer.drain()
                    reply = json.loads(await reader.readline())
                    writer.close()
                    await writer.wait_closed()
                    return reply

                cold = await asyncio.gather(
                    *(one_query(i, d) for i, d in enumerate(deltas))
                )
                # A second identical burst must be served entirely warm
                # (identical answers, all from the cache).
                warm = await asyncio.gather(
                    *(one_query(i, d) for i, d in enumerate(deltas))
                )
                return cold, warm, service.snapshot()

        cold, warm, snapshot = run(scenario())
        for cold_reply, warm_reply, delta in zip(cold, warm, deltas):
            assert cold_reply["ok"], cold_reply
            density, interval, flow_value = fresh_answer(
                burst_network, "s", "t", delta
            )
            for reply in (cold_reply, warm_reply):
                assert reply["result"]["density"] == density
                assert tuple(reply["result"]["interval"]) == interval
                assert reply["result"]["flow_value"] == flow_value
            assert warm_reply["result"]["cached"] is True
        assert snapshot["requests"]["query"] == 2 * len(deltas)
        assert snapshot["cache"]["hits"] >= len(deltas)

    def test_pipelined_requests_on_one_connection(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                host, port = await service.start()
                reader, writer = await asyncio.open_connection(host, port)
                for request_id, op in (("p1", "ping"), ("m1", "metrics"),
                                       ("p2", "ping")):
                    writer.write(
                        json.dumps({"v": 1, "id": request_id, "op": op}).encode()
                        + b"\n"
                    )
                await writer.drain()
                replies = [json.loads(await reader.readline()) for _ in range(3)]
                writer.close()
                await writer.wait_closed()
                return replies

        replies = run(scenario())
        assert [r["id"] for r in replies] == ["p1", "m1", "p2"]
        assert all(r["ok"] for r in replies)

    def test_malformed_line_gets_typed_error_and_connection_survives(
        self, burst_network
    ):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                host, port = await service.start()
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"{broken\n")
                writer.write(
                    json.dumps({"v": 1, "id": "p", "op": "ping"}).encode() + b"\n"
                )
                await writer.drain()
                bad = json.loads(await reader.readline())
                good = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return bad, good

        bad, good = run(scenario())
        assert bad["ok"] is False and bad["error"]["kind"] == "invalid"
        assert good["ok"] is True

    def test_blocking_client_helper(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                host, port = await service.start()
                loop = asyncio.get_running_loop()

                def client_session():
                    with ServiceClient(host, port) as client:
                        reply = client.query("s", "t", 2)
                        epoch = client.ping()
                        metrics = client.metrics()
                        ack = client.append([("s", "c", 21, 5.0)])
                        return reply, epoch, metrics, ack

                return await loop.run_in_executor(None, client_session)

        reply, epoch, metrics, ack = run(scenario())
        assert_matches(reply, burst_network, "s", "t", 2)
        assert ack.epoch > epoch
        assert metrics["requests"]["query"] == 1

    def test_client_raises_typed_overloaded(self, burst_network):
        async def scenario():
            service = BurstingFlowService(burst_network, max_pending=1)
            host, port = await service.start()
            release = asyncio.Event()

            async def slow_answer(*_args):
                await release.wait()
                return (1.0, (0, 1), 1.0)

            service.engine.answer = slow_answer
            occupier = asyncio.create_task(
                service.handle_request(
                    QueryRequest(id="hog", source="s", sink="t", delta=2)
                )
            )
            await asyncio.sleep(0.05)
            loop = asyncio.get_running_loop()

            def blocked_client():
                with ServiceClient(host, port) as client:
                    client.query("s", "t", 3)

            try:
                with pytest.raises(OverloadedError):
                    await loop.run_in_executor(None, blocked_client)
            finally:
                release.set()
                await occupier
                await service.stop()

        run(scenario())


class TestHttpTransport:
    def test_http_endpoints(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                host, port = await service.start()
                loop = asyncio.get_running_loop()
                base = f"http://{host}:{port}"

                def http_session():
                    with urllib.request.urlopen(f"{base}/healthz") as response:
                        health = json.loads(response.read())
                    body = json.dumps(
                        {"v": 1, "id": "q", "op": "query",
                         "source": "s", "sink": "t", "delta": 2}
                    ).encode()
                    request = urllib.request.Request(
                        f"{base}/query", data=body,
                        headers={"Content-Type": "application/json"},
                    )
                    with urllib.request.urlopen(request) as response:
                        query = json.loads(response.read())
                    with urllib.request.urlopen(f"{base}/metrics") as response:
                        metrics = json.loads(response.read())
                    return health, query, metrics

                return await loop.run_in_executor(None, http_session)

        health, query, metrics = run(scenario())
        assert health["ok"] is True
        density, interval, flow_value = fresh_answer(burst_network, "s", "t", 2)
        assert query["result"]["density"] == density
        assert tuple(query["result"]["interval"]) == interval
        assert metrics["requests"]["query"] == 1
        assert metrics["network"]["epoch"] == health["epoch"]

    def test_http_unknown_route_is_404(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                host, port = await service.start()
                loop = asyncio.get_running_loop()

                def fetch():
                    try:
                        urllib.request.urlopen(f"http://{host}:{port}/nope")
                    except urllib.error.HTTPError as error:
                        return error.code
                    return None

                import urllib.error

                return await loop.run_in_executor(None, fetch)

        assert run(scenario()) == 404


class TestProcessEngineMode:
    def test_process_pool_equals_sequential_and_survives_append(
        self, burst_network
    ):
        async def scenario():
            service = BurstingFlowService(
                burst_network, processes=2, mp_context="fork"
            )
            try:
                request = QueryRequest(id="q", source="s", sink="t", delta=2)
                cold = await service.handle_request(request)
                await service.handle_request(
                    AppendRequest(
                        id="a", edges=(("s", "a", 11, 250.0), ("a", "t", 12, 250.0))
                    )
                )
                post = await service.handle_request(request)
                return cold, post
            finally:
                await service.stop()

        cold, post = run(scenario())
        assert cold.ok and post.ok
        assert post.cached is False
        # The worker pool was rebuilt on the new epoch: the answer must
        # match a fresh solve on the *mutated* network.
        assert_matches(post, burst_network, "s", "t", 2)

    def test_pool_survives_worker_crash(self, burst_network):
        async def scenario():
            pool = ProcessEnginePool(
                burst_network, processes=2, mp_context="fork"
            )
            try:
                # Warm the pool so the worker processes actually spawn.
                await pool.answer("s", "t", 5, "bfq*", None)
                # Murder every worker out from under the pool.
                assert pool._pool._processes
                for process in list(pool._pool._processes.values()):
                    process.terminate()
                answer = await asyncio.wait_for(
                    pool.answer("s", "t", 2, "bfq*", None), timeout=60.0
                )
                return answer, pool.restarts
            finally:
                pool.close()

        answer, restarts = run(scenario())
        assert restarts == 1
        assert answer[:3] == fresh_answer(burst_network, "s", "t", 2)
