"""Service-level tests for the batch and top-k operations.

Same acceptance bar as the single-query path: every served batch entry and
every top-k entry is exactly equal to a fresh sequential solve on the same
network state — the planner, the per-entry cache and the whole-reply
top-k cache are invisible to correctness.
"""

import asyncio

import pytest

from repro import BurstingFlowQuery, find_bursting_flow
from repro.core import top_k_bursts
from repro.service import BurstingFlowService, QueryRequest
from repro.service.protocol import (
    AppendRequest,
    BatchReply,
    BatchRequest,
    ErrorReply,
    TopKReply,
    TopKRequest,
)

BATCH = (
    ("s", "t", 2),
    ("s", "t", 5),
    ("a", "t", 2),
    ("s", "t", 2),  # exact duplicate
    ("s", "t", 3),
)

PAIRS = (("s", "t"), ("a", "t"), ("s", "b"))


def run(coroutine):
    return asyncio.run(coroutine)


def expected_answers(network, triples):
    out = []
    for source, sink, delta in triples:
        result = find_bursting_flow(
            network, BurstingFlowQuery(source, sink, delta)
        )
        out.append((result.density, result.interval, result.flow_value))
    return out


class TestBatchOperation:
    @pytest.mark.parametrize("plan", ["shared", "independent"])
    def test_batch_equals_sequential(self, burst_network, plan):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                return await service.handle_request(
                    BatchRequest(id="b1", queries=BATCH, plan=plan)
                )

        reply = run(scenario())
        assert isinstance(reply, BatchReply), reply
        got = [(r.density, r.interval, r.flow_value) for r in reply.results]
        assert got == expected_answers(burst_network, BATCH)

    def test_shared_plan_reports_amortisation(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                return await service.handle_request(
                    BatchRequest(id="b1", queries=BATCH, plan="shared")
                )

        reply = run(scenario())
        planner = reply.planner
        assert planner["windows_reused"] > 0
        assert planner["amortization"] > 1.0
        assert planner["cache_misses"] == len(BATCH)
        assert planner["cache_hits"] == 0

    def test_second_batch_is_fully_cached(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                request = BatchRequest(id="b1", queries=BATCH, plan="shared")
                cold = await service.handle_request(request)
                warm = await service.handle_request(request)
                return cold, warm

        cold, warm = run(scenario())
        assert all(not entry.cached for entry in cold.results)
        assert all(entry.cached for entry in warm.results)
        assert warm.planner["cache_hits"] == len(BATCH)
        assert warm.planner["cache_misses"] == 0
        assert [
            (r.density, r.interval, r.flow_value) for r in warm.results
        ] == [(r.density, r.interval, r.flow_value) for r in cold.results]

    def test_partial_cache_solves_only_the_misses(self, burst_network):
        subset = BATCH[:2]

        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                await service.handle_request(
                    BatchRequest(id="b0", queries=subset, plan="shared")
                )
                return await service.handle_request(
                    BatchRequest(id="b1", queries=BATCH, plan="shared")
                )

        reply = run(scenario())
        got = [(r.density, r.interval, r.flow_value) for r in reply.results]
        assert got == expected_answers(burst_network, BATCH)
        # The two warmed triples (and the in-batch duplicate of the first)
        # come from the cache; only the genuinely new ones solve.
        cached_flags = [entry.cached for entry in reply.results]
        assert cached_flags == [True, True, False, True, False]
        assert reply.planner["cache_hits"] == 3
        assert reply.planner["cache_misses"] == 2

    def test_append_invalidates_batch_entries(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                request = BatchRequest(id="b1", queries=BATCH, plan="shared")
                await service.handle_request(request)
                await service.handle_request(
                    AppendRequest(id="a", edges=(("s", "t", 29, 4.0),))
                )
                after = await service.handle_request(request)
                return after

        after = run(scenario())
        assert all(not entry.cached for entry in after.results)
        network = run(self._mutated(burst_network))
        got = [(r.density, r.interval, r.flow_value) for r in after.results]
        assert got == expected_answers(network, BATCH)

    @staticmethod
    async def _mutated(network):
        from repro.temporal import TemporalEdge

        network.add_edge(TemporalEdge("s", "t", 29, 4.0))
        return network

    def test_unknown_node_is_typed_invalid(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                return await service.handle_request(
                    BatchRequest(id="b1", queries=(("s", "ghost", 2),))
                )

        reply = run(scenario())
        assert isinstance(reply, ErrorReply)
        assert reply.kind == "invalid"

    def test_unknown_plan_is_typed_invalid(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                return await service.handle_request(
                    BatchRequest(id="b1", queries=BATCH, plan="greedy")
                )

        reply = run(scenario())
        assert isinstance(reply, ErrorReply)
        assert reply.kind == "invalid"


class TestTopKOperation:
    def test_topk_equals_local_ranking(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                return await service.handle_request(
                    TopKRequest(id="t1", pairs=PAIRS, delta=3, k=5)
                )

        reply = run(scenario())
        assert isinstance(reply, TopKReply), reply
        expected = top_k_bursts(burst_network, PAIRS, 3, k=5)
        assert [
            (e.source, e.sink, e.delta, e.density, e.interval, e.flow_value)
            for e in reply.entries
        ] == [
            (e.source, e.sink, e.delta, e.density, e.interval, e.flow_value)
            for e in expected
        ]

    def test_second_topk_is_cached(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                request = TopKRequest(id="t1", pairs=PAIRS, delta=3, k=5)
                cold = await service.handle_request(request)
                warm = await service.handle_request(request)
                return cold, warm

        cold, warm = run(scenario())
        assert cold.cached is False and warm.cached is True
        assert warm.entries == cold.entries

    def test_different_k_is_a_different_cache_entry(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                await service.handle_request(
                    TopKRequest(id="t1", pairs=PAIRS, delta=3, k=5)
                )
                return await service.handle_request(
                    TopKRequest(id="t2", pairs=PAIRS, delta=3, k=1)
                )

        narrower = run(scenario())
        assert narrower.cached is False
        assert len(narrower.entries) <= 1

    def test_invalid_k_is_typed_invalid(self, burst_network):
        async def scenario():
            async with BurstingFlowService(burst_network) as service:
                return await service.handle_request(
                    TopKRequest(id="t1", pairs=PAIRS, delta=3, k=0)
                )

        reply = run(scenario())
        assert isinstance(reply, ErrorReply)
        assert reply.kind == "invalid"


class TestCacheKeyCollisions:
    """Queries differing only in evaluation knobs must not share entries.

    Regression for the silent-collision bug: the old key was
    ``(epoch, source, sink, delta)``, so a ``bfq*`` answer could be served
    to a ``naive`` request (fine) — but also a ``kernel=object`` answer to
    a ``kernel=persistent`` request and, worse, an answer computed under
    one transform to a request pinning the other.  All three knobs are in
    the key now; hits require the whole evaluation recipe to match.
    """

    @staticmethod
    async def _pair(network, first_kwargs, second_kwargs):
        async with BurstingFlowService(network) as service:
            first = await service.handle_request(
                QueryRequest(id="q1", source="s", sink="t", delta=2, **first_kwargs)
            )
            second = await service.handle_request(
                QueryRequest(id="q2", source="s", sink="t", delta=2, **second_kwargs)
            )
            return first, second

    def test_algorithm_distinguishes_entries(self, burst_network):
        first, second = run(
            self._pair(
                burst_network, {"algorithm": "bfq*"}, {"algorithm": "bfq"}
            )
        )
        assert first.cached is False
        assert second.cached is False  # not served from the bfq* entry
        assert (second.density, second.interval) == (first.density, first.interval)

    def test_transform_distinguishes_entries(self, burst_network):
        first, second = run(
            self._pair(
                burst_network, {"transform": "skeleton"}, {"transform": "object"}
            )
        )
        assert first.cached is False
        assert second.cached is False
        assert (second.density, second.interval) == (first.density, first.interval)

    def test_kernel_distinguishes_entries(self, burst_network):
        first, second = run(
            self._pair(
                burst_network,
                {"algorithm": "bfq*", "kernel": "persistent"},
                {"algorithm": "bfq*", "kernel": "object"},
            )
        )
        assert first.cached is False
        assert second.cached is False
        assert (second.density, second.interval) == (first.density, first.interval)

    def test_same_recipe_still_hits(self, burst_network):
        first, second = run(
            self._pair(
                burst_network,
                {"algorithm": "bfq*", "kernel": "object", "transform": "skeleton"},
                {"algorithm": "bfq*", "kernel": "object", "transform": "skeleton"},
            )
        )
        assert first.cached is False
        assert second.cached is True

    def test_default_and_explicit_transform_share_one_entry(self, burst_network):
        # The key stores the transform that actually ran, so an explicit
        # "skeleton" request hits the entry a default request populated.
        first, second = run(
            self._pair(burst_network, {}, {"transform": "skeleton"})
        )
        assert first.cached is False
        assert second.cached is True
