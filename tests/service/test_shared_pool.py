"""Shared-memory lifecycle tests for the process-pool engine backend.

The properties that matter operationally:

* appends publish to the shared log and the pool object is *reused* —
  no teardown/re-spawn per epoch, and workers still answer on the
  mutated network;
* a :class:`BrokenProcessPool` recovery re-attaches the fresh workers to
  the same store and replays the full log;
* ``close()`` unlinks every segment — no ``/dev/shm`` leaks after any of
  the above;
* ``shared=False`` (and the batch layer's ``shared=True``) keep the
  answers byte-identical to the classic pickled-``initargs`` path.
"""

import asyncio
import glob

import pytest

from repro.core.batch import answer_many
from repro.core.engine import find_bursting_flow
from repro.core.query import BurstingFlowQuery
from repro.service.protocol import AppendRequest, QueryRequest
from repro.service.server import BurstingFlowService
from repro.service.workers import ProcessEnginePool


def run(coro):
    return asyncio.run(coro)


def _segments(name: str) -> list[str]:
    return glob.glob(f"/dev/shm/{name}*")


class TestProcessPoolSharedMemory:
    def test_append_publishes_without_pool_rebuild(self, burst_network):
        async def scenario():
            service = BurstingFlowService(
                burst_network, processes=2, mp_context="fork"
            )
            try:
                assert service.engine.shared
                store_name = service.engine._store.name
                request = QueryRequest(id="q", source="s", sink="t", delta=2)
                cold = await service.handle_request(request)
                pool_before = service.engine._pool
                await service.handle_request(
                    AppendRequest(
                        id="a",
                        edges=(("s", "a", 11, 250.0), ("a", "t", 12, 250.0)),
                    )
                )
                post = await service.handle_request(request)
                reused = service.engine._pool is pool_before
                return cold, post, reused, store_name
            finally:
                await service.stop()

        cold, post, reused, store_name = run(scenario())
        assert cold.ok and post.ok
        assert reused, "append must publish to the log, not rebuild the pool"
        assert post.cached is False
        reference = find_bursting_flow(
            burst_network, BurstingFlowQuery("s", "t", 2)
        )
        assert post.density == pytest.approx(reference.density)
        assert tuple(post.interval) == reference.interval
        assert not _segments(store_name)

    def test_broken_pool_recovers_and_unlinks(self, burst_network):
        async def scenario():
            pool = ProcessEnginePool(
                burst_network, processes=2, mp_context="fork"
            )
            try:
                assert pool.shared
                store_name = pool._store.name
                await pool.answer("s", "t", 5, "bfq*", None)
                for process in list(pool._pool._processes.values()):
                    process.terminate()
                answer = await asyncio.wait_for(
                    pool.answer("s", "t", 2, "bfq*", None), timeout=60.0
                )
                return answer, pool.restarts, store_name
            finally:
                pool.close()

        answer, restarts, store_name = run(scenario())
        assert restarts == 1
        reference = find_bursting_flow(
            burst_network, BurstingFlowQuery("s", "t", 2)
        )
        assert answer[0] == pytest.approx(reference.density)
        assert not _segments(store_name)

    def test_unpublished_mutation_resnapshots(self, burst_network):
        # A direct network mutation that bypasses mark_stale(edges) must
        # still never serve stale answers: the next query re-snapshots
        # the log and rebuilds the pool.
        from repro.temporal.edge import TemporalEdge

        async def scenario():
            pool = ProcessEnginePool(
                burst_network, processes=2, mp_context="fork"
            )
            try:
                first_store = pool._store.name
                await pool.answer("s", "t", 2, "bfq*", None)
                burst_network.add_edge(TemporalEdge("s", "t", 9, 123.0))
                pool.mark_stale()  # no edges: forces the re-snapshot path
                answer = await pool.answer("s", "t", 2, "bfq*", None)
                return answer, first_store, pool._store.name
            finally:
                pool.close()

        answer, first_store, second_store = run(scenario())
        assert first_store != second_store
        reference = find_bursting_flow(
            burst_network, BurstingFlowQuery("s", "t", 2)
        )
        assert answer[0] == pytest.approx(reference.density)
        assert not _segments(first_store)
        assert not _segments(second_store)

    def test_shared_false_still_works(self, burst_network):
        async def scenario():
            pool = ProcessEnginePool(
                burst_network, processes=2, mp_context="fork", shared=False
            )
            try:
                assert not pool.shared
                return await pool.answer("s", "t", 2, "bfq*", None)
            finally:
                pool.close()

        answer = run(scenario())
        reference = find_bursting_flow(
            burst_network, BurstingFlowQuery("s", "t", 2)
        )
        assert answer[0] == pytest.approx(reference.density)


class TestBatchSharedMemory:
    def test_answer_many_shared_matches_sequential(self, burst_network):
        queries = [BurstingFlowQuery("s", "t", d) for d in (2, 3, 5)]
        sequential = answer_many(burst_network, queries)
        shared = answer_many(
            burst_network, queries, processes=2, mp_context="fork", shared=True
        )
        assert [(r.density, r.interval) for r in shared] == [
            (r.density, r.interval) for r in sequential
        ]
        assert not glob.glob("/dev/shm/repro-net-*")
