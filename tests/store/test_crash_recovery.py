"""Crash-injection durability tests: die anywhere, recover everything.

The scripted workload below mimics a coordinator's life: append + flush
records, and checkpoint (snapshot save + log prefix compaction) after
every round.  The harness in :mod:`tests.store.crash` kills it at
*every* ``os.replace`` and ``os.fsync`` the checkpoint machinery makes;
after each simulated crash a fresh bootstrap must reproduce exactly the
state of every record appended before the crash — no lost records, no
resurrected ones, epoch intact.

A final test does it for real: a child process (``_crash_driver.py``)
appending and checkpointing in a loop gets ``SIGKILL``-ed mid-stream,
and recovery must cover every record the child acked on stdout.
"""

import contextlib
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cluster.replication import (
    append_record,
    apply_record,
    bootstrap_network,
    network_edges,
    network_state_record,
)
from repro.store import AppendLog, SnapshotStore
from repro.temporal.network import TemporalFlowNetwork
from tests.store.crash import SimulatedCrash, count_calls, crash_on

ROUNDS = 3
PER_ROUND = 4


def record_for(index):
    """Record *i* adds one unique edge, so epoch == number of records."""
    return append_record([(f"u{index}", f"v{index}", index + 1, 1.0)])


def expected_edges(indices):
    return sorted((f"u{i}", f"v{i}", i + 1, 1.0) for i in indices)


def run_workload(log_path, snap_dir, appended):
    """Append/flush records round by round, checkpointing between rounds.

    Mutates ``appended`` (the ground-truth list of durable record
    indices) *before* any checkpoint syscalls run, so a crash injected
    into the checkpoint machinery still leaves the truth observable.
    """
    log = AppendLog(log_path)
    snapshots = SnapshotStore(snap_dir)
    mirror = TemporalFlowNetwork()
    try:
        index = 0
        for _ in range(ROUNDS):
            for _ in range(PER_ROUND):
                record = record_for(index)
                log.append(record)
                log.flush()
                apply_record(mirror, record)
                appended.append(index)
                index += 1
            offset = log.tail_offset()
            snapshots.save(
                network_state_record(mirror),
                log_offset=offset,
                records=index,
                epoch=mirror.epoch,
            )
            log.truncate_prefix(offset)
    finally:
        with contextlib.suppress(Exception):
            log.close()


def recover(log_path, snap_dir):
    log = AppendLog(log_path)
    try:
        return bootstrap_network(log, SnapshotStore(snap_dir))
    finally:
        log.close()


def assert_recovers_ground_truth(log_path, snap_dir, appended):
    boot = recover(log_path, snap_dir)
    assert sorted(network_edges(boot.network)) == expected_edges(appended)
    assert boot.network.epoch == len(appended)
    assert boot.total_records == len(appended)


class TestInjectedCrashes:
    """Die on the n-th durability syscall, for every n the workload makes."""

    @pytest.mark.parametrize("func_name", ["replace", "fsync"])
    def test_recovery_from_every_syscall_crash_point(self, tmp_path, func_name):
        baseline = tmp_path / "baseline"
        total = count_calls(
            func_name,
            lambda: run_workload(
                baseline / "l.log", baseline / "snaps", []
            ),
        )
        assert total >= ROUNDS, f"workload makes no os.{func_name} calls?"
        for call_index in range(1, total + 1):
            base = tmp_path / f"{func_name}-{call_index}"
            appended = []
            with pytest.raises(SimulatedCrash):
                with crash_on(func_name, call_index):
                    run_workload(base / "l.log", base / "snaps", appended)
            assert appended, "crashed before any record became durable"
            assert_recovers_ground_truth(base / "l.log", base / "snaps", appended)

    def test_crash_free_run_recovers_from_snapshot_only(self, tmp_path):
        appended = []
        run_workload(tmp_path / "l.log", tmp_path / "snaps", appended)
        boot = recover(tmp_path / "l.log", tmp_path / "snaps")
        assert boot.from_snapshot
        assert boot.replayed_records == 0
        assert boot.total_records == ROUNDS * PER_ROUND
        assert sorted(network_edges(boot.network)) == expected_edges(appended)

    def test_crash_during_recovery_is_harmless(self, tmp_path):
        """Recovery itself is read-only: abandoning a bootstrap's replay
        at any depth leaves the artifacts able to serve a full one."""
        appended = []
        run_workload(tmp_path / "l.log", tmp_path / "snaps", appended)
        with AppendLog(tmp_path / "l.log") as log:
            log.append(record_for(len(appended)))
            log.append(record_for(len(appended) + 1))
            appended.extend([len(appended), len(appended) + 1])
        for consumed in (0, 1):
            log = AppendLog(tmp_path / "l.log")
            manifest = SnapshotStore(tmp_path / "snaps").manifest()
            replay = log.replay(from_offset=manifest.log_offset)
            for _ in range(consumed):
                next(replay)
            replay.close()  # the recovering process dies mid-replay
            log.close()
        assert_recovers_ground_truth(tmp_path / "l.log", tmp_path / "snaps", appended)


class TestRealKill:
    """SIGKILL a live append-and-checkpoint process; recover its acks."""

    def test_kill_nine_loses_no_acked_records(self, tmp_path):
        driver = Path(__file__).with_name("_crash_driver.py")
        log_path = tmp_path / "l.log"
        snap_dir = tmp_path / "snaps"
        process = subprocess.Popen(
            [sys.executable, str(driver), str(log_path), str(snap_dir)],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            acked = -1
            deadline = time.monotonic() + 30.0
            # Let it live through at least two checkpoints (compactions).
            while acked < 25:
                line = process.stdout.readline()
                assert line, "driver exited prematurely"
                acked = int(line)
                assert time.monotonic() < deadline
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=10.0)
        finally:
            with contextlib.suppress(ProcessLookupError):
                process.kill()
            process.stdout.close()
            process.wait(timeout=10.0)

        boot = recover(log_path, snap_dir)
        recovered = sorted(network_edges(boot.network))
        # Every acked record must be there; records appended after the
        # last ack we read (but before the kill landed) may also be.
        assert len(recovered) >= acked + 1
        assert recovered == expected_edges(range(len(recovered)))
        assert boot.network.epoch == len(recovered)
        # Compaction ran, so recovery replayed a suffix, not history.
        assert boot.from_snapshot
        assert boot.replayed_records < boot.total_records
        assert boot.replayed_records <= 10  # CHECKPOINT_EVERY in the driver
