"""Tests for the crash-atomic snapshot store."""

import json

import pytest

from repro.exceptions import DatasetError
from repro.store import SnapshotManifest, SnapshotStore


class TestSaveAndLoad:
    def test_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        payload = {"edges": [["a", "b", 1, 2.0]], "epoch": 7}
        manifest = store.save(payload, log_offset=120, records=9, epoch=7)
        assert manifest.log_offset == 120
        assert manifest.records == 9
        assert manifest.epoch == 7
        loaded, loaded_manifest = store.load()
        assert loaded == payload
        assert loaded_manifest == manifest

    def test_directory_created_lazily(self, tmp_path):
        directory = tmp_path / "deep" / "snaps"
        store = SnapshotStore(directory)
        assert not directory.exists()
        store.save({"x": 1}, log_offset=0, records=0, epoch=0)
        assert directory.is_dir()

    def test_manifest_survives_a_fresh_store_object(self, tmp_path):
        SnapshotStore(tmp_path).save({"x": 1}, log_offset=5, records=2, epoch=2)
        manifest = SnapshotStore(tmp_path).manifest()
        assert isinstance(manifest, SnapshotManifest)
        assert manifest.records == 2

    def test_newer_save_wins(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save({"v": "old"}, log_offset=10, records=1, epoch=1)
        store.save({"v": "new"}, log_offset=20, records=2, epoch=2)
        payload, manifest = store.load()
        assert payload == {"v": "new"}
        assert manifest.log_offset == 20


class TestMissingAndCorrupt:
    def test_empty_store_reads_as_none(self, tmp_path):
        store = SnapshotStore(tmp_path / "never-created")
        assert store.manifest() is None
        assert store.load() is None

    def test_corrupt_manifest_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save({"x": 1}, log_offset=0, records=1, epoch=1)
        (tmp_path / "MANIFEST.json").write_text("{not json")
        with pytest.raises(DatasetError, match="corrupt snapshot manifest"):
            store.manifest()

    def test_manifest_missing_field_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save({"x": 1}, log_offset=0, records=1, epoch=1)
        record = json.loads((tmp_path / "MANIFEST.json").read_text())
        del record["checksum"]
        (tmp_path / "MANIFEST.json").write_text(json.dumps(record))
        with pytest.raises(DatasetError, match="corrupt snapshot manifest"):
            store.manifest()

    def test_missing_payload_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        manifest = store.save({"x": 1}, log_offset=0, records=1, epoch=1)
        (tmp_path / manifest.snapshot).unlink()
        with pytest.raises(DatasetError, match="missing snapshot payload"):
            store.load()

    def test_checksum_mismatch_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        manifest = store.save({"x": 1}, log_offset=0, records=1, epoch=1)
        (tmp_path / manifest.snapshot).write_text('{"x":2}')
        with pytest.raises(DatasetError, match="fails its checksum"):
            store.load()


class TestPruning:
    def test_old_payloads_are_pruned_on_save(self, tmp_path):
        store = SnapshotStore(tmp_path)
        first = store.save({"v": 1}, log_offset=1, records=1, epoch=1)
        second = store.save({"v": 2}, log_offset=2, records=2, epoch=2)
        names = {p.name for p in tmp_path.glob("snapshot-*.json")}
        assert names == {second.snapshot}
        assert first.snapshot not in names

    def test_stale_tmp_files_are_pruned_on_save(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save({"v": 1}, log_offset=1, records=1, epoch=1)
        orphan = tmp_path / "snapshot-000000000099.json.tmp"
        orphan.write_text("torn")
        store.save({"v": 2}, log_offset=2, records=2, epoch=2)
        assert not orphan.exists()

    def test_orphaned_payload_from_a_crash_is_harmless(self, tmp_path):
        """A crash between payload and manifest replace leaves a newer
        payload the manifest never references — loads must still serve
        the manifest's payload."""
        store = SnapshotStore(tmp_path)
        store.save({"v": "committed"}, log_offset=10, records=3, epoch=3)
        (tmp_path / "snapshot-000000000009.json").write_text('{"v":"orphan"}')
        payload, manifest = store.load()
        assert payload == {"v": "committed"}
        assert manifest.records == 3
