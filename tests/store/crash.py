"""Reusable crash-injection harness for durability tests.

Real crash coverage means dying at *chosen* points inside the durability
machinery, not just at test-author-convenient seams.  This module gives
tests two tools:

* :class:`SimulatedCrash` — the "power went out here" signal.  It derives
  from ``BaseException`` so production ``except Exception`` guards can
  never swallow it and quietly keep running past the crash point.
* :func:`crash_on` — a context manager that patches one of the durability
  syscall wrappers (``os.replace`` / ``os.fsync``) to raise
  :class:`SimulatedCrash` on its *n*-th call, leaving the filesystem in
  exactly the state a kill at that instant would.

Typical use — parametrize over every syscall the scripted workload makes
and assert recovery from each resulting disk state::

    with pytest.raises(SimulatedCrash):
        with crash_on("replace", call_index):
            run_workload()
    recover_and_assert()

The patch is process-global (it swaps the attribute on the ``os``
module), so it is only safe in single-threaded test code — which is all
pytest workloads here are.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Patchable syscall wrappers, by short name.
_TARGETS = {
    "replace": "replace",
    "fsync": "fsync",
}


class SimulatedCrash(BaseException):
    """Raised at the injected crash point.

    A ``BaseException`` on purpose: code under test that catches
    ``Exception`` (retry loops, best-effort cleanup) must not be able to
    absorb the crash and continue — a real ``kill -9`` would not ask.
    """


def count_calls(func_name: str, workload) -> int:
    """Run ``workload()`` and return how many times it calls the syscall.

    Lets a test discover the injection-point space instead of hard-coding
    it: ``for i in range(1, count_calls("replace", run) + 1): ...``.
    """
    attr = _TARGETS[func_name]
    original = getattr(os, attr)
    calls = 0

    def counting(*args, **kwargs):
        nonlocal calls
        calls += 1
        return original(*args, **kwargs)

    setattr(os, attr, counting)
    try:
        workload()
    finally:
        setattr(os, attr, original)
    return calls


@contextmanager
def crash_on(func_name: str, call_index: int) -> Iterator[None]:
    """Crash (raise :class:`SimulatedCrash`) on the n-th matching syscall.

    Args:
        func_name: ``"replace"`` or ``"fsync"``.
        call_index: 1-based index of the call that dies.  Calls before it
            run normally; the dying call raises *before* performing the
            operation, like a kill between the intent and the effect.
    """
    attr = _TARGETS[func_name]
    original = getattr(os, attr)
    calls = 0

    def crashing(*args, **kwargs):
        nonlocal calls
        calls += 1
        if calls == call_index:
            raise SimulatedCrash(f"os.{attr} call #{call_index}")
        return original(*args, **kwargs)

    setattr(os, attr, crashing)
    try:
        yield
    finally:
        setattr(os, attr, original)
