"""Tests for the embedded graph store and its one-off export."""

import pytest

from repro import find_bursting_flow
from repro.exceptions import DatasetError, UnknownNodeError
from repro.store import GraphStore


@pytest.fixture
def populated() -> GraphStore:
    store = GraphStore()
    store.add_node("alice", country="SG")
    store.add_relationship("alice", "bob", tau=1000.5, amount=250.0, label="wire")
    store.add_relationship("bob", "carol", tau=1030.0, amount=240.0)
    store.add_relationship("alice", "carol", tau=1060.0, amount=10.0)
    return store


class TestMutations:
    def test_counts(self, populated):
        assert populated.num_nodes == 3
        assert populated.num_relationships == 3

    def test_auto_created_endpoints(self, populated):
        assert populated.has_node("bob")
        assert populated.node("bob") == {}

    def test_node_properties_merge(self, populated):
        populated.add_node("alice", risk="high")
        assert populated.node("alice") == {"country": "SG", "risk": "high"}

    def test_unknown_node_raises(self, populated):
        with pytest.raises(UnknownNodeError):
            populated.node("mallory")

    def test_self_transfer_rejected(self, populated):
        with pytest.raises(DatasetError, match="self transfer"):
            populated.add_relationship("alice", "alice", tau=1, amount=5.0)

    def test_non_positive_amount_rejected(self, populated):
        with pytest.raises(DatasetError, match="positive"):
            populated.add_relationship("alice", "bob", tau=1, amount=0.0)

    def test_relationship_lookup(self, populated):
        rel = populated.relationship(1)
        assert (rel.u, rel.v, rel.amount) == ("alice", "bob", 250.0)
        with pytest.raises(DatasetError):
            populated.relationship(99)


class TestIndexes:
    def test_time_range_scan(self, populated):
        taus = [r.tau for r in populated.relationships_between(1010, 1070)]
        assert taus == [1030.0, 1060.0]

    def test_ledgers(self, populated):
        assert [r.v for r in populated.outgoing("alice")] == ["bob", "carol"]
        assert [r.u for r in populated.incoming("carol")] == ["bob", "alice"]

    def test_total_volume(self, populated):
        assert populated.total_volume("alice") == pytest.approx(260.0)
        assert populated.total_volume("carol", direction="in") == pytest.approx(250.0)

    def test_timestamp_quantile(self, populated):
        assert populated.timestamp_quantile(0.0) == 1000.5
        assert populated.timestamp_quantile(1.0) == 1060.0
        with pytest.raises(DatasetError):
            populated.timestamp_quantile(2.0)


class TestExport:
    def test_one_off_export_with_compaction(self, populated):
        network, codec = populated.export_network()
        assert network.num_edges == 3
        assert list(network.timestamps) == [1, 2, 3]
        assert codec.decode(1) == 1000.5

    def test_export_supports_queries_end_to_end(self, populated):
        network, codec = populated.export_network()
        result = find_bursting_flow(network, source="alice", sink="carol", delta=1)
        assert result.found
        lo, hi = result.interval
        raw_lo, raw_hi = codec.decode_interval((lo, hi))
        assert raw_lo >= 1000.5 and raw_hi <= 1060.0

    def test_time_filtered_export(self, populated):
        network, _ = populated.export_network(tau_lo=1010.0)
        assert network.num_edges == 2

    def test_quantile_driven_export_like_case_study(self):
        store = GraphStore()
        for i in range(100):
            store.add_relationship(f"u{i}", f"v{i}", tau=float(i), amount=1.0)
        cut = store.timestamp_quantile(0.99)
        network, _ = store.export_network(tau_lo=cut)
        assert network.num_edges <= 2  # only the top 1% of timestamps

    def test_predicate_export(self, populated):
        network, _ = populated.export_network(
            predicate=lambda rel: rel.properties.get("label") == "wire"
        )
        assert network.num_edges == 1

    def test_empty_export(self):
        network, codec = GraphStore().export_network()
        assert network.num_edges == 0
        assert len(codec) == 0


class TestDurability:
    def test_replay_restores_state(self, tmp_path):
        path = tmp_path / "store.log"
        with GraphStore(path) as store:
            store.add_node("alice", risk="low")
            store.add_relationship("alice", "bob", tau=5.0, amount=9.0)
        with GraphStore(path) as revived:
            assert revived.num_nodes == 2
            assert revived.node("alice") == {"risk": "low"}
            rel = revived.relationship(1)
            assert (rel.u, rel.v, rel.tau, rel.amount) == ("alice", "bob", 5.0, 9.0)

    def test_rel_ids_continue_after_replay(self, tmp_path):
        path = tmp_path / "store.log"
        with GraphStore(path) as store:
            first = store.add_relationship("a", "b", tau=1, amount=1.0)
        with GraphStore(path) as revived:
            second = revived.add_relationship("b", "c", tau=2, amount=1.0)
        assert second == first + 1

    def test_compaction_shrinks_log(self, tmp_path):
        path = tmp_path / "store.log"
        with GraphStore(path) as store:
            for _ in range(5):
                store.add_node("alice", counter=_)
            store.add_relationship("alice", "bob", tau=1, amount=1.0)
            store.flush()
            before = path.stat().st_size
            store.compact()
            after = path.stat().st_size
        assert after < before
        with GraphStore(path) as revived:
            assert revived.num_relationships == 1

    def test_export_after_replay_matches(self, tmp_path):
        path = tmp_path / "store.log"
        with GraphStore(path) as store:
            store.add_relationship("a", "b", tau=10.0, amount=2.0)
            store.add_relationship("b", "c", tau=20.0, amount=2.0)
            original, _ = store.export_network()
        with GraphStore(path) as revived:
            replayed, _ = revived.export_network()
        assert sorted(e.key() for e in original.edges()) == sorted(
            e.key() for e in replayed.edges()
        )
