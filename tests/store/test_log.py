"""Tests for the append-only log."""

import json
import tracemalloc

import pytest

from repro.exceptions import DatasetError, TruncatedHistoryError
from repro.store import AppendLog


class TestAppendAndReplay:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.log"
        with AppendLog(path) as log:
            log.append({"op": "a", "x": 1})
            log.append({"op": "b", "y": [1, 2]})
        with AppendLog(path) as log:
            assert list(log.replay()) == [
                {"op": "a", "x": 1},
                {"op": "b", "y": [1, 2]},
            ]

    def test_records_appended_counter(self, tmp_path):
        with AppendLog(tmp_path / "l.log") as log:
            assert log.records_appended == 0
            log.append({"op": "a"})
            assert log.records_appended == 1

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"}\n\n{"op":"b"}\n')
        with AppendLog(path) as log:
            assert [r["op"] for r in log.replay()] == ["a", "b"]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"}\nnot-json\n{"op":"b"}\n')
        with AppendLog(path) as log, pytest.raises(DatasetError, match="corrupt"):
            list(log.replay())

    def test_torn_trailing_write_tolerated(self, tmp_path):
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"}\n{"op":"b"')  # crash mid-write
        with AppendLog(path) as log:
            assert [r["op"] for r in log.replay()] == ["a"]

    def test_torn_trailing_write_truncated_away(self, tmp_path):
        """Replay repairs the file: appends after a torn write must not
        concatenate onto the partial record and corrupt the log."""
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"}\n{"op":"b","x":')  # kill -9 mid-write
        with AppendLog(path) as log:
            assert [r["op"] for r in log.replay()] == ["a"]
            # The torn bytes are gone from disk...
            assert path.read_text() == '{"op":"a"}\n'
            # ...so a post-crash append lands on a clean boundary.
            log.append({"op": "c"})
            assert [r["op"] for r in log.replay()] == ["a", "c"]
        with AppendLog(path) as reopened:
            assert [r["op"] for r in reopened.replay()] == ["a", "c"]

    def test_missing_trailing_newline_repaired(self, tmp_path):
        """A crash that truncates exactly the trailing newline leaves a
        complete final record: replay keeps it and rewrites the
        terminator, so the next append cannot concatenate onto the line
        and corrupt the log."""
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"}\n{"op":"b"}')  # newline lost to a crash
        with AppendLog(path) as log:
            assert [r["op"] for r in log.replay()] == ["a", "b"]
            # The terminator is back on disk...
            assert path.read_text() == '{"op":"a"}\n{"op":"b"}\n'
            # ...so a post-crash append lands on a clean boundary.
            log.append({"op": "c"})
            assert [r["op"] for r in log.replay()] == ["a", "b", "c"]
        with AppendLog(path) as reopened:
            assert [r["op"] for r in reopened.replay()] == ["a", "b", "c"]

    def test_torn_first_line_truncates_to_empty(self, tmp_path):
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"')  # crash during the very first record
        with AppendLog(path) as log:
            assert list(log.replay()) == []
            assert path.read_text() == ""
            log.append({"op": "b"})
            assert [r["op"] for r in log.replay()] == ["b"]

    def test_parent_directory_created(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "l.log"
        with AppendLog(path) as log:
            log.append({"op": "a"})
        assert path.exists()


class TestOpenRepair:
    """Crash repair must run on *open*, not first replay: an append issued
    before any replay must land on a clean record boundary."""

    def test_append_before_replay_does_not_corrupt_torn_tail(self, tmp_path):
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"}\n{"op":"b","x":')  # kill -9 mid-write
        with AppendLog(path) as log:
            log.append({"op": "c"})  # no replay() first — the PR 5 hole
        with AppendLog(path) as reopened:
            assert [r["op"] for r in reopened.replay()] == ["a", "c"]

    def test_append_before_replay_does_not_concatenate_onto_lost_newline(
        self, tmp_path
    ):
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"}\n{"op":"b"}')  # newline lost to a crash
        with AppendLog(path) as log:
            log.append({"op": "c"})
        with AppendLog(path) as reopened:
            assert [r["op"] for r in reopened.replay()] == ["a", "b", "c"]

    def test_open_repairs_the_file_on_disk(self, tmp_path):
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"}\n{"op":"b","x":')
        log = AppendLog(path)
        log.close()
        assert path.read_text() == '{"op":"a"}\n'

    def test_open_repair_handles_torn_tail_longer_than_a_block(self, tmp_path):
        """The backwards tail scan must cross block boundaries."""
        path = tmp_path / "l.log"
        torn = '{"op":"b","x":"' + "y" * (200 * 1024)
        path.write_text('{"op":"a"}\n' + torn)
        with AppendLog(path) as log:
            assert [r["op"] for r in log.replay()] == ["a"]
        assert path.read_text() == '{"op":"a"}\n'


class TestStreamingReplay:
    def test_replay_from_offset_yields_only_the_suffix(self, tmp_path):
        with AppendLog(tmp_path / "l.log") as log:
            log.append({"op": "a"})
            log.append({"op": "b"})
            offset = log.tail_offset()
            log.append({"op": "c"})
            log.append({"op": "d"})
            assert [r["op"] for r in log.replay(from_offset=offset)] == ["c", "d"]
            assert [r["op"] for r in log.replay(from_offset=0)] == [
                "a", "b", "c", "d",
            ]

    def test_replay_is_an_iterator_not_a_list(self, tmp_path):
        with AppendLog(tmp_path / "l.log") as log:
            log.append({"op": "a"})
            replay = log.replay()
            assert iter(replay) is iter(replay)  # a lazy generator

    def test_replay_memory_is_bounded_not_proportional_to_log_size(
        self, tmp_path
    ):
        """The whole point of streaming replay: a multi-megabyte log must
        not be materialized in memory (the old readlines() slurp was)."""
        path = tmp_path / "l.log"
        with AppendLog(path) as log:
            for i in range(20_000):
                log.append({"op": "x", "i": i, "pad": "p" * 40})
            log.flush()
            assert path.stat().st_size > 1_000_000
            tracemalloc.start()
            count = 0
            for record in log.replay():
                count += 1
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert count == 20_000
            assert peak < 256 * 1024, f"replay materialized {peak} bytes"

    def test_partial_replay_has_no_destructive_side_effects(self, tmp_path):
        """A consumer crash mid-replay (suffix replay included) leaves the
        log intact: the next bootstrap sees every record."""
        path = tmp_path / "l.log"
        with AppendLog(path) as log:
            for i in range(10):
                log.append({"op": "x", "i": i})
        for consumed in (0, 1, 5, 9):
            log = AppendLog(path)
            replay = log.replay()
            for _ in range(consumed):
                next(replay)
            replay.close()  # simulated crash: the iterator is abandoned
            log.close()
            with AppendLog(path) as fresh:
                assert [r["i"] for r in fresh.replay()] == list(range(10))


class TestPrefixCompaction:
    def seeded(self, tmp_path, n=6):
        log = AppendLog(tmp_path / "l.log")
        offsets = []
        for i in range(n):
            offsets.append(log.tail_offset())
            log.append({"op": "x", "i": i})
        return log, offsets

    def test_truncate_prefix_drops_covered_records(self, tmp_path):
        log, offsets = self.seeded(tmp_path)
        try:
            dropped = log.truncate_prefix(offsets[4])
            assert dropped == 4
            assert log.base_offset == offsets[4]
            assert log.base_records == 4
            assert [r["i"] for r in log.replay()] == [4, 5]
        finally:
            log.close()

    def test_logical_offsets_survive_compaction(self, tmp_path):
        """A tail_offset recorded before the compaction must stay valid
        after it — that is what keeps snapshot manifests meaningful."""
        log, offsets = self.seeded(tmp_path)
        try:
            tail_before = log.tail_offset()
            log.truncate_prefix(offsets[3])
            assert log.tail_offset() == tail_before
            assert [r["i"] for r in log.replay(from_offset=offsets[5])] == [5]
            log.append({"op": "x", "i": 6})
            assert [r["i"] for r in log.replay(from_offset=tail_before)] == [6]
        finally:
            log.close()

    def test_replay_below_base_raises_truncated_history(self, tmp_path):
        log, offsets = self.seeded(tmp_path)
        try:
            log.truncate_prefix(offsets[3])
            with pytest.raises(TruncatedHistoryError):
                log.replay(from_offset=offsets[2])
        finally:
            log.close()

    def test_meta_header_survives_reopen_and_is_never_yielded(self, tmp_path):
        log, offsets = self.seeded(tmp_path)
        log.truncate_prefix(offsets[2])
        log.close()
        assert '"__log_meta__"' in (tmp_path / "l.log").read_text()
        with AppendLog(tmp_path / "l.log") as reopened:
            assert reopened.base_offset == offsets[2]
            assert reopened.base_records == 2
            assert [r["i"] for r in reopened.replay()] == [2, 3, 4, 5]

    def test_repeated_compaction_accumulates_base_records(self, tmp_path):
        log, offsets = self.seeded(tmp_path)
        try:
            log.truncate_prefix(offsets[2])
            log.truncate_prefix(offsets[5])
            assert log.base_records == 5
            assert [r["i"] for r in log.replay()] == [5]
            log.append({"op": "x", "i": 6})
            assert [r["i"] for r in log.replay()] == [5, 6]
        finally:
            log.close()

    def test_truncate_prefix_to_current_base_is_a_noop(self, tmp_path):
        log, offsets = self.seeded(tmp_path)
        try:
            assert log.truncate_prefix(0) == 0
            log.truncate_prefix(offsets[3])
            assert log.truncate_prefix(offsets[3]) == 0
            assert log.truncate_prefix(offsets[1]) == 0
        finally:
            log.close()

    def test_truncate_to_works_after_prefix_compaction(self, tmp_path):
        log, offsets = self.seeded(tmp_path)
        try:
            log.truncate_prefix(offsets[2])
            rollback = log.tail_offset()
            log.append({"op": "y"})
            log.truncate_to(rollback)
            assert [r["i"] for r in log.replay()] == [2, 3, 4, 5]
        finally:
            log.close()


class TestRecordsAppendedAccounting:
    """records_appended must not over-report after rollbacks or rewrites:
    it counts this handle's appends net of truncate_to rollbacks, and
    compact() resets it (the rewrite is a new baseline, not appends)."""

    def test_truncate_to_subtracts_rolled_back_records(self, tmp_path):
        with AppendLog(tmp_path / "l.log") as log:
            log.append({"op": "a"})
            offset = log.tail_offset()
            log.append({"op": "b"})
            log.append({"op": "c"})
            assert log.records_appended == 3
            log.truncate_to(offset)
            assert log.records_appended == 1
            log.append({"op": "d"})
            assert log.records_appended == 2

    def test_compact_resets_the_counter(self, tmp_path):
        with AppendLog(tmp_path / "l.log") as log:
            for i in range(5):
                log.append({"op": "x", "i": i})
            log.compact([{"op": "x", "i": 4}])
            assert log.records_appended == 0
            log.append({"op": "y"})
            assert log.records_appended == 1

    def test_truncate_prefix_keeps_the_counter(self, tmp_path):
        """Prefix compaction drops records a snapshot already covers;
        the handle really did append them, so the net count stands."""
        log = AppendLog(tmp_path / "l.log")
        try:
            offsets = []
            for i in range(4):
                offsets.append(log.tail_offset())
                log.append({"op": "x", "i": i})
            log.truncate_prefix(offsets[2])
            assert log.records_appended == 4
        finally:
            log.close()

    def test_counter_never_goes_negative(self, tmp_path):
        path = tmp_path / "l.log"
        with AppendLog(path) as log:
            log.append({"op": "a"})
        with AppendLog(path) as log:  # fresh handle: counter is 0
            log.truncate_to(0)  # rolls back a record the handle never wrote
            assert log.records_appended == 0


class TestRollback:
    def test_truncate_to_rolls_back_appends(self, tmp_path):
        with AppendLog(tmp_path / "l.log") as log:
            log.append({"op": "a"})
            offset = log.tail_offset()
            log.append({"op": "b"})
            log.append({"op": "c"})
            log.truncate_to(offset)
            assert [r["op"] for r in log.replay()] == ["a"]
            log.append({"op": "d"})
            assert [r["op"] for r in log.replay()] == ["a", "d"]

    def test_tail_offset_flushes_buffered_writes(self, tmp_path):
        path = tmp_path / "l.log"
        with AppendLog(path) as log:
            log.append({"op": "a"})
            assert log.tail_offset() == path.stat().st_size > 0


class TestCompaction:
    def test_compact_replaces_contents(self, tmp_path):
        path = tmp_path / "l.log"
        with AppendLog(path) as log:
            for i in range(10):
                log.append({"op": "x", "i": i})
            log.compact([{"op": "x", "i": 9}])
            assert list(log.replay()) == [{"op": "x", "i": 9}]

    def test_appends_work_after_compaction(self, tmp_path):
        path = tmp_path / "l.log"
        with AppendLog(path) as log:
            log.append({"op": "a"})
            log.compact([{"op": "a"}])
            log.append({"op": "b"})
            assert [r["op"] for r in log.replay()] == ["a", "b"]
