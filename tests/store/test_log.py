"""Tests for the append-only log."""

import pytest

from repro.exceptions import DatasetError
from repro.store import AppendLog


class TestAppendAndReplay:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.log"
        with AppendLog(path) as log:
            log.append({"op": "a", "x": 1})
            log.append({"op": "b", "y": [1, 2]})
        with AppendLog(path) as log:
            assert list(log.replay()) == [
                {"op": "a", "x": 1},
                {"op": "b", "y": [1, 2]},
            ]

    def test_records_appended_counter(self, tmp_path):
        with AppendLog(tmp_path / "l.log") as log:
            assert log.records_appended == 0
            log.append({"op": "a"})
            assert log.records_appended == 1

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"}\n\n{"op":"b"}\n')
        with AppendLog(path) as log:
            assert [r["op"] for r in log.replay()] == ["a", "b"]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"}\nnot-json\n{"op":"b"}\n')
        with AppendLog(path) as log, pytest.raises(DatasetError, match="corrupt"):
            list(log.replay())

    def test_torn_trailing_write_tolerated(self, tmp_path):
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"}\n{"op":"b"')  # crash mid-write
        with AppendLog(path) as log:
            assert [r["op"] for r in log.replay()] == ["a"]

    def test_torn_trailing_write_truncated_away(self, tmp_path):
        """Replay repairs the file: appends after a torn write must not
        concatenate onto the partial record and corrupt the log."""
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"}\n{"op":"b","x":')  # kill -9 mid-write
        with AppendLog(path) as log:
            assert [r["op"] for r in log.replay()] == ["a"]
            # The torn bytes are gone from disk...
            assert path.read_text() == '{"op":"a"}\n'
            # ...so a post-crash append lands on a clean boundary.
            log.append({"op": "c"})
            assert [r["op"] for r in log.replay()] == ["a", "c"]
        with AppendLog(path) as reopened:
            assert [r["op"] for r in reopened.replay()] == ["a", "c"]

    def test_missing_trailing_newline_repaired(self, tmp_path):
        """A crash that truncates exactly the trailing newline leaves a
        complete final record: replay keeps it and rewrites the
        terminator, so the next append cannot concatenate onto the line
        and corrupt the log."""
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"}\n{"op":"b"}')  # newline lost to a crash
        with AppendLog(path) as log:
            assert [r["op"] for r in log.replay()] == ["a", "b"]
            # The terminator is back on disk...
            assert path.read_text() == '{"op":"a"}\n{"op":"b"}\n'
            # ...so a post-crash append lands on a clean boundary.
            log.append({"op": "c"})
            assert [r["op"] for r in log.replay()] == ["a", "b", "c"]
        with AppendLog(path) as reopened:
            assert [r["op"] for r in reopened.replay()] == ["a", "b", "c"]

    def test_torn_first_line_truncates_to_empty(self, tmp_path):
        path = tmp_path / "l.log"
        path.write_text('{"op":"a"')  # crash during the very first record
        with AppendLog(path) as log:
            assert list(log.replay()) == []
            assert path.read_text() == ""
            log.append({"op": "b"})
            assert [r["op"] for r in log.replay()] == ["b"]

    def test_parent_directory_created(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "l.log"
        with AppendLog(path) as log:
            log.append({"op": "a"})
        assert path.exists()


class TestRollback:
    def test_truncate_to_rolls_back_appends(self, tmp_path):
        with AppendLog(tmp_path / "l.log") as log:
            log.append({"op": "a"})
            offset = log.tail_offset()
            log.append({"op": "b"})
            log.append({"op": "c"})
            log.truncate_to(offset)
            assert [r["op"] for r in log.replay()] == ["a"]
            log.append({"op": "d"})
            assert [r["op"] for r in log.replay()] == ["a", "d"]

    def test_tail_offset_flushes_buffered_writes(self, tmp_path):
        path = tmp_path / "l.log"
        with AppendLog(path) as log:
            log.append({"op": "a"})
            assert log.tail_offset() == path.stat().st_size > 0


class TestCompaction:
    def test_compact_replaces_contents(self, tmp_path):
        path = tmp_path / "l.log"
        with AppendLog(path) as log:
            for i in range(10):
                log.append({"op": "x", "i": i})
            log.compact([{"op": "x", "i": 9}])
            assert list(log.replay()) == [{"op": "x", "i": 9}]

    def test_appends_work_after_compaction(self, tmp_path):
        path = tmp_path / "l.log"
        with AppendLog(path) as log:
            log.append({"op": "a"})
            log.compact([{"op": "a"}])
            log.append({"op": "b"})
            assert [r["op"] for r in log.replay()] == ["a", "b"]
