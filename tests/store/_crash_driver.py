"""Child process for the real kill -9 durability test.

Appends deterministic records forever — record *i* is
``{"op": "append", "edges": [["u{i}", "v{i}", i + 1, 1.0]]}`` — flushing
each one and printing its index to stdout, and checkpoints (snapshot +
prefix compaction) every tenth record.  The parent test kills this
process with ``SIGKILL`` at an arbitrary moment and then asserts that a
fresh bootstrap recovers at least every record whose index it saw acked
on stdout.

Run as ``python tests/store/_crash_driver.py LOG_PATH SNAP_DIR``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.cluster.replication import (  # noqa: E402
    append_record,
    apply_record,
    network_state_record,
)
from repro.store import AppendLog, SnapshotStore  # noqa: E402
from repro.temporal.network import TemporalFlowNetwork  # noqa: E402

CHECKPOINT_EVERY = 10


def record_for(index: int) -> dict:
    return append_record([(f"u{index}", f"v{index}", index + 1, 1.0)])


def main() -> None:
    log = AppendLog(sys.argv[1])
    snapshots = SnapshotStore(sys.argv[2])
    mirror = TemporalFlowNetwork()
    index = 0
    while True:
        record = record_for(index)
        log.append(record)
        log.flush()
        apply_record(mirror, record)
        print(index, flush=True)
        index += 1
        if index % CHECKPOINT_EVERY == 0:
            offset = log.tail_offset()
            snapshots.save(
                network_state_record(mirror),
                log_offset=offset,
                records=index,
                epoch=mirror.epoch,
            )
            log.truncate_prefix(offset)


if __name__ == "__main__":
    main()
