"""Tests for the repro-bfq command-line interface."""

import pytest

from repro.cli import main
from repro.temporal import TemporalFlowNetwork, save_edge_list, save_jsonl


@pytest.fixture
def edges_csv(tmp_path):
    network = TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 10, 500.0),
            ("s", "b", 10, 400.0),
            ("a", "t", 12, 500.0),
            ("b", "t", 13, 400.0),
            ("s", "a", 2, 20.0),
            ("a", "t", 5, 20.0),
        ]
    )
    path = tmp_path / "edges.csv"
    save_edge_list(network, path)
    return path


class TestStats:
    def test_prints_table(self, edges_csv, capsys):
        assert main(["stats", str(edges_csv)]) == 0
        out = capsys.readouterr().out
        assert "Avg. degree" in out
        assert "edges.csv" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.csv")]) == 2
        assert "error" in capsys.readouterr().err


class TestQuery:
    def test_finds_burst(self, edges_csv, capsys):
        code = main(
            [
                "query", str(edges_csv),
                "--source", "s", "--sink", "t", "--delta", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "density" in out
        assert "300" in out  # 900 units over [10, 13]

    def test_algorithm_flag(self, edges_csv, capsys):
        for algorithm in ("bfq", "bfq+", "bfq*"):
            assert main(
                [
                    "query", str(edges_csv),
                    "--source", "s", "--sink", "t", "--delta", "2",
                    "--algorithm", algorithm,
                ]
            ) == 0
        assert capsys.readouterr().out.count("density") == 3

    def test_no_flow_exits_nonzero(self, edges_csv, capsys):
        code = main(
            [
                "query", str(edges_csv),
                "--source", "t", "--sink", "s", "--delta", "1",
            ]
        )
        assert code == 1
        assert "no bursting flow" in capsys.readouterr().out

    def test_bad_query_reports_error(self, edges_csv, capsys):
        code = main(
            [
                "query", str(edges_csv),
                "--source", "s", "--sink", "ghost", "--delta", "1",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_compact_timestamps_round_trip(self, tmp_path, capsys):
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "a", 1_000_000, 5.0),
                ("a", "t", 1_000_900, 5.0),
            ]
        )
        path = tmp_path / "raw.csv"
        save_edge_list(network, path)
        code = main(
            [
                "query", str(path), "--compact-timestamps",
                "--source", "s", "--sink", "t", "--delta", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The interval is reported in the original event times.
        assert "1000000" in out.replace(",", "")


class TestScan:
    def test_scan_jsonl(self, tmp_path, capsys):
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "a", 10, 500.0),
                ("a", "t", 12, 500.0),
                ("s", "x", 1, 2.0),
                ("x", "y", 3, 2.0),
                ("y", "t", 20, 2.0),
            ]
        )
        path = tmp_path / "edges.jsonl"
        save_jsonl(network, path)
        code = main(
            [
                "scan", str(path),
                "--sources", "s,x",
                "--sinks", "t,y",
                "--delta-fractions", "0.1",
                "--top", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scanned" in out
        assert "density" in out
