"""Flow-certificate checker tests: honest claims pass, corrupted ones fail."""

import dataclasses
import random

import pytest

from repro.core.bfq import bfq
from repro.core.query import BurstingFlowQuery, BurstingFlowResult
from repro.oracle.certificate import check_certificate
from repro.oracle.generators import GENERATORS
from repro.temporal import TemporalFlowNetwork


def _honest_claim():
    network = TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 1, 3.0),
            ("a", "t", 2, 2.0),
            ("s", "b", 2, 4.0),
            ("b", "t", 3, 4.0),
            ("a", "t", 5, 5.0),
        ]
    )
    query = BurstingFlowQuery("s", "t", 1)
    return network, query, bfq(network, query)


class TestHonestClaims:
    def test_bfq_answer_certifies(self):
        network, query, result = _honest_claim()
        report = check_certificate(network, query, result)
        assert report.ok, report.issues
        assert report.recomputed_value == pytest.approx(result.flow_value)

    def test_no_flow_claim_certifies(self):
        network = TemporalFlowNetwork.from_tuples(
            [("a", "s", 1, 2.0), ("t", "a", 2, 2.0)]
        )
        query = BurstingFlowQuery("s", "t", 1)
        result = bfq(network, query)
        assert result.interval is None
        report = check_certificate(network, query, result)
        assert report.ok, report.issues

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_generator_cases_certify(self, name):
        rng = random.Random(hash(name) & 0xFFFF)
        for _ in range(5):
            case = GENERATORS[name](rng)
            network, query = case.network(), case.query()
            result = bfq(network, query)
            report = check_certificate(network, query, result)
            assert report.ok, (case.describe(), report.issues)


class TestCorruptedClaims:
    def test_inflated_flow_value_rejected(self):
        network, query, result = _honest_claim()
        lie = dataclasses.replace(
            result,
            flow_value=result.flow_value + 1.0,
            density=(result.flow_value + 1.0)
            / (result.interval[1] - result.interval[0]),
        )
        report = check_certificate(network, query, lie)
        assert not report.ok
        assert any("recomputed" in issue for issue in report.issues)

    def test_inconsistent_density_rejected(self):
        network, query, result = _honest_claim()
        lie = dataclasses.replace(result, density=result.density * 3)
        report = check_certificate(network, query, lie)
        assert not report.ok
        assert any("density" in issue for issue in report.issues)

    def test_shifted_interval_rejected(self):
        network, query, result = _honest_claim()
        lo, hi = result.interval
        lie = dataclasses.replace(result, interval=(lo + 1, hi + 1))
        report = check_certificate(network, query, lie)
        assert not report.ok

    def test_interval_shorter_than_delta_rejected(self):
        network, query, result = _honest_claim()
        query5 = BurstingFlowQuery("s", "t", 5)
        report = check_certificate(network, query5, result)
        assert not report.ok
        assert any("shorter than" in issue for issue in report.issues)

    def test_bogus_no_flow_claim_refuted(self):
        network, query, _ = _honest_claim()
        lie = BurstingFlowResult(density=0.0, interval=None, flow_value=0.0)
        report = check_certificate(network, query, lie)
        assert not report.ok
        assert any("refuted" in issue for issue in report.issues)

    def test_no_flow_claim_with_positive_density_rejected(self):
        network = TemporalFlowNetwork.from_tuples(
            [("a", "s", 1, 2.0), ("t", "a", 2, 2.0)]
        )
        query = BurstingFlowQuery("s", "t", 1)
        lie = BurstingFlowResult(density=1.0, interval=None, flow_value=1.0)
        report = check_certificate(network, query, lie)
        assert not report.ok
