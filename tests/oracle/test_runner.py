"""Differential-runner tests: agreement, bug detection, hypothesis sweep."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oracle import cases as cases_mod
from repro.oracle import runner as runner_mod
from repro.oracle.cases import FuzzCase
from repro.oracle.runner import (
    BACKENDS,
    DEFAULT_BACKENDS,
    FuzzReport,
    fuzz,
    run_differential,
)


def _simple_case() -> FuzzCase:
    return FuzzCase(
        edges=(
            ("s", "a", 1, 3.0),
            ("a", "t", 2, 2.0),
            ("s", "b", 2, 4.0),
            ("b", "t", 3, 4.0),
            ("a", "t", 5, 5.0),
        ),
        source="s",
        sink="t",
        delta=1,
    )


class TestRunDifferential:
    def test_agreement_on_simple_case(self):
        outcome = run_differential(_simple_case())
        assert outcome.ok, outcome.describe()
        # The default run covers every backend except the opt-in ones
        # (cluster boots a live replicated cluster per trial; mining
        # persists and replays a pattern store per trial).
        assert set(outcome.records) == set(DEFAULT_BACKENDS)
        assert set(DEFAULT_BACKENDS) == set(BACKENDS) - {"cluster", "mining"}
        records = {r.record for r in outcome.records.values()}
        assert len(records) == 1  # identical (density, interval) everywhere

    def test_cluster_backend_agrees_when_opted_in(self):
        outcome = run_differential(
            _simple_case(), backends=("bfq*", "cluster")
        )
        assert outcome.ok, outcome.describe()
        assert set(outcome.records) == {"bfq*", "cluster"}
        assert (
            outcome.records["cluster"].record
            == outcome.records["bfq*"].record
        )

    def test_agreement_on_no_flow_case(self):
        case = FuzzCase(
            edges=(("a", "s", 1, 2.0), ("t", "a", 2, 2.0)),
            source="s",
            sink="t",
            delta=1,
        )
        outcome = run_differential(case)
        assert outcome.ok, outcome.describe()
        assert all(r.interval is None for r in outcome.records.values())

    def test_backend_subset(self):
        outcome = run_differential(_simple_case(), backends=("bfq", "naive"))
        assert set(outcome.records) == {"bfq", "naive"}
        assert outcome.ok

    def test_detects_density_bug(self, monkeypatch):
        real = BACKENDS["bfq+"]

        def inflated(network, query, **kwargs):
            result = real(network, query, **kwargs)
            return dataclasses.replace(result, density=result.density * 1.5)

        monkeypatch.setitem(runner_mod.BACKENDS, "bfq+", inflated)
        outcome = run_differential(_simple_case(), check_pruning=False)
        assert not outcome.ok
        assert "density" in outcome.kinds

    def test_detects_interval_bug(self, monkeypatch):
        real = BACKENDS["bfq*"]

        def shifted(network, query, **kwargs):
            result = real(network, query, **kwargs)
            lo, hi = result.interval
            return dataclasses.replace(result, interval=(lo + 1, hi + 1))

        monkeypatch.setitem(runner_mod.BACKENDS, "bfq*", shifted)
        outcome = run_differential(_simple_case(), check_pruning=False)
        assert not outcome.ok
        assert "interval" in outcome.kinds
        # The corrupted claim also fails certification: the recomputed
        # Maxflow of the shifted window cannot match the claimed value.
        assert "certificate" in outcome.kinds

    def test_detects_crash(self, monkeypatch):
        def boom(network, query, **kwargs):
            raise RuntimeError("injected")

        monkeypatch.setitem(runner_mod.BACKENDS, "networkx", boom)
        outcome = run_differential(_simple_case(), check_pruning=False)
        assert not outcome.ok
        assert "crash" in outcome.kinds
        assert "networkx" not in outcome.records

    def test_detects_overeager_pruning(self, monkeypatch):
        # Simulate the pre-fix Observation-2 bug: raw-float comparison with
        # no epsilon guard.  The boundary network from test_record then
        # diverges between pruning on and off — the runner must notice.
        import importlib

        plus_mod = importlib.import_module("repro.core.bfq_plus")
        star_mod = importlib.import_module("repro.core.bfq_star")

        def raw_prune(upper_bound, best_density, length):
            return upper_bound < best_density * length

        monkeypatch.setattr(plus_mod, "should_prune", raw_prune)
        monkeypatch.setattr(star_mod, "should_prune", raw_prune)
        case = FuzzCase(
            edges=(
                ("s", "a", 1, 0.9),
                ("a", "t", 2, 0.9),
                ("s", "b", 1, 0.2),
                ("b", "t", 3, 0.2),
                ("s", "c", 1, 0.7),
                ("c", "t", 3, 0.7),
            ),
            source="s",
            sink="t",
            delta=1,
        )
        outcome = run_differential(case)
        # The raw comparison wrongly prunes a true tie; with the canonical
        # tie-break the tie loses anyway, so the *record* stays correct —
        # but the pruned-interval count changes, and on networks where the
        # pruned candidate was strictly better the record breaks.  Either
        # way the run must stay self-consistent:
        pruned = plus_mod.bfq_plus(
            case.network(), case.query(), use_pruning=True
        )
        assert pruned.stats.pruned_intervals == 1  # the bug really fired
        assert outcome.records["bfq+"].record == outcome.records["bfq"].record


class TestFuzz:
    def test_clean_run(self):
        report = fuzz(trials=30, seed=7, shrink=False)
        assert report.ok
        assert report.trials == 30
        assert sum(report.per_generator.values()) == 30
        assert "all backends agree" in report.summary()

    def test_deterministic_for_seed(self):
        a = fuzz(trials=12, seed=3, shrink=False)
        b = fuzz(trials=12, seed=3, shrink=False)
        assert a.per_generator == b.per_generator
        assert a.ok and b.ok

    def test_generator_subset(self):
        report = fuzz(trials=10, seed=0, generators="uniform", shrink=False)
        assert report.per_generator == {"uniform": 10}

    def test_failure_path_dumps_and_shrinks(self, monkeypatch, tmp_path):
        real = BACKENDS["bfq+"]

        def inflated(network, query, **kwargs):
            result = real(network, query, **kwargs)
            return dataclasses.replace(result, density=result.density * 2.0)

        monkeypatch.setitem(runner_mod.BACKENDS, "bfq+", inflated)
        report = fuzz(
            trials=3,
            seed=0,
            generators="uniform",
            certify=False,
            check_pruning=False,
            dump_dir=tmp_path,
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.shrunk is not None
        assert failure.shrunk.num_edges <= failure.outcome.case.num_edges
        assert failure.fixture_path is not None and failure.fixture_path.exists()
        reloaded = cases_mod.load_case(failure.fixture_path)
        # The dumped reproducer still reproduces the same failure kind.
        redo = run_differential(reloaded, certify=False, check_pruning=False)
        assert redo.kinds & failure.outcome.kinds

    def test_report_counts_disagreements(self):
        report = FuzzReport(trials=0, seed=0, backends=("bfq",))
        assert report.ok and report.disagreements == 0


@st.composite
def fuzz_cases(draw):
    """Small random temporal networks + queries (hypothesis's own angles)."""
    n_nodes = draw(st.integers(min_value=2, max_value=5))
    nodes = [f"n{i}" for i in range(n_nodes)]
    horizon = draw(st.integers(min_value=2, max_value=8))
    n_edges = draw(st.integers(min_value=1, max_value=10))
    edges = []
    for _ in range(n_edges):
        u = draw(st.sampled_from(nodes))
        v = draw(st.sampled_from([x for x in nodes if x != u]))
        tau = draw(st.integers(min_value=1, max_value=horizon))
        capacity = draw(st.integers(min_value=1, max_value=64)) / 8.0
        edges.append((u, v, tau, capacity))
    delta = draw(st.integers(min_value=1, max_value=3))
    return FuzzCase(
        edges=tuple(edges),
        source=nodes[0],
        sink=nodes[1],
        delta=delta,
        generator="hypothesis",
    )


class TestHypothesisDifferential:
    @settings(max_examples=60, deadline=None)
    @given(case=fuzz_cases())
    def test_all_backends_agree(self, case):
        outcome = run_differential(case)
        assert outcome.ok, outcome.describe()
