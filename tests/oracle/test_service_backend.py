"""Tests for the ``service`` differential backend.

The backend exercises the full serve path — serialize to wire bytes,
cache, worker, deserialize — and must agree byte-for-byte with the
in-process engines (it wraps BFQ*, so its interval is canonical).
"""

import pytest

from repro import BurstingFlowQuery, find_bursting_flow
from repro.oracle.runner import BACKENDS, PLAN_BACKENDS, run_differential
from repro.service.backend import ServiceBackendError, service_bfq
from repro.temporal import TemporalFlowNetwork

EDGES = (
    ("s", "a", 1, 3.0),
    ("a", "t", 2, 2.0),
    ("s", "b", 2, 4.0),
    ("b", "t", 3, 4.0),
    ("a", "t", 5, 5.0),
)


def _network() -> TemporalFlowNetwork:
    return TemporalFlowNetwork.from_tuples(EDGES)


class TestServiceBackendRegistration:
    def test_registered_in_backends(self):
        assert "service" in BACKENDS
        assert BACKENDS["service"] is service_bfq

    def test_in_plan_backends(self):
        # The service wraps BFQ*, so its interval tie-breaks are the
        # canonical plan and must agree byte-identically.
        assert "service" in PLAN_BACKENDS


class TestServiceBackendAnswers:
    def test_matches_in_process_engine_exactly(self):
        network = _network()
        query = BurstingFlowQuery("s", "t", 1)
        served = service_bfq(network, query)
        fresh = find_bursting_flow(network, query, algorithm="bfq*")
        assert served.density == fresh.density  # exact, not approx:
        assert served.interval == fresh.interval  # JSON round-trips repr
        assert served.flow_value == fresh.flow_value

    def test_no_flow_case(self):
        network = _network()
        served = service_bfq(network, BurstingFlowQuery("t", "s", 1))
        assert not served.found
        assert served.interval is None

    def test_kernel_passthrough(self):
        network = _network()
        query = BurstingFlowQuery("s", "t", 1)
        for kernel in ("persistent", "object"):
            served = service_bfq(network, query, kernel=kernel)
            fresh = find_bursting_flow(network, query, algorithm="bfq*")
            assert served.density == fresh.density
            assert served.interval == fresh.interval

    def test_source_network_is_not_mutated(self):
        network = _network()
        epoch_before = network.epoch
        service_bfq(network, BurstingFlowQuery("s", "t", 1))
        assert network.epoch == epoch_before
        assert network.num_edges == len(EDGES)

    def test_invalid_query_surfaces_as_backend_error(self):
        network = _network()
        with pytest.raises(ServiceBackendError):
            service_bfq(network, BurstingFlowQuery("nobody", "t", 1))


class TestServiceInDifferentialRunner:
    def test_agreement_including_service(self):
        from repro.oracle.cases import FuzzCase

        case = FuzzCase(edges=EDGES, source="s", sink="t", delta=1)
        outcome = run_differential(
            case, backends=("bfq", "bfq*", "naive", "service")
        )
        assert outcome.ok, outcome.describe()
        assert set(outcome.records) >= {"bfq*", "service"}
        assert (
            outcome.records["service"].interval
            == outcome.records["bfq*"].interval
        )
