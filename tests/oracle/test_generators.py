"""Adversarial-generator tests: shape, determinism, target features."""

import random

import pytest

from repro.exceptions import ReproError
from repro.oracle.generators import GENERATORS, resolve_generators


@pytest.mark.parametrize("name", sorted(GENERATORS))
class TestEveryGenerator:
    def test_deterministic_given_seed(self, name):
        a = GENERATORS[name](random.Random(42))
        b = GENERATORS[name](random.Random(42))
        assert a == b

    def test_case_is_materialisable(self, name):
        rng = random.Random(7)
        for _ in range(10):
            case = GENERATORS[name](rng)
            network = case.network()
            assert case.source in network and case.sink in network
            assert case.delta >= 1
            assert case.generator == name
            # Small enough for the naive O(|T|^2) oracle.
            assert network.num_timestamps <= 16
            query = case.query()
            query.validate_against(network)


class TestTargetedFeatures:
    def test_parallel_multiedges_really_duplicates(self):
        rng = random.Random(1)
        case = GENERATORS["parallel_multiedges"](rng)
        triples = [(u, v, tau) for (u, v, tau, _) in case.edges]
        assert len(triples) > len(set(triples))  # the capacity-merge path

    def test_fractional_capacities_are_dyadic(self):
        rng = random.Random(2)
        case = GENERATORS["fractional_capacities"](rng)
        for _, _, _, capacity in case.edges:
            assert (capacity * 64) == int(capacity * 64)

    def test_disconnected_phases_leaves_a_gap(self):
        rng = random.Random(3)
        # At least one sampled case has a timestamp gap of >= 2.
        for _ in range(10):
            case = GENERATORS["disconnected_phases"](rng)
            stamps = sorted({tau for (_, _, tau, _) in case.edges})
            gaps = [b - a for a, b in zip(stamps, stamps[1:])]
            if gaps and max(gaps) >= 2:
                return
        pytest.fail("no dead gap in 10 disconnected_phases samples")

    def test_hold_chains_have_multi_stamp_timelines(self):
        rng = random.Random(4)
        case = GENERATORS["hold_chains"](rng)
        network = case.network()
        stamps_per_node = [
            len(network.tistamp_out("s")),
            len(network.tistamp_in("t")),
        ]
        assert max(stamps_per_node) >= 2


class TestResolveGenerators:
    def test_none_selects_all(self):
        assert resolve_generators(None).keys() == GENERATORS.keys()

    def test_subset(self):
        selected = resolve_generators("uniform, sink_fanin")
        assert set(selected) == {"uniform", "sink_fanin"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError, match="unknown generator"):
            resolve_generators("uniform,bogus")

    def test_empty_selection_rejected(self):
        with pytest.raises(ReproError, match="no generators"):
            resolve_generators(" , ")
