"""Canonical tie-break (BestRecord) and pruning-epsilon regression tests."""

import itertools
import random

import pytest

from repro.core import find_bursting_flow
from repro.core.bfq_plus import bfq_plus
from repro.core.bfq_star import bfq_star
from repro.core.query import BurstingFlowQuery
from repro.core.record import (
    DENSITY_EPSILON,
    PRUNING_EPSILON,
    BestRecord,
    should_prune,
)
from repro.temporal import TemporalFlowNetwork


class TestCanonicalTieBreak:
    def test_higher_density_wins(self):
        best = BestRecord()
        best.offer(2.0, 1, 3)  # density 1.0
        assert best.offer(3.0, 5, 7)  # density 1.5
        assert best.interval == (5, 7)

    def test_density_tie_earlier_start_wins(self):
        best = BestRecord()
        best.offer(2.0, 5, 7)  # density 1.0
        assert best.offer(2.0, 1, 3)  # same density, earlier start
        assert best.interval == (1, 3)
        # ...and the later start never displaces the earlier one.
        assert not best.offer(2.0, 5, 7)
        assert best.interval == (1, 3)

    def test_density_tie_same_start_shorter_wins(self):
        best = BestRecord()
        best.offer(4.0, 1, 5)  # density 1.0 over length 4
        assert best.offer(2.0, 1, 3)  # density 1.0 over length 2
        assert best.interval == (1, 3)
        assert not best.offer(4.0, 1, 5)

    def test_zero_value_candidates_never_win(self):
        best = BestRecord()
        assert not best.offer(0.0, 1, 3)
        assert best.interval is None
        assert best.density == 0.0

    def test_degenerate_interval_rejected(self):
        best = BestRecord()
        assert not best.offer(1.0, 3, 3)
        assert best.interval is None

    def test_near_tie_within_epsilon_resolves_by_interval(self):
        # Two densities differing by float-summation noise (far below the
        # DENSITY_EPSILON window) must behave as an exact tie.
        best = BestRecord()
        noisy = 1.0 + DENSITY_EPSILON / 100
        best.offer(noisy * 2, 5, 7)
        assert best.offer(2.0, 1, 3)  # "lower" density but within the window
        assert best.interval == (1, 3)

    def test_order_independence(self):
        """The outcome of offering a candidate set must not depend on order."""
        candidates = [
            (2.0, 1, 3),  # density 1.0
            (2.0, 5, 7),  # density 1.0 (tie, later start)
            (4.0, 1, 5),  # density 1.0 (tie, same start, longer)
            (1.5, 2, 4),  # density 0.75
            (3.0, 6, 8),  # density 1.5 (winner)
            (3.0, 4, 6),  # density 1.5 (tie, earlier start -> canonical)
        ]
        results = set()
        for perm in itertools.permutations(candidates):
            best = BestRecord()
            for value, tau_s, tau_e in perm:
                best.offer(value, tau_s, tau_e)
            results.add((best.density, best.interval, best.value))
        assert len(results) == 1
        ((_, interval, _),) = results
        assert interval == (4, 6)

    def test_order_independence_random(self):
        rng = random.Random(20260806)
        for _ in range(50):
            candidates = [
                (
                    rng.randint(1, 8) / 4.0 * rng.randint(1, 4),
                    tau_s := rng.randint(1, 6),
                    tau_s + rng.randint(1, 4),
                )
                for _ in range(rng.randint(1, 8))
            ]
            baseline = None
            for perm in itertools.permutations(candidates):
                best = BestRecord()
                for value, tau_s, tau_e in perm:
                    best.offer(value, tau_s, tau_e)
                outcome = (best.density, best.interval, best.value)
                if baseline is None:
                    baseline = outcome
                assert outcome == baseline


class TestPruningEpsilon:
    def test_exact_tie_is_not_pruned(self):
        # upper bound exactly equals best * length: the candidate can still
        # tie, so Observation 2 must keep it.
        assert not should_prune(1.6, 0.8, 2)

    def test_float_noise_below_target_is_not_pruned(self):
        # 0.1 + 0.7 = 0.7999999999999999 in binary floating point: a
        # mathematically exact tie whose computed upper bound dips below
        # the target by ~1e-16.  The raw comparison pruned this.
        upper = 0.1 + 0.7
        target_density, length = 0.8, 1
        assert upper < target_density * length  # the old, buggy test fired
        assert not should_prune(upper, target_density, length)

    def test_clearly_dominated_candidate_is_pruned(self):
        assert should_prune(1.0, 0.8, 2)
        assert should_prune(1.6 - 1e-6, 0.8, 2)

    def test_epsilon_ordering(self):
        # Pruning slack must be strictly wider than the density tie window,
        # otherwise a pruned candidate could still have tied the record.
        assert PRUNING_EPSILON > DENSITY_EPSILON


def _boundary_network() -> TemporalFlowNetwork:
    """Capacities chosen so the Observation-2 bound lands exactly on a tie.

    Window [1, 2] carries 0.9 (density 0.9, the early best).  Extending to
    [1, 3] adds sink capacity 0.2 + 0.7; through the prefix-sum window
    query that pending capacity computes to 0.8999999999999998, so the
    upper bound 0.9 + pending sits a hair *below* the target
    0.9 * 2 = 1.8 — yet mathematically [1, 3] carries exactly 1.8, a
    legitimate density tie that Observation 2 must not prune.
    """
    return TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 1, 0.9),
            ("a", "t", 2, 0.9),
            ("s", "b", 1, 0.2),
            ("b", "t", 3, 0.2),
            ("s", "c", 1, 0.7),
            ("c", "t", 3, 0.7),
        ]
    )


class TestPruningBoundaryRegression:
    """End-to-end regression for the raw-float Observation-2 comparison."""

    def test_float_pattern_is_as_designed(self):
        network = _boundary_network()
        pending = network.sink_capacity_in_window("t", 3, 3)
        # Mathematically 0.9; the float computation dips just below, so the
        # raw Observation-2 comparison (upper < best * length) fires.
        assert pending < 0.9
        assert 0.9 + pending < 0.9 * 2

    @pytest.mark.parametrize("algorithm", [bfq_plus, bfq_star])
    def test_pruning_does_not_change_the_record(self, algorithm):
        network = _boundary_network()
        query = BurstingFlowQuery("s", "t", 1)
        pruned = algorithm(network, query, use_pruning=True)
        unpruned = algorithm(network, query, use_pruning=False)
        assert pruned.density == unpruned.density
        assert pruned.interval == unpruned.interval
        # Canonical tie-break: [1, 2] and [1, 3] tie at density 0.9; the
        # shorter window at the same start wins.
        assert pruned.interval == (1, 2)

    def test_boundary_candidate_is_evaluated_not_pruned(self):
        network = _boundary_network()
        query = BurstingFlowQuery("s", "t", 1)
        result = bfq_plus(network, query, use_pruning=True)
        # The epsilon guard must keep the [1, 3] tie alive even though the
        # raw comparison says "prune".
        assert result.stats.pruned_intervals == 0

    def test_all_algorithms_agree_on_boundary_network(self):
        network = _boundary_network()
        query = BurstingFlowQuery("s", "t", 1)
        records = {
            name: (
                (r := find_bursting_flow(network, query, algorithm=name)).density,
                r.interval,
            )
            for name in ("bfq", "bfq+", "bfq*")
        }
        assert len(set(records.values())) == 1, records
