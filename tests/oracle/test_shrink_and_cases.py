"""Shrinker and case-fixture tests."""

import json
import random

from repro.oracle.cases import CaseLibrary, FuzzCase, dump_case, load_case
from repro.oracle.generators import GENERATORS
from repro.oracle.shrink import shrink_case


def _big_case() -> FuzzCase:
    return GENERATORS["uniform"](random.Random(11))


class TestCases:
    def test_round_trip(self, tmp_path):
        case = _big_case()
        path = dump_case(case, tmp_path / "case.json")
        reloaded = load_case(path)
        assert reloaded == case

    def test_dump_creates_parent_directories(self, tmp_path):
        case = _big_case()
        path = dump_case(case, tmp_path / "deep" / "nested" / "case.json")
        assert path.exists()
        assert json.loads(path.read_text())["edges"]

    def test_network_always_contains_endpoints(self):
        case = FuzzCase(edges=(), source="s", sink="t", delta=1)
        network = case.network()
        assert "s" in network and "t" in network

    def test_library_avoids_collisions(self, tmp_path):
        library = CaseLibrary(tmp_path)
        case = _big_case()
        first = library.add(case, "repro")
        second = library.add(case, "repro")
        assert first != second
        assert len(library.load_all()) == 2


class TestShrink:
    def test_result_still_fails(self):
        case = _big_case()
        target = case.edges[0]

        def still_failing(candidate: FuzzCase) -> bool:
            return target in candidate.edges

        shrunk = shrink_case(case, still_failing)
        assert still_failing(shrunk)
        assert shrunk.generator == "shrunk"

    def test_reduces_to_the_single_relevant_edge(self):
        case = _big_case()
        target = case.edges[3]

        def still_failing(candidate: FuzzCase) -> bool:
            return target in candidate.edges

        shrunk = shrink_case(case, still_failing)
        assert shrunk.num_edges == 1
        assert shrunk.edges[0] == target

    def test_delta_is_minimised(self):
        case = FuzzCase(
            edges=(("s", "t", 1, 2.0), ("s", "t", 5, 2.0)),
            source="s",
            sink="t",
            delta=4,
        )

        def still_failing(candidate: FuzzCase) -> bool:
            return candidate.num_edges >= 1

        shrunk = shrink_case(case, still_failing)
        assert shrunk.delta == 1

    def test_capacities_are_simplified(self):
        case = FuzzCase(
            edges=(("s", "t", 1, 7.25),),
            source="s",
            sink="t",
            delta=1,
        )

        def still_failing(candidate: FuzzCase) -> bool:
            return candidate.num_edges == 1

        shrunk = shrink_case(case, still_failing)
        assert shrunk.edges[0][3] == 1.0

    def test_budget_stops_early(self):
        case = _big_case()
        calls = []

        def still_failing(candidate: FuzzCase) -> bool:
            calls.append(1)
            return True

        shrink_case(case, still_failing, budget=5)
        assert len(calls) <= 5

    def test_crashing_predicate_counts_as_not_failing(self):
        case = _big_case()

        def touchy(candidate: FuzzCase) -> bool:
            if candidate.num_edges < case.num_edges:
                raise RuntimeError("boom")
            return True

        shrunk = shrink_case(case, touchy)
        assert shrunk.num_edges == case.num_edges
