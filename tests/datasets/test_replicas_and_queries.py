"""Tests for the Table-2 replicas, the registry and workload generation."""

import pytest

from repro.datasets import (
    BENCHMARK_DATASETS,
    generate_queries,
    make_case_study,
    make_dataset,
)
from repro.exceptions import DatasetError
from repro.temporal import network_stats
from repro.temporal.reachability import min_temporal_hops


class TestRegistry:
    def test_all_four_datasets_present(self):
        assert set(BENCHMARK_DATASETS) == {"bayc", "prosper", "ctu13", "btc2011"}

    def test_make_dataset_case_insensitive(self):
        network = make_dataset("BAYC", scale=0.2)
        assert network.num_nodes > 0

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            make_dataset("enron")

    def test_deterministic(self):
        a = make_dataset("ctu13", scale=0.2)
        b = make_dataset("ctu13", scale=0.2)
        assert sorted(e.key() for e in a.edges()) == sorted(
            e.key() for e in b.edges()
        )

    def test_scale_shrinks(self):
        small = make_dataset("btc2011", scale=0.1)
        large = make_dataset("btc2011", scale=0.5)
        assert small.num_edges < large.num_edges


class TestReplicaShapes:
    """The Table-2 *shape* relations that drive algorithm behaviour."""

    @pytest.fixture(scope="class")
    def stats(self):
        return {
            name: network_stats(make_dataset(name, scale=0.5))
            for name in BENCHMARK_DATASETS
        }

    def test_prosper_is_densest(self, stats):
        prosper = stats["prosper"]
        for name, other in stats.items():
            if name != "prosper":
                assert prosper.avg_degree > other.avg_degree

    def test_prosper_has_fewest_timestamps(self, stats):
        prosper = stats["prosper"]
        for name, other in stats.items():
            if name != "prosper":
                assert prosper.num_timestamps < other.num_timestamps

    def test_ctu13_has_largest_degree_skew(self, stats):
        ctu = stats["ctu13"]
        for name, other in stats.items():
            if name != "ctu13":
                assert ctu.stddev_degree > other.stddev_degree

    def test_btc2011_is_sparse(self, stats):
        assert stats["btc2011"].avg_degree < 8


class TestCaseStudy:
    def test_ground_truth_present(self):
        dataset = make_case_study(scale=0.3)
        assert dataset.planted
        burst = dataset.planted[0]
        assert burst.source in dataset.suspicious_sources
        assert burst.sink in dataset.suspicious_sinks
        assert burst.volume > 0
        assert dataset.network.has_node(burst.source)

    def test_benign_nodes_exist(self):
        dataset = make_case_study(scale=0.3)
        for node in dataset.benign_sources + dataset.benign_sinks:
            assert dataset.network.has_node(node)


class TestQueryWorkload:
    @pytest.fixture(scope="class")
    def workload_setup(self):
        network = make_dataset("ctu13", scale=0.5)
        return network, generate_queries(network, count=6, seed=3)

    def test_requested_count(self, workload_setup):
        _, workload = workload_setup
        assert len(workload) == 6

    def test_pairs_are_non_trivial(self, workload_setup):
        network, workload = workload_setup
        for source, sink in workload:
            hops = min_temporal_hops(network, source, sink)
            assert hops is not None and hops >= 3

    def test_pairs_unique(self, workload_setup):
        _, workload = workload_setup
        assert len(set(workload.pairs)) == len(workload.pairs)

    def test_deterministic(self):
        network = make_dataset("bayc", scale=0.5)
        a = generate_queries(network, count=4, seed=9)
        b = generate_queries(network, count=4, seed=9)
        assert a.pairs == b.pairs

    def test_delta_for_fractions(self, workload_setup):
        network, workload = workload_setup
        assert workload.delta_for(0.03) == max(
            1, round(network.num_timestamps * 0.03)
        )
        assert workload.delta_for(0.09) >= workload.delta_for(0.03)

    def test_impossible_count_raises(self):
        from repro.temporal import TemporalFlowNetwork

        tiny = TemporalFlowNetwork.from_tuples([("a", "b", 1, 1.0)])
        with pytest.raises(DatasetError):
            generate_queries(tiny, count=5, seed=0, max_attempts=50)


class TestDeletionHeavyWorkloads:
    def test_min_source_stamps_respected(self):
        network = make_dataset("prosper", scale=0.6)
        workload = generate_queries(
            network, count=4, seed=11, min_source_stamps=5
        )
        for source, _sink in workload:
            assert len(network.tistamp_out(source)) >= 5

    def test_unsatisfiable_constraint_raises(self):
        network = make_dataset("bayc", scale=0.2)
        with pytest.raises(DatasetError):
            generate_queries(
                network, count=3, seed=1, min_source_stamps=10_000,
                max_attempts=100,
            )
