"""Tests for the synthetic generators."""

import pytest

from repro.datasets import (
    bursty_network,
    heavy_tailed_network,
    planted_burst,
    uniform_network,
)
from repro.exceptions import DatasetError
from repro.temporal import network_stats


class TestUniform:
    def test_deterministic_given_seed(self):
        a = uniform_network(20, 50, 30, seed=7)
        b = uniform_network(20, 50, 30, seed=7)
        assert sorted(e.key() for e in a.edges()) == sorted(
            e.key() for e in b.edges()
        )

    def test_different_seeds_differ(self):
        a = uniform_network(20, 50, 30, seed=7)
        b = uniform_network(20, 50, 30, seed=8)
        assert sorted(e.key() for e in a.edges()) != sorted(
            e.key() for e in b.edges()
        )

    def test_capacity_range_respected(self):
        network = uniform_network(10, 40, 10, seed=1, capacity_range=(2.0, 3.0))
        for edge in network.edges():
            assert 2.0 <= edge.capacity <= 3.0 * 40  # merged duplicates

    def test_size_validation(self):
        with pytest.raises(DatasetError):
            uniform_network(1, 5, 5, seed=0)
        with pytest.raises(DatasetError):
            uniform_network(5, 0, 5, seed=0)
        with pytest.raises(DatasetError):
            uniform_network(5, 5, 0, seed=0)


class TestHeavyTailed:
    def test_skew_exceeds_uniform(self):
        uniform = uniform_network(200, 1200, 50, seed=3)
        skewed = heavy_tailed_network(200, 1200, 50, seed=3, hub_bias=0.85)
        assert (
            network_stats(skewed).stddev_degree
            > network_stats(uniform).stddev_degree * 1.5
        )

    def test_hub_bias_validation(self):
        with pytest.raises(DatasetError):
            heavy_tailed_network(10, 10, 10, seed=0, hub_bias=1.5)

    def test_positive_capacities(self):
        network = heavy_tailed_network(30, 100, 20, seed=5)
        assert all(edge.capacity > 0 for edge in network.edges())


class TestBursty:
    def test_edges_cluster_in_bursts(self):
        network = bursty_network(
            50, 2000, 1000, seed=9, num_bursts=3,
            burst_width_fraction=0.01, burst_edge_fraction=0.7,
        )
        counts = {}
        for edge in network.edges():
            counts[edge.tau] = counts.get(edge.tau, 0) + 1
        top_density = max(counts.values())
        mean_density = sum(counts.values()) / len(counts)
        assert top_density > 5 * mean_density


class TestPlantedBurst:
    def test_burst_is_a_real_temporal_flow(self):
        network = uniform_network(30, 60, 200, seed=4)
        record = planted_burst(
            network, "n0", "n1", seed=11, interval=(50, 70),
            volume=999.0, hops=3, num_mule_chains=2,
        )
        from repro import find_bursting_flow

        result = find_bursting_flow(
            network, source="n0", sink="n1", delta=1, algorithm="bfq*"
        )
        # The planted volume must be routable inside the planted window.
        assert result.flow_value >= record.volume - 1e-6 or (
            result.density >= record.volume / (70 - 50) - 1e-6
        )
        lo, hi = result.interval
        assert lo >= 50 - 1 and hi <= 200

    def test_interval_too_short_rejected(self):
        network = uniform_network(10, 20, 100, seed=4)
        with pytest.raises(DatasetError, match="too short"):
            planted_burst(
                network, "n0", "n1", seed=1, interval=(10, 12),
                volume=10.0, hops=3,
            )

    def test_non_positive_volume_rejected(self):
        network = uniform_network(10, 20, 100, seed=4)
        with pytest.raises(DatasetError, match="volume"):
            planted_burst(
                network, "n0", "n1", seed=1, interval=(10, 30), volume=0.0
            )

    def test_mule_nodes_are_fresh(self):
        network = uniform_network(10, 20, 100, seed=4)
        before = set(network.nodes)
        planted_burst(
            network, "n0", "n1", seed=1, interval=(10, 30), volume=10.0
        )
        new_nodes = set(network.nodes) - before
        assert new_nodes
        assert all(str(node).startswith("mule_") for node in new_nodes)
