"""Failure injection: corrupt inputs and broken invariants must fail loudly.

A reproduction library is only trustworthy if it refuses to return answers
from inconsistent state.  These tests poke the guard rails.
"""

import json

import pytest

from repro.exceptions import (
    DatasetError,
    FlowValidationError,
    GraphError,
    InvalidQueryError,
    ReproError,
)
from repro.store import GraphStore
from repro.temporal import TemporalFlowNetwork


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc_type in (
            DatasetError,
            FlowValidationError,
            GraphError,
            InvalidQueryError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_catching_the_base_class_works(self, burst_network):
        from repro import find_bursting_flow

        with pytest.raises(ReproError):
            find_bursting_flow(burst_network, source="s", sink="s", delta=1)


class TestStoreLogCorruption:
    def test_unknown_op_rejected_on_replay(self, tmp_path):
        path = tmp_path / "store.log"
        path.write_text(json.dumps({"op": "explode"}) + "\n")
        with pytest.raises(DatasetError, match="unknown log op"):
            GraphStore(path)

    def test_mid_file_corruption_rejected(self, tmp_path):
        path = tmp_path / "store.log"
        good = json.dumps({"op": "node", "id": "a", "props": {}})
        path.write_text(f"{good}\ngarbage-line\n{good}\n")
        with pytest.raises(DatasetError, match="corrupt"):
            GraphStore(path)

    def test_trailing_torn_write_recovers(self, tmp_path):
        path = tmp_path / "store.log"
        good = json.dumps(
            {"op": "rel", "id": 1, "u": "a", "v": "b", "tau": 1.0,
             "amount": 2.0, "props": {}}
        )
        path.write_text(f"{good}\n{{\"op\": \"rel\", \"id\"")  # torn
        store = GraphStore(path)
        assert store.num_relationships == 1


class TestResidualGuards:
    def test_negative_withdrawal_rejected(self, figure2_network):
        from repro.flownet.network import EdgeRef

        ref = EdgeRef(0, 0)  # first edge; carries no flow yet
        with pytest.raises(GraphError):
            figure2_network.push_on(ref, -1.0)

    def test_overdrawn_push_rejected(self, figure2_network):
        from repro.flownet.network import EdgeRef

        ref = EdgeRef(0, 0)
        capacity = figure2_network.edge_capacity(ref)
        with pytest.raises(GraphError):
            figure2_network.push_on(ref, capacity + 1.0)


class TestDegenerateQueries:
    def test_single_timestamp_network(self):
        network = TemporalFlowNetwork.from_tuples([("s", "t", 4, 3.0)])
        from repro import find_bursting_flow

        result = find_bursting_flow(network, source="s", sink="t", delta=1)
        # Horizon length is zero: no window of length >= 1 exists.
        assert not result.found

    def test_isolated_endpoints(self):
        network = TemporalFlowNetwork.from_tuples([("a", "b", 1, 1.0), ("b", "c", 5, 1.0)])
        network.add_node("s")
        network.add_node("t")
        from repro import find_bursting_flow

        result = find_bursting_flow(network, source="s", sink="t", delta=1)
        assert not result.found

    def test_enormous_capacities_stay_exact(self):
        big = 2.0**50
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 1, big), ("a", "t", 2, big)]
        )
        from repro import find_bursting_flow

        result = find_bursting_flow(network, source="s", sink="t", delta=1)
        assert result.flow_value == big

    def test_many_parallel_edges_merge(self):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "t", 2, 1.0)] * 50 + [("s", "x", 1, 1.0)]
        )
        assert network.capacity("s", "t", 2) == 50.0
        from repro import find_bursting_flow

        result = find_bursting_flow(network, source="s", sink="t", delta=1)
        assert result.flow_value == pytest.approx(50.0)
