"""Shared fixtures for the test-suite."""

from __future__ import annotations

import random

import pytest

from repro.flownet import FlowNetwork
from repro.temporal import TemporalEdge, TemporalFlowNetwork


@pytest.fixture
def figure2_network() -> FlowNetwork:
    """The classical flow network of the paper's Figure 2 (Maxflow = 7)."""
    network = FlowNetwork()
    for u, v, capacity in [
        ("s", "v1", 3.0),
        ("s", "v2", 4.0),
        ("v1", "v3", 3.0),
        ("v2", "v3", 4.0),
        ("v3", "v4", 2.0),
        ("v3", "v5", 5.0),
        ("v4", "t", 2.0),
        ("v5", "t", 5.0),
    ]:
        network.add_edge_labeled(u, v, capacity)
    return network


@pytest.fixture
def burst_network() -> TemporalFlowNetwork:
    """A tiny temporal network with one unambiguous burst.

    900 units travel s -> {a, b} -> t inside [10, 13]; background drip of
    20-30 units trickles over the rest of the horizon [1, 28].
    """
    return TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 10, 500.0),
            ("s", "b", 10, 400.0),
            ("a", "t", 12, 500.0),
            ("b", "t", 13, 400.0),
            ("s", "a", 2, 20.0),
            ("a", "t", 5, 20.0),
            ("s", "c", 20, 30.0),
            ("c", "t", 28, 30.0),
        ]
    )


@pytest.fixture
def chain_network() -> TemporalFlowNetwork:
    """A single 3-hop chain: s -> a (tau 1) -> b (tau 2) -> t (tau 3)."""
    return TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 1, 5.0),
            ("a", "b", 2, 5.0),
            ("b", "t", 3, 5.0),
        ]
    )


def random_temporal_network(
    seed: int,
    *,
    max_nodes: int = 8,
    max_edges: int = 24,
    max_time: int = 12,
) -> TemporalFlowNetwork:
    """Small random temporal network for cross-checking algorithms."""
    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(rng.randint(3, max_nodes))]
    network = TemporalFlowNetwork()
    for _ in range(rng.randint(4, max_edges)):
        u, v = rng.sample(nodes, 2)
        network.add_edge(
            TemporalEdge(u, v, rng.randint(1, max_time), float(rng.randint(1, 9)))
        )
    return network
