"""Tests for the payment-economy simulator."""

import pytest

from repro.exceptions import DatasetError
from repro.simulation import EconomyConfig, build_accounts, simulate_economy


@pytest.fixture(scope="module")
def small_economy():
    config = EconomyConfig(
        num_consumers=20, num_merchants=5, num_corporates=2,
        days=5, ticks_per_day=96,
    )
    events, accounts = simulate_economy(config, seed=7)
    return config, events, accounts


class TestConfig:
    def test_horizon(self):
        config = EconomyConfig(days=3, ticks_per_day=100)
        assert config.horizon == 300

    def test_validation(self):
        with pytest.raises(DatasetError):
            EconomyConfig(num_consumers=0)
        with pytest.raises(DatasetError):
            EconomyConfig(days=0)
        with pytest.raises(DatasetError):
            EconomyConfig(ticks_per_day=2)


class TestAccounts:
    def test_population(self, small_economy):
        config, _, accounts = small_economy
        assert len(accounts.consumers) == config.num_consumers
        assert len(accounts.merchants) == config.num_merchants
        assert len(accounts.corporates) == config.num_corporates
        assert len(accounts.all()) == 27

    def test_roles_disjoint(self, small_economy):
        _, __, accounts = small_economy
        roles = [set(accounts.consumers), set(accounts.merchants), set(accounts.corporates)]
        for i, a in enumerate(roles):
            for b in roles[i + 1 :]:
                assert not (a & b)


class TestEvents:
    def test_time_ordered_and_in_horizon(self, small_economy):
        config, events, _ = small_economy
        ticks = [tick for _, __, tick, ___ in events]
        assert ticks == sorted(ticks)
        assert min(ticks) >= 1
        assert max(ticks) <= config.horizon

    def test_amounts_positive(self, small_economy):
        _, events, __ = small_economy
        assert all(amount > 0 for _, __, ___, amount in events)

    def test_deterministic(self, small_economy):
        config, events, _ = small_economy
        again, _ = simulate_economy(config, seed=7)
        assert events == again

    def test_seed_changes_stream(self, small_economy):
        config, events, _ = small_economy
        other, _ = simulate_economy(config, seed=8)
        assert events != other

    def test_salaries_on_paydays_only(self, small_economy):
        config, events, accounts = small_economy
        corporates = set(accounts.corporates)
        salary_days = {
            (tick - 1) // config.ticks_per_day
            for payer, payee, tick, amount in events
            if payer in corporates and payee in set(accounts.consumers)
        }
        # payday_every_days=5 over 5 days -> only day index 4.
        assert salary_days == {4}

    def test_merchants_settle_to_corporates(self, small_economy):
        _, events, accounts = small_economy
        merchants = set(accounts.merchants)
        corporates = set(accounts.corporates)
        settlements = [
            event for event in events
            if event[0] in merchants and event[1] in corporates
        ]
        assert settlements
        # Settlement sweeps happen at the end of a day.
        config = small_economy[0]
        for _, __, tick, ___ in settlements:
            assert (tick - 1) % config.ticks_per_day >= config.ticks_per_day - 5

    def test_purchases_cluster_at_peaks(self, small_economy):
        config, events, accounts = small_economy
        consumers = set(accounts.consumers)
        merchants = set(accounts.merchants)
        fractions = [
            ((tick - 1) % config.ticks_per_day) / config.ticks_per_day
            for payer, payee, tick, _ in events
            if payer in consumers and payee in merchants
        ]
        assert fractions
        near_peak = [
            f for f in fractions
            if any(abs(f - peak) < 0.15 for peak in config.shopping_peaks)
        ]
        assert len(near_peak) > 0.5 * len(fractions)
