"""Tests for fraud injectors and full-scenario assembly."""

import pytest

from repro import find_bursting_flow
from repro.exceptions import DatasetError
from repro.simulation import (
    EconomyConfig,
    inject_layering,
    inject_round_tripping,
    inject_smurfing,
    simulate_scenario,
)
from repro.temporal import TemporalFlowNetwork


class TestSmurfing:
    def test_volume_moves_inside_window(self):
        events = []
        truth = inject_smurfing(
            events, "src", "dst", volume=10_000.0, num_smurfs=5,
            window=(100, 120), seed=1,
        )
        network = TemporalFlowNetwork.from_tuples(events)
        result = find_bursting_flow(network, source="src", sink="dst", delta=1)
        assert result.flow_value == pytest.approx(truth.volume)
        lo, hi = result.interval
        assert 100 <= lo and hi <= 120

    def test_slices_routed_through_distinct_smurfs(self):
        events = []
        truth = inject_smurfing(
            events, "src", "dst", volume=9_000.0, num_smurfs=3,
            window=(10, 30), seed=2,
        )
        assert len(truth.accomplices) == 3
        payees = {payee for _, payee, __, ___ in events if _ == "src"}
        assert payees == set(truth.accomplices)

    def test_window_validation(self):
        with pytest.raises(DatasetError, match="too short"):
            inject_smurfing(
                [], "s", "d", volume=1.0, num_smurfs=1, window=(5, 6), seed=0
            )

    def test_ground_truth_density(self):
        events = []
        truth = inject_smurfing(
            events, "src", "dst", volume=10_000.0, num_smurfs=4,
            window=(0, 20), seed=3,
        )
        assert truth.density == pytest.approx(truth.volume / 20)


class TestLayering:
    def test_conservation_through_layers(self):
        events = []
        truth = inject_layering(
            events, "src", "dst", volume=30_000.0, depth=3, width=3,
            window=(50, 90), seed=4,
        )
        outflow = sum(a for payer, _, __, a in events if payer == "src")
        inflow = sum(a for _, payee, __, a in events if payee == "dst")
        assert outflow == pytest.approx(inflow, rel=1e-3)
        assert truth.volume == pytest.approx(inflow, rel=1e-3)

    def test_flow_query_recovers_volume(self):
        events = []
        truth = inject_layering(
            events, "src", "dst", volume=30_000.0, depth=2, width=2,
            window=(50, 90), seed=5,
        )
        network = TemporalFlowNetwork.from_tuples(events)
        result = find_bursting_flow(network, source="src", sink="dst", delta=1)
        assert result.flow_value == pytest.approx(truth.volume, rel=1e-3)

    def test_layer_timestamps_strictly_ordered(self):
        events = []
        inject_layering(
            events, "src", "dst", volume=1_000.0, depth=3, width=2,
            window=(0, 40), seed=6,
        )
        # Hops out of the source precede hops into the sink.
        src_ticks = [t for payer, _, t, __ in events if payer == "src"]
        dst_ticks = [t for _, payee, t, __ in events if payee == "dst"]
        assert max(src_ticks) < min(dst_ticks)

    def test_parameter_validation(self):
        with pytest.raises(DatasetError):
            inject_layering(
                [], "s", "d", volume=1.0, depth=0, width=2, window=(0, 40), seed=0
            )


class TestRoundTripping:
    def test_both_directions_carry_volume(self):
        from repro.baselines import temporal_maxflow

        events = []
        truth = inject_round_tripping(
            events, "a", "b", lap_amount=5_000.0, laps=3,
            window=(10, 40), seed=7,
        )
        network = TemporalFlowNetwork.from_tuples(events)
        # Over the whole horizon each direction turned over the full volume.
        forward = temporal_maxflow(network, "a", "b")
        backward = temporal_maxflow(network, "b", "a")
        assert forward.value == pytest.approx(truth.volume)
        assert backward.value > 0
        # The bursting query sees at least one dense lap in each direction.
        burst = find_bursting_flow(network, source="a", sink="b", delta=1)
        assert burst.flow_value >= 5_000.0 - 1e-6

    def test_lap_count_checked(self):
        with pytest.raises(DatasetError):
            inject_round_tripping(
                [], "a", "b", lap_amount=1.0, laps=0, window=(0, 10), seed=0
            )


class TestScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        config = EconomyConfig(
            num_consumers=25, num_merchants=6, num_corporates=2,
            days=4, ticks_per_day=96,
        )
        return simulate_scenario(config=config, seed=9, with_round_tripping=True)

    def test_ground_truth_present(self, scenario):
        kinds = {fraud.kind for fraud in scenario.frauds}
        assert kinds == {"smurfing", "layering", "round-tripping"}

    def test_fraud_densities_dominate_benign(self, scenario):
        delta = max(1, scenario.network.num_timestamps // 50)
        fraud_densities = []
        for fraud in scenario.frauds:
            result = find_bursting_flow(
                scenario.network, source=fraud.source, sink=fraud.sink,
                delta=delta,
            )
            fraud_densities.append(result.density)
        benign_densities = []
        for s, t in scenario.benign_pairs(3, seed=2):
            result = find_bursting_flow(
                scenario.network, source=s, sink=t, delta=delta
            )
            benign_densities.append(result.density)
        assert min(fraud_densities) > 10 * max(benign_densities + [0.01])

    def test_benign_pairs_exclude_accomplices(self, scenario):
        tainted = {
            node
            for fraud in scenario.frauds
            for node in (fraud.source, fraud.sink, *fraud.accomplices)
        }
        for s, t in scenario.benign_pairs(5, seed=3):
            assert s not in tainted and t not in tainted

    def test_deterministic(self, scenario):
        config = EconomyConfig(
            num_consumers=25, num_merchants=6, num_corporates=2,
            days=4, ticks_per_day=96,
        )
        again = simulate_scenario(config=config, seed=9, with_round_tripping=True)
        assert again.events == scenario.events
        assert [f.window for f in again.frauds] == [
            f.window for f in scenario.frauds
        ]
