"""Per-solver unit tests on hand-checked networks.

Every solver is exercised on the same fixtures:

* the paper's Figure 2 network (Maxflow 7);
* degenerate cases (no path, source == sink);
* a bipartite bottleneck;
* infinite-capacity hold edges (the transformed-network pattern).
"""

import math

import pytest

from repro.exceptions import SolverError
from repro.flownet import (
    EdgeKind,
    FlowNetwork,
    dinic,
    dinic_flat,
    dinic_flat_persistent,
    edmonds_karp,
    ford_fulkerson,
    get_solver,
    lp_maxflow,
    push_relabel,
    solve_max_flow,
)

ALL_SOLVERS = [
    dinic,
    dinic_flat,
    dinic_flat_persistent,
    edmonds_karp,
    ford_fulkerson,
    push_relabel,
    lp_maxflow,
]
MUTATING_SOLVERS = [dinic, dinic_flat, dinic_flat_persistent, edmonds_karp, ford_fulkerson]


def st(net: FlowNetwork) -> tuple[int, int]:
    return net.index_of("s"), net.index_of("t")


@pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
class TestAllSolvers:
    def test_figure2_value(self, solver, figure2_network):
        s, t = st(figure2_network)
        assert solver(figure2_network.clone(), s, t).value == pytest.approx(7.0)

    def test_no_path(self, solver):
        net = FlowNetwork()
        net.add_edge_labeled("s", "a", 5.0)
        net.add_edge_labeled("b", "t", 5.0)
        s, t = st(net)
        assert solver(net, s, t).value == 0.0

    def test_source_equals_sink(self, solver):
        net = FlowNetwork()
        net.add_edge_labeled("s", "t", 5.0)
        s = net.index_of("s")
        assert solver(net, s, s).value == 0.0

    def test_single_edge(self, solver):
        net = FlowNetwork()
        net.add_edge_labeled("s", "t", 5.0)
        s, t = st(net)
        assert solver(net, s, t).value == pytest.approx(5.0)

    def test_bottleneck_diamond(self, solver):
        net = FlowNetwork()
        net.add_edge_labeled("s", "a", 10.0)
        net.add_edge_labeled("s", "b", 10.0)
        net.add_edge_labeled("a", "m", 10.0)
        net.add_edge_labeled("b", "m", 10.0)
        net.add_edge_labeled("m", "t", 7.0)
        s, t = st(net)
        assert solver(net, s, t).value == pytest.approx(7.0)

    def test_infinite_hold_chain(self, solver):
        # s -> a --inf--> b -> t: the hold edge must not break anything.
        net = FlowNetwork()
        net.add_edge_labeled("s", "a", 5.0)
        net.add_edge_labeled("a", "b", math.inf, kind=EdgeKind.HOLD)
        net.add_edge_labeled("b", "t", 3.0)
        s, t = st(net)
        assert solver(net, s, t).value == pytest.approx(3.0)

    def test_retired_node_blocks_flow(self, solver):
        net = FlowNetwork()
        net.add_edge_labeled("s", "a", 5.0)
        net.add_edge_labeled("a", "t", 5.0)
        net.add_edge_labeled("s", "b", 2.0)
        net.add_edge_labeled("b", "t", 2.0)
        net.retire_label("a")
        s, t = st(net)
        assert solver(net, s, t).value == pytest.approx(2.0)

    def test_antiparallel_pair(self, solver):
        net = FlowNetwork()
        net.add_edge_labeled("s", "a", 4.0)
        net.add_edge_labeled("a", "t", 4.0)
        net.add_edge_labeled("t", "a", 9.0)  # antiparallel distractor
        s, t = st(net)
        assert solver(net, s, t).value == pytest.approx(4.0)


@pytest.mark.parametrize("solver", MUTATING_SOLVERS, ids=lambda f: f.__name__)
class TestResumableSolvers:
    def test_rerun_after_saturation_adds_nothing(self, solver, figure2_network):
        s, t = st(figure2_network)
        first = solver(figure2_network, s, t)
        second = solver(figure2_network, s, t)
        assert first.value == pytest.approx(7.0)
        assert second.value == 0.0

    def test_resume_after_capacity_increase(self, solver, figure2_network):
        s, t = st(figure2_network)
        solver(figure2_network, s, t)
        # Open up the v3->v4->t corridor: Maxflow grows 7 -> 10 (limited by
        # s's total out-capacity 3 + 4).
        figure2_network.add_edge_labeled("v3", "v4", 10.0)
        figure2_network.add_edge_labeled("v4", "t", 10.0)
        gained = solver(figure2_network, s, t).value
        assert gained == pytest.approx(0.0)  # s-side already saturated
        figure2_network.add_edge_labeled("s", "v1", 3.0)
        figure2_network.add_edge_labeled("v1", "v3", 3.0)
        gained = solver(figure2_network, s, t).value
        assert gained == pytest.approx(3.0)

    def test_augmenting_path_count_positive(self, solver, figure2_network):
        s, t = st(figure2_network)
        run = solver(figure2_network, s, t)
        assert run.augmenting_paths >= 2  # 7 units need >= 2 paths here


class TestDinicSpecifics:
    def test_track_paths(self, figure2_network):
        s, t = st(figure2_network)
        run = dinic(figure2_network, s, t, track_paths=True)
        assert len(run.paths) == run.augmenting_paths
        for path in run.paths:
            assert path[0] == s and path[-1] == t

    def test_phases_reported(self, figure2_network):
        s, t = st(figure2_network)
        assert dinic(figure2_network, s, t).phases >= 1


class TestRegistry:
    def test_known_names(self):
        for name in (
            "dinic",
            "dinic-flat-persistent",
            "edmonds-karp",
            "ford-fulkerson",
            "push-relabel",
            "lp",
        ):
            assert callable(get_solver(name))

    def test_unknown_name_raises(self):
        with pytest.raises(SolverError, match="unknown maxflow solver"):
            get_solver("simplex9000")

    def test_solve_max_flow_dispatch(self, figure2_network):
        s, t = st(figure2_network)
        run = solve_max_flow(figure2_network.clone(), s, t, algorithm="push-relabel")
        assert run.value == pytest.approx(7.0)
