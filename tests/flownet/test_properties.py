"""Property-based tests for the Maxflow substrate (hypothesis).

Invariants checked on random networks:

* all registered solvers report the same Maxflow value;
* Maxflow equals min-cut capacity (strong duality);
* the extracted flow satisfies the flow axioms;
* path decomposition reconstructs the value.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flownet import (
    FlowNetwork,
    decompose_into_paths,
    dinic,
    dinic_flat,
    dinic_flat_persistent,
    edmonds_karp,
    ford_fulkerson,
    lp_maxflow,
    min_cut,
    push_relabel,
    validate_classical_flow,
)

TOLERANCE = 1e-6


@st.composite
def random_flow_networks(draw) -> FlowNetwork:
    """Random directed networks with integer capacities on 4-9 nodes."""
    num_nodes = draw(st.integers(min_value=4, max_value=9))
    num_edges = draw(st.integers(min_value=3, max_value=24))
    net = FlowNetwork()
    for i in range(num_nodes):
        net.add_node(i)
    for _ in range(num_edges):
        tail = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        head = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        if tail == head:
            continue
        capacity = float(draw(st.integers(min_value=1, max_value=20)))
        net.add_edge(tail, head, capacity)
    return net


@settings(max_examples=60, deadline=None)
@given(random_flow_networks())
def test_all_solvers_agree(net: FlowNetwork):
    source, sink = 0, 1
    reference = dinic(net.clone(), source, sink).value
    assert abs(dinic_flat(net.clone(), source, sink).value - reference) < TOLERANCE
    assert (
        abs(dinic_flat_persistent(net.clone(), source, sink).value - reference)
        < TOLERANCE
    )
    assert abs(edmonds_karp(net.clone(), source, sink).value - reference) < TOLERANCE
    assert abs(ford_fulkerson(net.clone(), source, sink).value - reference) < TOLERANCE
    assert abs(push_relabel(net.clone(), source, sink).value - reference) < TOLERANCE
    assert abs(lp_maxflow(net.clone(), source, sink).value - reference) < TOLERANCE


@settings(max_examples=60, deadline=None)
@given(random_flow_networks())
def test_maxflow_equals_mincut(net: FlowNetwork):
    source, sink = 0, 1
    value = dinic(net, source, sink).value
    cut = min_cut(net, source, sink)
    assert abs(cut.capacity - value) < TOLERANCE


@settings(max_examples=60, deadline=None)
@given(random_flow_networks())
def test_flow_axioms_and_decomposition(net: FlowNetwork):
    source, sink = 0, 1
    value = dinic(net, source, sink).value
    checked = validate_classical_flow(net, source, sink)
    assert abs(checked - value) < TOLERANCE
    paths = decompose_into_paths(net, source, sink)
    assert abs(sum(amount for _, amount in paths) - value) < TOLERANCE


@settings(max_examples=40, deadline=None)
@given(random_flow_networks(), st.integers(min_value=2, max_value=8))
def test_resumability_matches_one_shot(net: FlowNetwork, extra_cap: int):
    """Solving, adding an edge, and resuming == solving the final network."""
    source, sink = 0, 1
    final = net.clone()
    final.add_edge(0, net.num_nodes - 1, float(extra_cap))
    final.add_edge(net.num_nodes - 1, 1, float(extra_cap))
    one_shot = dinic(final.clone(), source, sink).value

    first = dinic(net, source, sink).value
    net.add_edge(0, net.num_nodes - 1, float(extra_cap))
    net.add_edge(net.num_nodes - 1, 1, float(extra_cap))
    resumed = first + dinic(net, source, sink).value
    assert abs(resumed - one_shot) < TOLERANCE


@settings(max_examples=40, deadline=None)
@given(random_flow_networks(), st.integers(min_value=2, max_value=8))
def test_persistent_resumability_matches_one_shot(net: FlowNetwork, extra_cap: int):
    """Same as above, but resuming through the persistent arena kernel."""
    source, sink = 0, 1
    final = net.clone()
    final.add_edge(0, net.num_nodes - 1, float(extra_cap))
    final.add_edge(net.num_nodes - 1, 1, float(extra_cap))
    one_shot = dinic(final.clone(), source, sink).value

    first = dinic_flat_persistent(net, source, sink).value
    net.add_edge(0, net.num_nodes - 1, float(extra_cap))
    net.add_edge(net.num_nodes - 1, 1, float(extra_cap))
    resumed = first + dinic_flat_persistent(net, source, sink).value
    assert abs(resumed - one_shot) < TOLERANCE
    assert net.arena is not None and net.arena.mirrors(net)
