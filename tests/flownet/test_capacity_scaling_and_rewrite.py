"""Tests for capacity-scaling Maxflow and the footnote-2 rewrite."""

import random

import pytest

from repro.flownet import (
    FlowNetwork,
    capacity_scaling,
    dinic,
    has_antiparallel_edges,
    split_antiparallel_edges,
)


class TestCapacityScaling:
    def test_figure2(self, figure2_network):
        s, t = figure2_network.index_of("s"), figure2_network.index_of("t")
        assert capacity_scaling(figure2_network, s, t).value == pytest.approx(7.0)

    def test_matches_dinic_on_random_networks(self):
        rng = random.Random(99)
        for _ in range(25):
            net = FlowNetwork()
            n = rng.randint(4, 10)
            for i in range(n):
                net.add_node(i)
            for _ in range(rng.randint(4, 30)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    net.add_edge(u, v, float(rng.randint(1, 100)))
            expected = dinic(net.clone(), 0, 1).value
            assert capacity_scaling(net, 0, 1).value == pytest.approx(expected)

    def test_resumable(self, figure2_network):
        s, t = figure2_network.index_of("s"), figure2_network.index_of("t")
        first = capacity_scaling(figure2_network, s, t)
        second = capacity_scaling(figure2_network, s, t)
        assert first.value == pytest.approx(7.0)
        assert second.value == 0.0

    def test_fractional_capacities(self):
        net = FlowNetwork()
        net.add_edge_labeled("s", "a", 0.75)
        net.add_edge_labeled("a", "t", 0.5)
        run = capacity_scaling(net, net.index_of("s"), net.index_of("t"))
        assert run.value == pytest.approx(0.5)

    def test_empty_network(self):
        net = FlowNetwork()
        net.add_node("s")
        net.add_node("t")
        assert capacity_scaling(net, 0, 1).value == 0.0

    def test_uses_fewer_augmentations_than_plain_ff_on_zigzag(self):
        """The classic pathological network: plain FF can need ~2C paths,
        scaling needs O(log C)."""
        from repro.flownet import ford_fulkerson

        capacity = 512.0
        net = FlowNetwork()
        net.add_edge_labeled("s", "a", capacity)
        net.add_edge_labeled("s", "b", capacity)
        net.add_edge_labeled("a", "b", 1.0)
        net.add_edge_labeled("a", "t", capacity)
        net.add_edge_labeled("b", "t", capacity)
        s, t = net.index_of("s"), net.index_of("t")
        scaled = capacity_scaling(net.clone(), s, t)
        plain = ford_fulkerson(net.clone(), s, t)
        assert scaled.value == pytest.approx(plain.value) == 2 * capacity
        assert scaled.augmenting_paths <= plain.augmenting_paths


class TestAntiparallelRewrite:
    def test_detection(self):
        net = FlowNetwork()
        net.add_edge_labeled("a", "b", 1.0)
        assert not has_antiparallel_edges(net)
        net.add_edge_labeled("b", "a", 1.0)
        assert has_antiparallel_edges(net)

    def test_rewrite_removes_antiparallel_pairs(self):
        net = FlowNetwork()
        net.add_edge_labeled("s", "t", 5.0)
        net.add_edge_labeled("t", "s", 3.0)
        report = split_antiparallel_edges(net)
        assert report.split_count == 1
        assert not has_antiparallel_edges(report.rewritten)
        assert len(report.helper_nodes) == 1

    def test_maxflow_preserved(self):
        rng = random.Random(5)
        for _ in range(15):
            net = FlowNetwork()
            n = rng.randint(4, 8)
            for i in range(n):
                net.add_node(i)
            for _ in range(rng.randint(6, 24)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    net.add_edge(u, v, float(rng.randint(1, 20)))
            original = dinic(net.clone(), 0, 1).value
            report = split_antiparallel_edges(net)
            rewritten = report.rewritten
            value = dinic(
                rewritten, rewritten.index_of(0), rewritten.index_of(1)
            ).value
            assert value == pytest.approx(original)

    def test_parallel_same_direction_edges_merged(self):
        net = FlowNetwork()
        net.add_edge_labeled("a", "b", 2.0)
        net.add_edge_labeled("a", "b", 3.0)
        report = split_antiparallel_edges(net)
        assert report.rewritten.num_edges == 1
        ref = next(
            (tail, arc) for tail, arc in report.rewritten.iter_edges()
        )
        assert ref[1].cap == 5.0

    def test_flow_carrying_network_rejected(self, figure2_network):
        s, t = figure2_network.index_of("s"), figure2_network.index_of("t")
        dinic(figure2_network, s, t)
        with pytest.raises(ValueError, match="flow-free"):
            split_antiparallel_edges(figure2_network)
