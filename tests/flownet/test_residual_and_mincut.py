"""Tests for flow extraction, validation, decomposition and min-cut."""

import pytest

from repro.exceptions import FlowValidationError
from repro.flownet import (
    FlowNetwork,
    decompose_into_paths,
    dinic,
    extract_flow,
    flow_value_at,
    min_cut,
    validate_classical_flow,
)


class TestExtractFlow:
    def test_extract_after_dinic(self, figure2_network):
        s, t = figure2_network.index_of("s"), figure2_network.index_of("t")
        dinic(figure2_network, s, t)
        flows = extract_flow(figure2_network)
        out_of_s = sum(v for (tail, _), v in flows.items() if tail == s)
        assert out_of_s == pytest.approx(7.0)

    def test_empty_before_any_flow(self, figure2_network):
        assert extract_flow(figure2_network) == {}

    def test_retired_nodes_excluded(self):
        net = FlowNetwork()
        ref = net.add_edge_labeled("a", "b", 5.0)
        net.push_on(ref, 3.0)
        net.retire_label("a")
        assert extract_flow(net) == {}


class TestValidation:
    def test_valid_maxflow_passes(self, figure2_network):
        s, t = figure2_network.index_of("s"), figure2_network.index_of("t")
        dinic(figure2_network, s, t)
        value = validate_classical_flow(figure2_network, s, t)
        assert value == pytest.approx(7.0)
        assert flow_value_at(figure2_network, s) == pytest.approx(7.0)

    def test_conservation_violation_detected(self):
        net = FlowNetwork()
        r1 = net.add_edge_labeled("s", "a", 5.0)
        net.add_edge_labeled("a", "t", 5.0)
        net.push_on(r1, 2.0)  # 'a' holds 2 units illegally
        with pytest.raises(FlowValidationError, match="conservation"):
            validate_classical_flow(net, net.index_of("s"), net.index_of("t"))


class TestDecomposition:
    def test_paths_sum_to_value(self, figure2_network):
        s, t = figure2_network.index_of("s"), figure2_network.index_of("t")
        dinic(figure2_network, s, t)
        paths = decompose_into_paths(figure2_network, s, t)
        assert sum(amount for _, amount in paths) == pytest.approx(7.0)
        for path, amount in paths:
            assert path[0] == s and path[-1] == t
            assert amount > 0

    def test_no_flow_no_paths(self, figure2_network):
        s, t = figure2_network.index_of("s"), figure2_network.index_of("t")
        assert decompose_into_paths(figure2_network, s, t) == []


class TestMinCut:
    def test_mincut_equals_maxflow(self, figure2_network):
        s, t = figure2_network.index_of("s"), figure2_network.index_of("t")
        value = dinic(figure2_network, s, t).value
        cut = min_cut(figure2_network, s, t)
        assert cut.capacity == pytest.approx(value)
        assert s in cut.source_side
        assert t not in cut.source_side

    def test_cut_edges_cross_partition(self, figure2_network):
        s, t = figure2_network.index_of("s"), figure2_network.index_of("t")
        dinic(figure2_network, s, t)
        cut = min_cut(figure2_network, s, t)
        for tail, head in cut.edges:
            assert tail in cut.source_side
            assert head not in cut.source_side

    def test_disconnected_cut_is_zero(self):
        net = FlowNetwork()
        net.add_edge_labeled("s", "a", 5.0)
        net.add_node("t")
        s, t = net.index_of("s"), net.index_of("t")
        dinic(net, s, t)
        assert min_cut(net, s, t).capacity == 0.0
