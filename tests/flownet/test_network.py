"""Unit tests for the arc-based FlowNetwork structure."""

import math

import pytest

from repro.exceptions import GraphError, UnknownNodeError
from repro.flownet import EdgeKind, FlowNetwork


class TestNodes:
    def test_add_node_idempotent(self):
        net = FlowNetwork()
        assert net.add_node("a") == net.add_node("a")
        assert net.num_nodes == 1

    def test_index_label_round_trip(self):
        net = FlowNetwork()
        i = net.add_node(("x", 3))
        assert net.label_of(i) == ("x", 3)
        assert net.index_of(("x", 3)) == i

    def test_unknown_label_raises(self):
        with pytest.raises(UnknownNodeError):
            FlowNetwork().index_of("ghost")

    def test_retire(self):
        net = FlowNetwork()
        i = net.add_node("a")
        net.add_node("b")
        assert net.num_active_nodes == 2
        net.retire_node(i)
        assert net.is_retired(i)
        assert net.num_active_nodes == 1
        assert list(net.active_indices()) == [net.index_of("b")]


class TestEdges:
    def test_add_edge_creates_arc_pair(self):
        net = FlowNetwork()
        ref = net.add_edge_labeled("a", "b", 5.0)
        assert net.num_edges == 1
        assert net.forward_arc(ref).cap == 5.0
        assert net.reverse_arc(ref).cap == 0.0

    def test_parallel_edges_allowed(self):
        net = FlowNetwork()
        net.add_edge_labeled("a", "b", 5.0)
        net.add_edge_labeled("a", "b", 3.0)
        assert net.num_edges == 2

    def test_antiparallel_edges_allowed(self):
        net = FlowNetwork()
        net.add_edge_labeled("a", "b", 5.0)
        net.add_edge_labeled("b", "a", 3.0)
        assert net.num_edges == 2

    def test_self_loop_rejected(self):
        net = FlowNetwork()
        i = net.add_node("a")
        with pytest.raises(GraphError):
            net.add_edge(i, i, 1.0)

    def test_negative_capacity_rejected(self):
        net = FlowNetwork()
        net.add_node("a")
        net.add_node("b")
        with pytest.raises(GraphError):
            net.add_edge(0, 1, -1.0)

    def test_out_of_range_endpoints_rejected(self):
        net = FlowNetwork()
        net.add_node("a")
        with pytest.raises(GraphError):
            net.add_edge(0, 5, 1.0)

    def test_edge_kind_and_meta_propagate_to_both_arcs(self):
        net = FlowNetwork()
        ref = net.add_edge_labeled("a", "b", 5.0, kind=EdgeKind.CAPACITY, meta="m")
        assert net.forward_arc(ref).kind is EdgeKind.CAPACITY
        assert net.reverse_arc(ref).kind is EdgeKind.CAPACITY
        assert net.reverse_arc(ref).meta == "m"

    def test_iter_edges_yields_forward_arcs_only(self):
        net = FlowNetwork()
        net.add_edge_labeled("a", "b", 5.0)
        net.add_edge_labeled("b", "c", 3.0)
        edges = list(net.iter_edges())
        assert len(edges) == 2
        assert all(arc.forward for _, arc in edges)


class TestFlowAccounting:
    def test_push_and_read(self):
        net = FlowNetwork()
        ref = net.add_edge_labeled("a", "b", 5.0)
        net.push_on(ref, 2.0)
        assert net.flow_on(ref) == 2.0
        assert net.forward_arc(ref).cap == 3.0
        assert net.edge_capacity(ref) == 5.0

    def test_push_beyond_capacity_rejected(self):
        net = FlowNetwork()
        ref = net.add_edge_labeled("a", "b", 5.0)
        with pytest.raises(GraphError):
            net.push_on(ref, 6.0)

    def test_withdraw(self):
        net = FlowNetwork()
        ref = net.add_edge_labeled("a", "b", 5.0)
        net.push_on(ref, 4.0)
        net.push_on(ref, -3.0)
        assert net.flow_on(ref) == 1.0

    def test_withdraw_beyond_flow_rejected(self):
        net = FlowNetwork()
        ref = net.add_edge_labeled("a", "b", 5.0)
        net.push_on(ref, 1.0)
        with pytest.raises(GraphError):
            net.push_on(ref, -2.0)

    def test_infinite_capacity_edge(self):
        net = FlowNetwork()
        ref = net.add_edge_labeled("a", "b", math.inf)
        net.push_on(ref, 1000.0)
        assert net.flow_on(ref) == 1000.0
        assert math.isinf(net.forward_arc(ref).cap)
        assert math.isinf(net.edge_capacity(ref))

    def test_out_in_flow(self):
        net = FlowNetwork()
        r1 = net.add_edge_labeled("a", "b", 5.0)
        r2 = net.add_edge_labeled("b", "c", 5.0)
        net.push_on(r1, 2.0)
        net.push_on(r2, 2.0)
        a, b, c = (net.index_of(x) for x in "abc")
        assert net.out_flow(a) == 2.0
        assert net.in_flow(b) == 2.0
        assert net.out_flow(b) == 2.0
        assert net.in_flow(c) == 2.0

    def test_kind_filter_on_flows(self):
        net = FlowNetwork()
        r1 = net.add_edge_labeled("a", "b", 5.0, kind=EdgeKind.CAPACITY)
        r2 = net.add_edge_labeled("a", "c", 5.0, kind=EdgeKind.HOLD)
        net.push_on(r1, 2.0)
        net.push_on(r2, 3.0)
        a = net.index_of("a")
        assert net.out_flow(a, kinds=(EdgeKind.CAPACITY,)) == 2.0
        assert net.out_flow(a, kinds=(EdgeKind.HOLD,)) == 3.0

    def test_set_capacity_preserves_flow(self):
        net = FlowNetwork()
        ref = net.add_edge_labeled("a", "b", 5.0)
        net.push_on(ref, 2.0)
        net.set_capacity(ref, 10.0)
        assert net.flow_on(ref) == 2.0
        assert net.forward_arc(ref).cap == 8.0

    def test_set_capacity_below_flow_rejected(self):
        net = FlowNetwork()
        ref = net.add_edge_labeled("a", "b", 5.0)
        net.push_on(ref, 4.0)
        with pytest.raises(GraphError):
            net.set_capacity(ref, 3.0)

    def test_clear_flow(self):
        net = FlowNetwork()
        ref = net.add_edge_labeled("a", "b", 5.0)
        net.push_on(ref, 4.0)
        net.clear_flow()
        assert net.flow_on(ref) == 0.0
        assert net.forward_arc(ref).cap == 5.0

    def test_check_conservation(self):
        net = FlowNetwork()
        r1 = net.add_edge_labeled("a", "b", 5.0)
        net.add_edge_labeled("b", "c", 5.0)
        net.push_on(r1, 2.0)  # b now holds 2 with no outflow
        with pytest.raises(GraphError, match="conservation"):
            net.check_conservation(exempt=(net.index_of("a"),))
        net.check_conservation(
            exempt=(net.index_of("a"), net.index_of("b"))
        )


class TestClone:
    def test_clone_is_deep(self):
        net = FlowNetwork()
        ref = net.add_edge_labeled("a", "b", 5.0)
        copy = net.clone()
        net.push_on(ref, 3.0)
        assert copy.flow_on(ref) == 0.0
        assert net.flow_on(ref) == 3.0

    def test_clone_preserves_retirement(self):
        net = FlowNetwork()
        net.add_edge_labeled("a", "b", 5.0)
        net.retire_label("a")
        copy = net.clone()
        assert copy.is_retired(copy.index_of("a"))


class TestCompactedClone:
    def test_drops_retired_nodes_and_remaps(self):
        net = FlowNetwork()
        net.add_edge_labeled("dead", "mid", 5.0)
        keep = net.add_edge_labeled("mid", "live", 7.0)
        net.push_on(keep, 2.0)
        net.retire_label("dead")
        compact, ref_map = net.compacted_clone()
        assert compact.num_nodes == 2
        assert not compact.has_node("dead")
        new_ref = ref_map[(keep.tail, keep.index)]
        assert compact.flow_on(new_ref) == 2.0
        assert compact.edge_capacity(new_ref) == 7.0
        assert compact.num_edges == 1

    def test_dangling_edges_disappear_from_map(self):
        net = FlowNetwork()
        dangling = net.add_edge_labeled("dead", "live", 5.0)
        net.retire_label("dead")
        _, ref_map = net.compacted_clone()
        assert (dangling.tail, dangling.index) not in ref_map

    def test_reverse_indices_rewired(self):
        net = FlowNetwork()
        net.add_edge_labeled("dead", "a", 1.0)
        ref = net.add_edge_labeled("a", "b", 3.0)
        net.retire_label("dead")
        compact, ref_map = net.compacted_clone()
        new_ref = ref_map[(ref.tail, ref.index)]
        forward = compact.forward_arc(new_ref)
        reverse = compact.reverse_arc(new_ref)
        # The pair must point at each other.
        assert compact.arcs_of(forward.head)[forward.rev] is reverse
        compact.push_on(new_ref, 1.5)
        assert compact.flow_on(new_ref) == 1.5
