"""Tests for single-edge incremental Maxflow (the [18]/[28] baseline)."""

import random

import pytest

from repro.flownet import DynamicMaxflow, FlowNetwork, dinic


def fresh_figure2() -> FlowNetwork:
    net = FlowNetwork()
    for u, v, capacity in [
        ("s", "v1", 3.0), ("s", "v2", 4.0), ("v1", "v3", 3.0),
        ("v2", "v3", 4.0), ("v3", "v4", 2.0), ("v3", "v5", 5.0),
        ("v4", "t", 2.0), ("v5", "t", 5.0),
    ]:
        net.add_edge_labeled(u, v, capacity)
    return net


class TestInsertion:
    def test_initial_value(self):
        net = fresh_figure2()
        dyn = DynamicMaxflow(net, net.index_of("s"), net.index_of("t"))
        assert dyn.value == pytest.approx(7.0)

    def test_insert_opens_new_capacity(self):
        net = fresh_figure2()
        dyn = DynamicMaxflow(net, net.index_of("s"), net.index_of("t"))
        # Open a new corridor: v3 gains 4 units of drain and 4 of supply,
        # lifting the Maxflow from 7 to 11 (s emits 3+4+4, t absorbs 2+5+4).
        dyn.insert_edge(net.index_of("v3"), net.index_of("t"), 4.0)
        dyn.insert_edge(net.index_of("s"), net.index_of("v3"), 4.0)
        assert dyn.value == pytest.approx(11.0)

    def test_insert_useless_edge_changes_nothing(self):
        net = fresh_figure2()
        dyn = DynamicMaxflow(net, net.index_of("s"), net.index_of("t"))
        dyn.insert_edge(net.index_of("v4"), net.index_of("v5"), 9.0)
        assert dyn.value == pytest.approx(7.0)

    def test_increase_capacity(self):
        net = FlowNetwork()
        bottleneck = net.add_edge_labeled("s", "a", 2.0)
        net.add_edge_labeled("a", "t", 5.0)
        dyn = DynamicMaxflow(net, net.index_of("s"), net.index_of("t"))
        assert dyn.value == pytest.approx(2.0)
        dyn.increase_capacity(bottleneck, 3.0)
        assert dyn.value == pytest.approx(5.0)


class TestDeletion:
    def test_delete_bottleneck_edge(self):
        net = fresh_figure2()
        dyn = DynamicMaxflow(net, net.index_of("s"), net.index_of("t"))
        # Remove v3 -> v5 (carries 5): flow must drop to 2.
        ref = _find_edge(net, "v3", "v5")
        assert dyn.delete_edge(ref) == pytest.approx(2.0)

    def test_delete_with_rerouting(self):
        # Deleting one path lets flow reroute through the other.
        net = FlowNetwork()
        net.add_edge_labeled("s", "a", 5.0)
        net.add_edge_labeled("a", "t", 5.0)
        net.add_edge_labeled("s", "b", 5.0)
        net.add_edge_labeled("b", "t", 5.0)
        net.add_edge_labeled("a", "b", 5.0)
        dyn = DynamicMaxflow(net, net.index_of("s"), net.index_of("t"))
        assert dyn.value == pytest.approx(10.0)
        ref = _find_edge(net, "a", "t")
        # a's 5 units can detour via b? b->t already carries 5 -> drops to 5.
        assert dyn.delete_edge(ref) == pytest.approx(5.0)

    def test_delete_unused_edge(self):
        net = fresh_figure2()
        dyn = DynamicMaxflow(net, net.index_of("s"), net.index_of("t"))
        net2 = fresh_figure2()
        ref = net.add_edge(net.index_of("v5"), net.index_of("v4"), 1.0)
        assert dyn.value == pytest.approx(7.0)
        assert dyn.delete_edge(ref) == pytest.approx(7.0)
        assert net2.num_edges == 8  # sanity: untouched twin

    def test_randomised_against_recompute(self):
        rng = random.Random(31)
        for trial in range(12):
            net = FlowNetwork()
            n = rng.randint(4, 8)
            for i in range(n):
                net.add_node(i)
            edges = []  # (u, v, capacity, ref)
            for _ in range(rng.randint(6, 20)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    capacity = float(rng.randint(1, 9))
                    edges.append((u, v, capacity, net.add_edge(u, v, capacity)))
            if not edges:
                continue
            dyn = DynamicMaxflow(net, 0, 1)
            rng.shuffle(edges)
            alive = list(edges)
            for _ in range(min(3, len(edges))):
                u, v, capacity, ref = alive.pop()
                dyn.delete_edge(ref)
                fresh = FlowNetwork()
                for i in range(n):
                    fresh.add_node(i)
                for (au, av, acap, _ref) in alive:
                    fresh.add_edge(au, av, acap)
                expected = dinic(fresh, 0, 1).value
                assert dyn.value == pytest.approx(expected), f"trial {trial}"

    def test_augment_runs_tracked(self):
        net = fresh_figure2()
        dyn = DynamicMaxflow(net, net.index_of("s"), net.index_of("t"))
        before = dyn.augment_runs
        dyn.insert_edge(net.index_of("s"), net.index_of("v3"), 1.0)
        assert dyn.augment_runs == before + 1


def _find_edge(net: FlowNetwork, u: str, v: str):
    from repro.flownet import EdgeRef

    tail = net.index_of(u)
    for pos, arc in enumerate(net.arcs_of(tail)):
        if arc.forward and arc.head == net.index_of(v):
            return EdgeRef(tail, pos)
    raise AssertionError(f"edge {u}->{v} not found")


