"""Tests for the figure-reporting module."""

import pytest

from repro.report import FigureData, Series, summarise_ratios


@pytest.fixture
def figure() -> FigureData:
    figure = FigureData("Fig. X", "queries", "runtime (ms)")
    bfq = figure.new_series("bfq")
    plus = figure.new_series("bfq+")
    for i, (slow, fast) in enumerate([(10.0, 5.0), (20.0, 4.0), (30.0, 6.0)]):
        bfq.add(i, slow)
        plus.add(i, fast)
    return figure


class TestSeries:
    def test_sorted_points(self):
        line = Series("s")
        line.add(3, 1.0)
        line.add(1, 2.0)
        assert line.sorted_points() == [(1.0, 2.0), (3.0, 1.0)]

    def test_speedup_over(self, figure):
        plus = figure.get("bfq+")
        bfq = figure.get("bfq")
        ratios = dict(plus.speedup_over(bfq))
        assert ratios[0.0] == pytest.approx(2.0)
        assert ratios[1.0] == pytest.approx(5.0)

    def test_get_unknown_series(self, figure):
        with pytest.raises(KeyError):
            figure.get("nope")


class TestExports:
    def test_csv_long_format(self, figure, tmp_path):
        path = tmp_path / "fig.csv"
        text = figure.to_csv(path)
        assert text.splitlines()[0] == "series,queries,runtime (ms)"
        assert len(text.splitlines()) == 1 + 6
        assert path.read_text() == text

    def test_ascii_contains_legend_and_markers(self, figure):
        art = figure.to_ascii(width=30, height=8)
        assert "o=bfq" in art and "x=bfq+" in art
        assert "Fig. X" in art
        assert "o" in art.splitlines()[2] or "o" in art

    def test_ascii_log_scale_kicks_in(self):
        figure = FigureData("log", "x", "y")
        line = figure.new_series("wide")
        line.add(0, 1.0)
        line.add(1, 100000.0)
        assert "(log y)" in figure.to_ascii()

    def test_ascii_empty(self):
        assert "(no data)" in FigureData("e", "x", "y").to_ascii()


class TestSummaries:
    def test_summarise_ratios(self):
        summary = summarise_ratios([2.0, 8.0])
        assert summary["min"] == 2.0
        assert summary["max"] == 8.0
        assert summary["geomean"] == pytest.approx(4.0)

    def test_summarise_empty(self):
        assert summarise_ratios([]) == {"min": 0.0, "geomean": 0.0, "max": 0.0}
