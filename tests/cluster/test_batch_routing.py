"""Cluster routing for batch and top-k requests.

The coordinator must not scatter a batch query-by-query: the planner's
amortisation lives in the (source, sink) group (one skeleton, one memo),
so each whole group is forwarded to the replica that owns its shard key.
These tests pin that routing and the merged replies' exact equality with
single-node answers.
"""

import asyncio

from repro import BurstingFlowQuery, find_bursting_flow
from repro.core import top_k_bursts
from repro.service.protocol import BatchRequest, ErrorReply, TopKRequest
from repro.temporal import TemporalFlowNetwork

from tests.cluster.test_cluster_e2e import boot_cluster
from tests.service.test_interleave import SEED_EDGES, fresh_triple

BATCH = (
    ("s", "t", 2),
    ("a", "t", 1),
    ("s", "t", 4),
    ("s", "b", 2),
    ("s", "t", 2),  # duplicate rides its group's memo
)

PAIRS = (("s", "t"), ("a", "t"), ("s", "b"), ("b", "t"))


def seed_network():
    return TemporalFlowNetwork.from_tuples(SEED_EDGES)


def test_batch_through_coordinator_equals_single_node(tmp_path):
    async def scenario():
        coordinator = await boot_cluster(tmp_path)
        try:
            reply = await coordinator.handle_request(
                BatchRequest(id="b1", queries=BATCH, plan="shared")
            )
            assert reply.ok, reply
            snapshot = await coordinator.snapshot()
            return reply, snapshot
        finally:
            await coordinator.stop()

    reply, snapshot = asyncio.run(scenario())
    expected = [fresh_triple(SEED_EDGES, s, t, d) for s, t, d in BATCH]
    assert [
        (r.density, r.interval, r.flow_value) for r in reply.results
    ] == expected
    assert reply.planner["groups_routed"] == 3  # distinct (s, t) pairs
    assert snapshot["coordinator"]["counters"]["batches"] == 1


def test_batch_groups_land_on_their_affinity_owner(tmp_path):
    async def scenario():
        coordinator = await boot_cluster(tmp_path)
        try:
            reply = await coordinator.handle_request(
                BatchRequest(id="b1", queries=BATCH, plan="shared")
            )
            assert reply.ok, reply
            expected = {"r0": 0, "r1": 0}
            for source, sink in {(s, t) for s, t, _d in BATCH}:
                expected[
                    coordinator.router.affinity(source, sink, ["r0", "r1"])
                ] += 1
            snapshot = await coordinator.snapshot()
            return expected, snapshot
        finally:
            await coordinator.stop()

    expected, snapshot = asyncio.run(scenario())
    served = {
        name: replica["requests"].get("batch", 0)
        for name, replica in snapshot["replicas"].items()
    }
    assert served == expected


def test_batch_survives_replica_loss(tmp_path):
    async def scenario():
        coordinator = await boot_cluster(tmp_path)
        try:
            coordinator._mark_dead("r0")
            reply = await coordinator.handle_request(
                BatchRequest(id="b1", queries=BATCH, plan="shared")
            )
            return reply
        finally:
            await coordinator.stop()

    reply = asyncio.run(scenario())
    assert reply.ok, reply
    expected = [fresh_triple(SEED_EDGES, s, t, d) for s, t, d in BATCH]
    assert [
        (r.density, r.interval, r.flow_value) for r in reply.results
    ] == expected


def test_batch_with_unknown_node_is_typed_invalid(tmp_path):
    async def scenario():
        coordinator = await boot_cluster(tmp_path)
        try:
            return await coordinator.handle_request(
                BatchRequest(id="b1", queries=(("s", "ghost", 2),))
            )
        finally:
            await coordinator.stop()

    reply = asyncio.run(scenario())
    assert isinstance(reply, ErrorReply)
    assert reply.kind == "invalid"


def test_topk_through_coordinator_equals_single_node(tmp_path):
    async def scenario():
        coordinator = await boot_cluster(tmp_path)
        try:
            reply = await coordinator.handle_request(
                TopKRequest(id="t1", pairs=PAIRS, delta=2, k=3)
            )
            assert reply.ok, reply
            snapshot = await coordinator.snapshot()
            return reply, snapshot
        finally:
            await coordinator.stop()

    reply, snapshot = asyncio.run(scenario())
    expected = top_k_bursts(seed_network(), PAIRS, 2, k=3)
    assert [
        (e.source, e.sink, e.delta, e.density, e.interval, e.flow_value)
        for e in reply.entries
    ] == [
        (e.source, e.sink, e.delta, e.density, e.interval, e.flow_value)
        for e in expected
    ]
    assert snapshot["coordinator"]["counters"]["topks"] == 1


def test_topk_merge_is_scatter_order_independent(tmp_path):
    """The coordinator's merge reproduces the canonical single-node
    ranking even though each replica only ranked its own shard."""

    async def scenario(pairs):
        coordinator = await boot_cluster(tmp_path)
        try:
            reply = await coordinator.handle_request(
                TopKRequest(id="t1", pairs=pairs, delta=2, k=10)
            )
            assert reply.ok, reply
            return reply
        finally:
            await coordinator.stop()

    reply = asyncio.run(scenario(PAIRS))
    expected = top_k_bursts(seed_network(), PAIRS, 2, k=10)
    got = [(e.source, e.sink, e.density) for e in reply.entries]
    assert got == [(e.source, e.sink, e.density) for e in expected]
