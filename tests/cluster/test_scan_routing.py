"""Cluster mining: scan confirmation scattered by affinity, durable store.

The coordinator ranks candidates on its *committed mirror*, then routes
the confirmation solves through the same top-k scatter every ranked
query uses (affinity sharding, failover, canonical merge) — and
persists flagged patterns to its own durable store, which must survive
a coordinator restart with the identical id set.
"""

import asyncio

from repro.cluster import ClusterCoordinator, InlineReplica, seed_log
from repro.mining.store import PatternStore
from repro.service.protocol import (
    AppendRequest,
    ErrorReply,
    PatternsRequest,
    ScanRequest,
)
from repro.store.log import AppendLog

from tests.mining.conftest import PLANTED_PAIRS, planted_edges


def seeded_log(tmp_path):
    log_path = tmp_path / "cluster.log"
    log = AppendLog(log_path)
    try:
        seed_log(log, planted_edges())
    finally:
        log.close()
    return log_path


async def boot_mining_cluster(tmp_path, replicas=2):
    path = seeded_log(tmp_path)
    handles = [InlineReplica(f"r{i}", path) for i in range(replicas)]
    coordinator = ClusterCoordinator(
        path, handles, patterns_dir=tmp_path / "patterns"
    )
    await coordinator.start("127.0.0.1", 0)
    return coordinator


class TestScanRouting:
    def test_scan_finds_the_planted_burst_and_rescan_dedupes(self, tmp_path):
        async def scenario():
            coordinator = await boot_mining_cluster(tmp_path)
            try:
                first = await coordinator.handle_request(
                    ScanRequest(id="s1", delta=4)
                )
                second = await coordinator.handle_request(
                    ScanRequest(id="s2", delta=4)
                )
                snapshot = await coordinator.snapshot()
                return first, second, snapshot
            finally:
                await coordinator.stop()

        first, second, snapshot = asyncio.run(scenario())
        assert first.ok, first
        assert first.new == len(PLANTED_PAIRS)
        assert second.new == 0 and second.deduped == len(PLANTED_PAIRS)
        assert snapshot["coordinator"]["counters"]["scans"] == 2
        assert snapshot["coordinator"]["mining"]["patterns"] == len(
            PLANTED_PAIRS
        )

    def test_confirmation_rides_the_topk_scatter(self, tmp_path):
        async def scenario():
            coordinator = await boot_mining_cluster(tmp_path)
            try:
                reply = await coordinator.handle_request(
                    ScanRequest(id="s1", delta=4)
                )
                assert reply.ok, reply
                snapshot = await coordinator.snapshot()
                return reply, snapshot
            finally:
                await coordinator.stop()

        reply, snapshot = asyncio.run(scenario())
        # The solves landed on replicas as topk requests — the scan never
        # solves locally — and with 2 replicas the funnel's candidate
        # pairs are sharded by affinity, so both replicas served some.
        served = {
            name: replica["requests"].get("topk", 0)
            for name, replica in snapshot["replicas"].items()
        }
        assert sum(served.values()) >= 1
        assert reply.funnel["solves"] == reply.funnel["candidates"] > 0

    def test_scan_survives_replica_loss(self, tmp_path):
        async def scenario():
            coordinator = await boot_mining_cluster(tmp_path)
            try:
                coordinator._mark_dead("r0")
                reply = await coordinator.handle_request(
                    ScanRequest(id="s1", delta=4)
                )
                return reply
            finally:
                await coordinator.stop()

        reply = asyncio.run(scenario())
        assert reply.ok, reply
        assert reply.new == len(PLANTED_PAIRS)

    def test_append_then_scan_sees_the_new_burst(self, tmp_path):
        async def scenario():
            coordinator = await boot_mining_cluster(tmp_path)
            try:
                edges = tuple(
                    ("hot_s", "hot_t", 60 + t, 80.0) for t in range(5)
                )
                ack = await coordinator.handle_request(
                    AppendRequest(id="a1", edges=edges)
                )
                assert ack.ok, ack
                reply = await coordinator.handle_request(
                    ScanRequest(id="s1", delta=4)
                )
                patterns = await coordinator.handle_request(
                    PatternsRequest(id="g1", source="hot_s")
                )
                return reply, patterns
            finally:
                await coordinator.stop()

        reply, patterns = asyncio.run(scenario())
        assert reply.ok, reply
        assert len(patterns.patterns) == 1
        assert patterns.patterns[0]["sink"] == "hot_t"

    def test_mining_disabled_is_a_typed_invalid_error(self, tmp_path):
        async def scenario():
            path = seeded_log(tmp_path)
            handles = [InlineReplica("r0", path)]
            coordinator = ClusterCoordinator(path, handles)  # no patterns_dir
            await coordinator.start("127.0.0.1", 0)
            try:
                scan = await coordinator.handle_request(
                    ScanRequest(id="s1", delta=4)
                )
                patterns = await coordinator.handle_request(
                    PatternsRequest(id="g1")
                )
                return scan, patterns
            finally:
                await coordinator.stop()

        scan, patterns = asyncio.run(scenario())
        assert isinstance(scan, ErrorReply) and scan.kind == "invalid"
        assert "mining is not enabled" in scan.message
        assert isinstance(patterns, ErrorReply)


class TestCoordinatorRestartStability:
    def test_pattern_ids_survive_a_coordinator_restart(self, tmp_path):
        async def first_life():
            coordinator = await boot_mining_cluster(tmp_path)
            try:
                reply = await coordinator.handle_request(
                    ScanRequest(id="s1", delta=4)
                )
                assert reply.ok, reply
                return set(reply.new_ids)
            finally:
                await coordinator.stop()

        async def second_life():
            path = tmp_path / "cluster.log"
            handles = [InlineReplica(f"r{i}", path) for i in range(2)]
            coordinator = ClusterCoordinator(
                path, handles, patterns_dir=tmp_path / "patterns"
            )
            await coordinator.start("127.0.0.1", 0)
            try:
                replayed = set(coordinator.patterns.ids())
                rescan = await coordinator.handle_request(
                    ScanRequest(id="s2", delta=4)
                )
                patterns = await coordinator.handle_request(
                    PatternsRequest(id="g1")
                )
                return replayed, rescan, patterns
            finally:
                await coordinator.stop()

        first_ids = asyncio.run(first_life())
        replayed, rescan, patterns = asyncio.run(second_life())
        assert replayed == first_ids  # the store replayed every pattern
        assert rescan.new == 0 and rescan.deduped == len(first_ids)
        assert {
            record["pattern_id"] for record in patterns.patterns
        } == first_ids

    def test_store_dedupes_across_lives_with_zero_duplicates(self, tmp_path):
        async def life(scan_id):
            if scan_id == "s1":
                coordinator = await boot_mining_cluster(tmp_path)
            else:  # later lives recover the existing log — no re-seed
                path = tmp_path / "cluster.log"
                handles = [InlineReplica(f"r{i}", path) for i in range(2)]
                coordinator = ClusterCoordinator(
                    path, handles, patterns_dir=tmp_path / "patterns"
                )
                await coordinator.start("127.0.0.1", 0)
            try:
                reply = await coordinator.handle_request(
                    ScanRequest(id=scan_id, delta=4)
                )
                assert reply.ok, reply
            finally:
                await coordinator.stop()

        for scan_id in ("s1", "s2", "s3"):
            asyncio.run(life(scan_id))
        with PatternStore(tmp_path / "patterns") as store:
            assert len(store) == len(PLANTED_PAIRS)
