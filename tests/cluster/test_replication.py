"""Replication-log records: round-trips and epoch determinism.

The cluster leans on one invariant: a replica's epoch is a pure
function of the log prefix it has applied.  These tests pin it — same
log, same epoch, same edge multiset, even when a record carries a
deterministically-invalid suffix.
"""

import pytest

from repro.temporal.edge import TemporalEdge

from repro.cluster.replication import (
    append_record,
    apply_record,
    network_edges,
    replay_network,
    seed_log,
)
from repro.exceptions import ReproError
from repro.store.log import AppendLog
from repro.temporal import TemporalFlowNetwork

SEED = [
    ("s", "a", 1, 4.0),
    ("a", "t", 2, 3.0),
    ("s", "b", 3, 5.0),
    ("b", "t", 4, 2.0),
]


def make_log(tmp_path, name="cluster.log"):
    return AppendLog(tmp_path / name)


class TestRecords:
    def test_append_record_shape(self):
        record = append_record([("u", "v", 3, 2.5)])
        assert record == {"op": "append", "edges": [["u", "v", 3, 2.5]]}

    def test_unknown_op_is_rejected(self):
        network = TemporalFlowNetwork()
        with pytest.raises(ReproError):
            apply_record(network, {"op": "compact", "edges": []})

    def test_seed_log_skips_empty_edge_sets(self, tmp_path):
        log = make_log(tmp_path)
        try:
            seed_log(log, [])
            assert list(log.replay()) == []
        finally:
            log.close()


class TestEpochDeterminism:
    def test_replay_reproduces_seeded_network(self, tmp_path):
        source = TemporalFlowNetwork.from_tuples(SEED)
        log = make_log(tmp_path)
        try:
            seed_log(log, network_edges(source))
            replayed = replay_network(log)
        finally:
            log.close()
        assert replayed.epoch == source.epoch
        assert sorted(network_edges(replayed)) == sorted(network_edges(source))

    def test_two_replays_agree_exactly(self, tmp_path):
        log = make_log(tmp_path)
        try:
            seed_log(log, SEED)
            log.append(append_record([("a", "b", 5, 1.0), ("b", "t", 6, 2.0)]))
            log.flush()
            first = replay_network(log)
            second = replay_network(log)
        finally:
            log.close()
        assert first.epoch == second.epoch
        assert sorted(network_edges(first)) == sorted(network_edges(second))

    def test_capacity_merge_bumps_epoch_on_replay(self, tmp_path):
        log = make_log(tmp_path)
        try:
            seed_log(log, SEED)
            # Same (u, v, tau) twice: the network merges capacities but
            # still bumps the epoch per add, and replay must agree.
            log.append(append_record([("s", "a", 1, 2.0)]))
            log.flush()
            replayed = replay_network(log)
        finally:
            log.close()
        live = TemporalFlowNetwork.from_tuples(SEED)
        live.add_edge(TemporalEdge("s", "a", 1, 2.0))
        assert replayed.epoch == live.epoch
        assert sorted(network_edges(replayed)) == sorted(network_edges(live))

    def test_partially_invalid_record_applies_prefix_deterministically(
        self, tmp_path
    ):
        # A record whose third edge is invalid (negative capacity):
        # every replayer applies exactly the two valid edges before it
        # and stops, so epochs still agree across replicas.
        record = append_record(
            [("s", "a", 7, 1.0), ("a", "t", 8, 2.0), ("a", "a", 9, -1.0)]
        )
        log = make_log(tmp_path)
        try:
            seed_log(log, SEED)
            log.append(record)
            log.flush()
            first = replay_network(log)
            second = replay_network(log)
        finally:
            log.close()
        expected = TemporalFlowNetwork.from_tuples(SEED)
        expected.add_edge(TemporalEdge("s", "a", 7, 1.0))
        expected.add_edge(TemporalEdge("a", "t", 8, 2.0))
        assert first.epoch == second.epoch == expected.epoch
        assert sorted(network_edges(first)) == sorted(network_edges(expected))
