"""A coordinator that dies — gracefully or by ``kill -9`` — must restart
with zero lost committed appends, and recovery must be *bounded*: a
snapshot restore plus a replay of only the log suffix behind it.

Three angles:

* in-process stop/new-coordinator: committed epoch, answers and the
  recovery accounting all survive the restart;
* replica rejoin replays only the post-checkpoint suffix (the rejoin
  cost bound the checkpointing exists to provide);
* the real thing: ``python -m repro.cluster._coordinator_main`` gets
  ``SIGKILL``-ed after acking appends over the wire, and a fresh
  coordinator on the same artifacts recovers exactly the acked state.
"""

import asyncio
import contextlib
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.cluster import ClusterCoordinator, InlineReplica, seed_log
from repro.service.protocol import (
    AppendRequest,
    QueryRequest,
    encode,
    parse_reply,
    request_payload,
)
from repro.store import AppendLog

from tests.cluster.test_failover import wait_for
from tests.service.test_interleave import SEED_EDGES, fresh_triple


def seeded_log(tmp_path):
    log_path = tmp_path / "cluster.log"
    log = AppendLog(log_path)
    try:
        seed_log(log, SEED_EDGES)
    finally:
        log.close()
    return log_path


def replicas_for(log_path, count=2):
    return [InlineReplica(f"r{i}", log_path) for i in range(count)]


def test_restarted_coordinator_recovers_committed_state(tmp_path):
    log_path = seeded_log(tmp_path)

    async def scenario():
        shadow = list(SEED_EDGES)
        first = ClusterCoordinator(
            log_path, replicas_for(log_path), snapshot_every=3
        )
        await first.start("127.0.0.1", 0)
        try:
            for i in range(7):
                edges = [(f"n{i}", f"m{i}", 10 + i, 1.0)]
                reply = await first.handle_request(
                    AppendRequest(id=f"a{i}", edges=tuple(edges))
                )
                assert reply.ok, reply
                shadow.extend(edges)
            committed = first.committed_epoch
            snap = await first.snapshot()
            counters = snap["coordinator"]["counters"]
            assert counters["snapshots"] >= 2
            assert counters["compactions"] >= 2
            assert counters["records_compacted"] > 0
        finally:
            await first.stop()

        # A brand-new coordinator object on the same durable artifacts:
        # construction alone must rebuild the committed state.
        second = ClusterCoordinator(
            log_path, replicas_for(log_path), snapshot_every=3
        )
        assert second.committed_epoch == committed
        assert second.recovery["from_snapshot"]
        assert (
            second.recovery["replayed_records"]
            < second.recovery["total_records"]
        )
        await second.start("127.0.0.1", 0)
        try:
            reply = await second.handle_request(
                QueryRequest(
                    id="q", source="s", sink="t", delta=4, min_epoch=committed
                )
            )
            assert reply.ok, reply
            served = (reply.density, reply.interval, reply.flow_value)
            assert served == fresh_triple(shadow, "s", "t", 4)
        finally:
            await second.stop()

    asyncio.run(scenario())


def test_rejoin_replays_only_the_post_checkpoint_suffix(tmp_path):
    log_path = seeded_log(tmp_path)

    async def scenario():
        coordinator = ClusterCoordinator(
            log_path, replicas_for(log_path), health_interval=0.1
        )
        await coordinator.start("127.0.0.1", 0)
        try:
            for i in range(5):
                reply = await coordinator.handle_request(
                    AppendRequest(
                        id=f"a{i}",
                        edges=((f"n{i}", f"m{i}", 10 + i, 1.0),),
                    )
                )
                assert reply.ok, reply
            checkpoint = await coordinator.checkpoint()
            assert checkpoint["compacted_records"] == 6  # seed + 5 appends
            for i in range(5, 7):
                reply = await coordinator.handle_request(
                    AppendRequest(
                        id=f"a{i}",
                        edges=((f"n{i}", f"m{i}", 10 + i, 1.0),),
                    )
                )
                assert reply.ok, reply

            coordinator._mark_dead("r0")

            def rejoined():
                state = coordinator._replicas["r0"]
                return (
                    state.live
                    and state.acked_epoch == coordinator.committed_epoch
                )

            assert await wait_for(rejoined), "victim never rejoined"
            snap = await coordinator.snapshot()
            recovery = snap["replicas"]["r0"]["recovery"]
            total = snap["coordinator"]["durability"]["records_total"]
            # The rejoin cost bound: only the 2 post-checkpoint records
            # were replayed, not the 8-record history.
            assert recovery["snapshot_restores"] == 1
            assert recovery["replayed_records"] == 2
            assert recovery["replayed_records"] < total == 8
        finally:
            await coordinator.stop()

    asyncio.run(scenario())


def test_kill_nine_coordinator_restarts_with_zero_lost_appends(tmp_path):
    log_path = seeded_log(tmp_path)
    package_root = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{package_root}{os.pathsep}{existing}" if existing else package_root
    )
    # Its own session/process group, so one killpg takes the coordinator
    # and everything it spawned — no orderly teardown anywhere.
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cluster._coordinator_main",
            "--log",
            str(log_path),
            "--replicas",
            "2",
            "--replica-mode",
            "inline",
            "--snapshot-every",
            "3",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
        start_new_session=True,
    )
    shadow = list(SEED_EDGES)
    acked = []
    try:
        announcement = json.loads(process.stdout.readline())
        assert announcement["event"] == "listening"
        host, port = announcement["host"], announcement["port"]

        async def drive():
            reader, writer = await asyncio.open_connection(host, port)
            try:
                for i in range(8):
                    edges = [(f"x{i}", f"y{i}", 20 + i, 1.0)]
                    writer.write(
                        encode(
                            request_payload(
                                AppendRequest(id=f"a{i}", edges=tuple(edges))
                            )
                        )
                    )
                    await writer.drain()
                    reply = parse_reply(await reader.readline())
                    assert reply.ok, reply
                    shadow.extend(edges)
                    acked.append(reply.epoch)
            finally:
                writer.close()

        asyncio.run(drive())
        os.killpg(process.pid, signal.SIGKILL)
        process.wait(timeout=10.0)
    finally:
        with contextlib.suppress(ProcessLookupError):
            os.killpg(process.pid, signal.SIGKILL)
        process.stdout.close()
        with contextlib.suppress(Exception):
            process.wait(timeout=10.0)

    async def restart():
        coordinator = ClusterCoordinator(
            log_path, replicas_for(log_path), snapshot_every=3
        )
        try:
            # Zero lost committed appends: the recovered epoch is exactly
            # the last epoch the dead coordinator acked over the wire.
            assert coordinator.committed_epoch == acked[-1]
            assert acked == sorted(set(acked))
            # And recovery was bounded: snapshot + suffix, not history.
            assert coordinator.recovery["from_snapshot"]
            assert (
                coordinator.recovery["replayed_records"]
                < coordinator.recovery["total_records"]
            )
            await coordinator.start("127.0.0.1", 0)
            reply = await coordinator.handle_request(
                QueryRequest(
                    id="q", source="s", sink="t", delta=4, min_epoch=acked[-1]
                )
            )
            assert reply.ok, reply
            served = (reply.density, reply.interval, reply.flow_value)
            assert served == fresh_triple(shadow, "s", "t", 4)
        finally:
            await coordinator.stop()

    asyncio.run(restart())
