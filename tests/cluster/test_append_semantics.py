"""Append commit/rollback semantics under partial and total fan-out loss.

Three REVIEW-driven invariants:

* an append that **any** replica applied is committed — the client sees
  success even when other replicas errored (no retry can duplicate a
  committed append);
* an append that **no** replica applied is rolled back out of the log
  before the retryable error is returned (a retry is safe, the log
  cannot replay an un-acked record into a duplicate);
* a log that got *ahead* of the acked view (a record durably logged in
  a crash window no replica ever acked) does not wedge the re-join
  loop: the log is the source of truth, so the rejoined replica's
  higher replayed epoch becomes the committed epoch.
"""

import asyncio

from repro.cluster.replication import append_record
from repro.service.protocol import (
    ERROR_OVERLOADED,
    AppendRequest,
    QueryRequest,
)

from tests.cluster.test_cluster_e2e import boot_cluster
from tests.cluster.test_failover import wait_for
from tests.service.test_interleave import SEED_EDGES, fresh_triple


def test_zero_ack_append_rolls_back_and_the_cluster_self_heals(tmp_path):
    """The 1-replica worst case: the only replica dies mid-fan-out.
    The logged record must be rolled back (retry-safe) and the replica
    must rejoin — the cluster may not wedge on 'no live replica'."""

    async def scenario():
        coordinator = await boot_cluster(tmp_path, replicas=1)
        try:
            log_size = coordinator.log.tail_offset()
            before = coordinator.committed_epoch
            # Kill the service underneath the coordinator: the fan-out
            # sees a dropped connection, zero replicas ack.
            await coordinator._replicas["r0"].handle.kill()
            edges = (("s", "a", 9, 1.0),)
            reply = await coordinator.handle_request(
                AppendRequest(id="a0", edges=edges)
            )
            assert not reply.ok
            assert reply.kind == ERROR_OVERLOADED
            assert reply.retry_after_ms is not None
            # The un-acked record is out of the log again: a client
            # retry cannot duplicate it via replay.
            assert coordinator.log.tail_offset() == log_size
            assert coordinator.counters.rollbacks == 1
            # The replica rejoins at the committed epoch instead of
            # failing the epoch check forever.
            assert await wait_for(
                lambda: coordinator._replicas["r0"].live
            ), "replica never rejoined after the zero-ack append"
            assert coordinator.committed_epoch == before
            assert coordinator.counters.rejoin_failures == 0
            # The retry lands cleanly, exactly once.
            retry = await coordinator.handle_request(
                AppendRequest(id="a0", edges=edges)
            )
            assert retry.ok, retry
            query = await coordinator.handle_request(
                QueryRequest(
                    id="q0", source="s", sink="t", delta=3,
                    min_epoch=retry.epoch,
                )
            )
            assert query.ok, query
            served = (query.density, query.interval, query.flow_value)
            assert served == fresh_triple(
                list(SEED_EDGES) + list(edges), "s", "t", 3
            )
        finally:
            await coordinator.stop()

    asyncio.run(scenario())


def test_append_commits_when_any_replica_acks(tmp_path):
    """A per-replica transient error (here: one replica draining) must
    not turn a committed, durably-logged append into a client-visible
    failure — that failure would invite a duplicating retry."""

    async def scenario():
        coordinator = await boot_cluster(tmp_path, replicas=2)
        try:
            victim = coordinator._replicas["r1"]
            victim.handle.service._draining = True
            edges = (("a", "b", 7, 2.0),)
            reply = await coordinator.handle_request(
                AppendRequest(id="a0", edges=edges)
            )
            assert reply.ok, reply  # committed on r0's ack
            assert reply.epoch == coordinator.committed_epoch
            assert coordinator.counters.rollbacks == 0
            # The replica that shed the committed append is out of
            # rotation until the log replay catches it up.
            assert await wait_for(
                lambda: victim.live
                and victim.acked_epoch == coordinator.committed_epoch
            ), "errored replica never caught up via log replay"
            query = await coordinator.handle_request(
                QueryRequest(
                    id="q0", source="s", sink="t", delta=3,
                    min_epoch=reply.epoch,
                )
            )
            assert query.ok, query
            served = (query.density, query.interval, query.flow_value)
            assert served == fresh_triple(
                list(SEED_EDGES) + list(edges), "s", "t", 3
            )
        finally:
            await coordinator.stop()

    asyncio.run(scenario())


def test_rejoin_adopts_a_log_ahead_of_the_acked_view(tmp_path):
    """A record that reached the durable log but was never acked (a
    coordinator crash window) must not wedge the re-join: the replayed
    epoch is ahead of the committed one, and the log wins."""

    async def scenario():
        coordinator = await boot_cluster(tmp_path, replicas=1)
        try:
            before = coordinator.committed_epoch
            edges = [("s", "b", 8, 1.5)]
            # Plant the crash-window state directly: durably logged,
            # acked by nobody.
            coordinator.log.append(append_record(edges))
            coordinator.log.flush()
            await coordinator._replicas["r0"].handle.kill()
            coordinator._mark_dead("r0")
            assert await wait_for(
                lambda: coordinator._replicas["r0"].live
            ), "replica never rejoined from the log-ahead state"
            assert coordinator.committed_epoch == before + len(edges)
            assert coordinator.counters.rejoin_failures == 0
            query = await coordinator.handle_request(
                QueryRequest(
                    id="q0", source="s", sink="t", delta=3,
                    min_epoch=coordinator.committed_epoch,
                )
            )
            assert query.ok, query
            served = (query.density, query.interval, query.flow_value)
            assert served == fresh_triple(
                list(SEED_EDGES) + edges, "s", "t", 3
            )
        finally:
            await coordinator.stop()

    asyncio.run(scenario())
