"""Cluster end-to-end: interleaved appends and queries across replicas.

The PR-3 interleave criterion, lifted one tier up: every answer served
through the :class:`~repro.cluster.ClusterCoordinator` — whatever
replica it routed to, whatever appends raced it — equals a fresh
sequential solve of the edge set its acked epochs pin down.  Replicas
are inline (in-process services on real TCP ports) so hypothesis can
afford to boot a cluster per example.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterCoordinator, InlineReplica, seed_log
from repro.service.protocol import AppendRequest, QueryRequest
from repro.store.log import AppendLog

from tests.service.test_interleave import (
    NODES,
    SEED_EDGES,
    append_op,
    fresh_triple,
    query_op,
)


def boot_log(tmp_path):
    path = tmp_path / "cluster.log"
    log = AppendLog(path)
    try:
        seed_log(log, SEED_EDGES)
    finally:
        log.close()
    return path


async def boot_cluster(tmp_path, replicas=2):
    path = boot_log(tmp_path)
    handles = [InlineReplica(f"r{i}", path) for i in range(replicas)]
    coordinator = ClusterCoordinator(path, handles)
    await coordinator.start("127.0.0.1", 0)
    return coordinator


@given(ops=st.lists(st.one_of(query_op, append_op), max_size=8))
@settings(max_examples=15, deadline=None)
def test_interleaved_ops_through_the_coordinator_serve_fresh_answers(
    ops, tmp_path_factory
):
    tmp_path = tmp_path_factory.mktemp("cluster")

    async def scenario():
        coordinator = await boot_cluster(tmp_path)
        shadow = list(SEED_EDGES)
        try:
            last_epoch = coordinator.committed_epoch
            for position, op in enumerate(ops):
                if op[0] == "append":
                    edges = op[1]
                    reply = await coordinator.handle_request(
                        AppendRequest(id=f"a{position}", edges=tuple(edges))
                    )
                    assert reply.ok, reply
                    assert reply.epoch > last_epoch
                    assert reply.epoch == coordinator.committed_epoch
                    last_epoch = reply.epoch
                    shadow.extend(edges)
                else:
                    _, source, sink, delta = op
                    # min_epoch = the last acked append: read-your-writes.
                    reply = await coordinator.handle_request(
                        QueryRequest(
                            id=f"q{position}", source=source, sink=sink,
                            delta=delta, min_epoch=last_epoch,
                        )
                    )
                    assert reply.ok, reply
                    served = (reply.density, reply.interval, reply.flow_value)
                    assert served == fresh_triple(shadow, source, sink, delta)
        finally:
            await coordinator.stop()

    asyncio.run(scenario())


def test_concurrent_queries_and_appends_each_pin_one_epoch(tmp_path):
    """Truly overlapping traffic through the coordinator: each query
    reply matches the edge set that its epoch identifies (the seed plus
    every append acked at or before it)."""

    append_edges = [
        ("s", "a", 5 + i, float(2 + i)) for i in range(4)
    ] + [("a", "b", 6, 3.0), ("b", "t", 9, 4.0)]
    query_specs = [("s", "t", d) for d in (1, 2, 3, 4, 5, 2, 3)]

    async def scenario():
        coordinator = await boot_cluster(tmp_path)
        try:

            async def one_append(index, edge):
                await asyncio.sleep(0.001 * index)
                reply = await coordinator.handle_request(
                    AppendRequest(id=f"a{index}", edges=(edge,))
                )
                assert reply.ok, reply
                return reply.epoch, edge

            async def one_query(index, spec):
                await asyncio.sleep(0.0005 * index)
                source, sink, delta = spec
                reply = await coordinator.handle_request(
                    QueryRequest(
                        id=f"q{index}", source=source, sink=sink, delta=delta
                    )
                )
                assert reply.ok, reply
                return reply.epoch, spec, (
                    reply.density, reply.interval, reply.flow_value
                )

            appends = [
                one_append(i, edge) for i, edge in enumerate(append_edges)
            ]
            queries = [
                one_query(i, spec) for i, spec in enumerate(query_specs)
            ]
            results = await asyncio.gather(*appends, *queries)
            return (
                results[: len(append_edges)],
                results[len(append_edges):],
            )
        finally:
            await coordinator.stop()

    append_records, query_records = asyncio.run(scenario())

    # Appends serialize under the coordinator's log lock, so acked epochs
    # are unique and order the edge sets exactly.
    epochs = [epoch for epoch, _ in append_records]
    assert len(set(epochs)) == len(epochs)

    for query_epoch, (source, sink, delta), served in query_records:
        visible = list(SEED_EDGES) + [
            edge
            for append_epoch, edge in sorted(append_records)
            if append_epoch <= query_epoch
        ]
        assert served == fresh_triple(visible, source, sink, delta), (
            f"query ({source}->{sink}, delta={delta}) at epoch "
            f"{query_epoch} diverged from the state its epoch pins"
        )


def test_queries_spread_across_replicas_by_affinity(tmp_path):
    """With every replica healthy each (source, sink) pair lands on its
    hash owner, so per-replica query counts match the router exactly."""

    pairs = [(u, v) for u in NODES for v in NODES if u != v]

    async def scenario():
        coordinator = await boot_cluster(tmp_path)
        try:
            for index, (source, sink) in enumerate(pairs):
                reply = await coordinator.handle_request(
                    QueryRequest(
                        id=f"q{index}", source=source, sink=sink, delta=2
                    )
                )
                assert reply.ok, reply
            expected = {"r0": 0, "r1": 0}
            for source, sink in pairs:
                expected[
                    coordinator.router.affinity(source, sink, ["r0", "r1"])
                ] += 1
            snapshot = await coordinator.snapshot()
            return expected, snapshot
        finally:
            await coordinator.stop()

    expected, snapshot = asyncio.run(scenario())
    served = {
        name: replica["requests"].get("query", 0)
        for name, replica in snapshot["replicas"].items()
    }
    assert served == expected
    assert all(count > 0 for count in served.values()), served
    assert snapshot["aggregate"]["requests"]["query"] == len(pairs)
