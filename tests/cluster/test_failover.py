"""Crash a replica with SIGKILL mid-stream; the cluster must not blink.

The ISSUE acceptance e2e: process replicas, ``kill -9`` one while
queries and appends are in flight, and afterwards prove (a) zero lost
acked appends, (b) zero wrong answers — every post-crash reply equals a
fresh sequential solve, (c) the victim rejoins by replaying the shared
log and reports exactly the committed epoch.
"""

import asyncio
import os
import signal

from repro.cluster import ClusterCoordinator, ProcessReplica, seed_log
from repro.service.protocol import AppendRequest, QueryRequest
from repro.store.log import AppendLog

from tests.service.test_interleave import SEED_EDGES, fresh_triple


async def wait_for(predicate, timeout=20.0, interval=0.05):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


def test_kill_minus_nine_loses_no_appends_and_serves_no_wrong_answers(
    tmp_path,
):
    log_path = tmp_path / "cluster.log"
    log = AppendLog(log_path)
    try:
        seed_log(log, SEED_EDGES)
    finally:
        log.close()

    async def scenario():
        handles = [ProcessReplica(f"r{i}", log_path) for i in range(2)]
        coordinator = ClusterCoordinator(
            log_path, handles, health_interval=0.1
        )
        await coordinator.start("127.0.0.1", 0)
        shadow = list(SEED_EDGES)
        acked = []

        async def append(position, edges):
            reply = await coordinator.handle_request(
                AppendRequest(id=f"a{position}", edges=tuple(edges))
            )
            assert reply.ok, reply
            shadow.extend(edges)
            acked.append(reply.epoch)
            return reply.epoch

        async def query(position, source, sink, delta, min_epoch=None):
            reply = await coordinator.handle_request(
                QueryRequest(
                    id=f"q{position}", source=source, sink=sink,
                    delta=delta, min_epoch=min_epoch,
                )
            )
            assert reply.ok, reply
            served = (reply.density, reply.interval, reply.flow_value)
            assert served == fresh_triple(shadow, source, sink, delta), (
                f"wrong answer after crash at position {position}"
            )

        try:
            # Warm traffic with both replicas up.
            epoch = await append(0, [("s", "a", 5, 2.0)])
            await query(0, "s", "t", 3, min_epoch=epoch)

            # SIGKILL r0 the way a crash does it: no warning, no drain.
            victim = handles[0]
            assert victim.process is not None
            os.kill(victim.process.pid, signal.SIGKILL)

            # Mid-crash traffic.  Every request must still succeed —
            # failover for queries, surviving-replica acks for appends —
            # and every answer must be right.
            for round_index in range(3):
                epoch = await append(
                    1 + round_index,
                    [("a", "b", 6 + round_index, float(1 + round_index))],
                )
                await query(1 + round_index, "s", "t", 4, min_epoch=epoch)

            # The victim rejoins automatically: restarted from the shared
            # log, readmitted only once its epoch equals the committed one.
            def rejoined():
                state = coordinator._replicas["r0"]
                return (
                    state.live
                    and state.acked_epoch == coordinator.committed_epoch
                )

            assert await wait_for(rejoined), (
                "victim never rejoined at the committed epoch"
            )

            snapshot = await coordinator.snapshot()
            membership = snapshot["coordinator"]["replicas"]
            assert membership["r0"]["live"] and membership["r1"]["live"]
            assert membership["r0"]["restarts"] >= 1
            assert (
                membership["r0"]["acked_epoch"]
                == membership["r1"]["acked_epoch"]
                == coordinator.committed_epoch
            )

            # Zero lost appends: a fenced query at the last acked epoch
            # succeeds against whichever replica serves it, and the
            # answer matches the full shadow edge set.
            await query(99, "s", "t", 5, min_epoch=max(acked))

            # Acked epochs are strictly monotone — nothing was dropped
            # or re-ordered during the crash window.
            assert acked == sorted(set(acked))
        finally:
            await coordinator.stop()

    asyncio.run(scenario())
