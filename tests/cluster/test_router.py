"""Consistent-hash routing: stability, spread and failover ordering."""

from collections import Counter

from repro.cluster.router import ConsistentHashRouter, shard_key


REPLICAS = ["r0", "r1", "r2", "r3"]


def pairs(count):
    return [(f"s{i}", f"t{i % 17}") for i in range(count)]


class TestAffinity:
    def test_affinity_is_deterministic(self):
        router = ConsistentHashRouter(REPLICAS)
        again = ConsistentHashRouter(REPLICAS)
        for source, sink in pairs(200):
            owner = router.affinity(source, sink, REPLICAS)
            assert owner == again.affinity(source, sink, REPLICAS)

    def test_affinity_is_independent_of_replica_list_order(self):
        forward = ConsistentHashRouter(REPLICAS)
        backward = ConsistentHashRouter(list(reversed(REPLICAS)))
        for source, sink in pairs(200):
            assert forward.affinity(source, sink, REPLICAS) == (
                backward.affinity(source, sink, REPLICAS)
            )

    def test_every_replica_owns_a_fair_share(self):
        router = ConsistentHashRouter(REPLICAS)
        owners = Counter(
            router.affinity(source, sink, REPLICAS)
            for source, sink in pairs(2000)
        )
        assert set(owners) == set(REPLICAS)
        # 64 vnodes per replica keeps the spread within a loose 3x band.
        assert max(owners.values()) < 3 * min(owners.values())

    def test_losing_a_replica_only_moves_its_own_keys(self):
        router = ConsistentHashRouter(REPLICAS)
        survivors = [rid for rid in REPLICAS if rid != "r2"]
        for source, sink in pairs(500):
            before = router.affinity(source, sink, REPLICAS)
            after = router.affinity(source, sink, survivors)
            if before != "r2":
                assert after == before

    def test_shard_key_separates_source_and_sink(self):
        # ("ab", "c") and ("a", "bc") must not collapse to one shard key.
        assert shard_key("ab", "c") != shard_key("a", "bc")


class TestOrder:
    def test_order_puts_the_affinity_owner_first(self):
        router = ConsistentHashRouter(REPLICAS)
        for source, sink in pairs(100):
            order = router.order(source, sink, REPLICAS)
            assert order[0] == router.affinity(source, sink, REPLICAS)
            assert sorted(order) == sorted(REPLICAS)

    def test_order_breaks_ties_by_least_in_flight(self):
        router = ConsistentHashRouter(REPLICAS)
        inflight = {"r0": 9, "r1": 0, "r2": 5, "r3": 2}
        order = router.order("s", "t", REPLICAS, inflight)
        owner, rest = order[0], order[1:]
        expected = sorted(
            (rid for rid in REPLICAS if rid != owner),
            key=lambda rid: (inflight[rid], rid),
        )
        assert rest == expected

    def test_order_with_no_eligible_replicas_is_empty(self):
        router = ConsistentHashRouter(REPLICAS)
        assert router.order("s", "t", []) == []
