"""Unit tests for the TemporalFlowNetwork structure and its indexes."""

import pytest

from repro.exceptions import InvalidTimestampError, UnknownNodeError
from repro.temporal import TemporalEdge, TemporalFlowNetwork


@pytest.fixture
def small() -> TemporalFlowNetwork:
    return TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 1, 3.0),
            ("s", "a", 4, 2.0),
            ("a", "t", 2, 5.0),
            ("a", "t", 5, 1.0),
            ("s", "t", 3, 1.0),
        ]
    )


class TestConstruction:
    def test_counts(self, small):
        assert small.num_nodes == 3
        assert small.num_edges == 5
        assert small.num_timestamps == 5

    def test_duplicate_edges_merge_capacity(self):
        network = TemporalFlowNetwork.from_tuples(
            [("a", "b", 1, 2.0), ("a", "b", 1, 3.0)]
        )
        assert network.num_edges == 1
        assert network.capacity("a", "b", 1) == 5.0

    def test_capacity_of_absent_edge_is_zero(self, small):
        assert small.capacity("t", "s", 1) == 0.0
        assert small.capacity("s", "a", 99) == 0.0

    def test_t_min_t_max(self, small):
        assert small.t_min == 1
        assert small.t_max == 5

    def test_empty_network_has_no_horizon(self):
        network = TemporalFlowNetwork()
        with pytest.raises(InvalidTimestampError):
            _ = network.t_min

    def test_isolated_node(self):
        network = TemporalFlowNetwork()
        network.add_node("lonely")
        assert network.has_node("lonely")
        assert network.num_edges == 0

    def test_contains_and_len(self, small):
        assert "s" in small
        assert "nope" not in small
        assert len(small) == 3


class TestTimestampIndexes:
    def test_tistamp_out(self, small):
        assert list(small.tistamp_out("s")) == [1, 3, 4]
        assert list(small.tistamp_out("a")) == [2, 5]
        assert list(small.tistamp_out("t")) == []

    def test_tistamp_in(self, small):
        assert list(small.tistamp_in("t")) == [2, 3, 5]
        assert list(small.tistamp_in("a")) == [1, 4]
        assert list(small.tistamp_in("s")) == []

    def test_ti_for_source_is_out_stamps(self, small):
        assert list(small.ti("s", "s", "t")) == [1, 3, 4]

    def test_ti_for_sink_is_in_stamps(self, small):
        assert list(small.ti("t", "s", "t")) == [2, 3, 5]

    def test_ti_for_intermediate_is_union(self, small):
        assert list(small.ti("a", "s", "t")) == [1, 2, 4, 5]

    def test_ti_unknown_node_raises(self, small):
        with pytest.raises(UnknownNodeError):
            small.ti("zzz", "s", "t")

    def test_ti_in_window_clips_and_adds_boundaries(self, small):
        # Source always gets the window start; sink the window end.
        assert small.ti_in_window("s", "s", "t", 2, 5) == [2, 3, 4]
        assert small.ti_in_window("t", "s", "t", 1, 4) == [2, 3, 4]
        assert small.ti_in_window("a", "s", "t", 2, 4) == [2, 4]

    def test_ti_in_window_boundary_dedupe(self, small):
        # Window start coincides with an existing source stamp.
        assert small.ti_in_window("s", "s", "t", 1, 5) == [1, 3, 4]
        # Window end coincides with an existing sink stamp.
        assert small.ti_in_window("t", "s", "t", 1, 5) == [2, 3, 5]

    def test_indexes_refresh_after_mutation(self, small):
        small.add_edge(TemporalEdge("s", "a", 7, 1.0))
        assert list(small.tistamp_out("s")) == [1, 3, 4, 7]
        assert small.t_max == 7


class TestDegrees:
    def test_degree_counts_in_and_out(self, small):
        assert small.degree("s") == 3
        assert small.degree("a") == 4
        assert small.degree("t") == 3

    def test_max_degree(self, small):
        assert small.max_degree() == 4

    def test_query_degree_is_max_ti(self, small):
        assert small.query_degree("s", "t") == 3

    def test_degree_tracks_mutation(self, small):
        small.add_edge(TemporalEdge("t", "s", 6, 1.0))
        assert small.degree("s") == 4
        assert small.degree("t") == 4


class TestWindowedAccess:
    def test_edges_in_window_is_time_ordered(self, small):
        taus = [edge.tau for edge in small.edges_in_window(1, 5)]
        assert taus == sorted(taus)
        assert len(taus) == 5

    def test_edges_in_window_clips(self, small):
        edges = list(small.edges_in_window(2, 4))
        assert {edge.tau for edge in edges} == {2, 3, 4}

    def test_empty_window(self, small):
        assert list(small.edges_in_window(6, 9)) == []

    def test_out_neighbours(self, small):
        assert list(small.out_neighbours("s", 1)) == ["a"]
        assert list(small.out_neighbours("s", 99)) == []

    def test_sink_capacity_in_window(self, small):
        assert small.sink_capacity_in_window("t", 1, 5) == 7.0
        assert small.sink_capacity_in_window("t", 3, 5) == 2.0
        assert small.sink_capacity_in_window("t", 4, 4) == 0.0

    def test_total_capacity(self, small):
        assert small.total_capacity() == 12.0
