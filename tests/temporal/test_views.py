"""Tests for sub-network views and transformations."""

import pytest

from repro import find_bursting_flow
from repro.exceptions import UnknownNodeError
from repro.temporal import TemporalFlowNetwork
from repro.temporal.views import (
    filter_edges,
    merge_networks,
    node_induced_subnetwork,
    relabel_nodes,
    shift_timestamps,
    window_subnetwork,
)


@pytest.fixture
def sample() -> TemporalFlowNetwork:
    return TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 1, 3.0),
            ("a", "t", 4, 3.0),
            ("s", "b", 6, 2.0),
            ("b", "t", 8, 2.0),
        ]
    )


class TestWindowSubnetwork:
    def test_slices_edges(self, sample):
        sliced = window_subnetwork(sample, 1, 4)
        assert sliced.num_edges == 2
        assert sliced.capacity("a", "t", 4) == 3.0
        assert not sliced.has_node("b")

    def test_keep_nodes(self, sample):
        sliced = window_subnetwork(sample, 1, 4, keep_nodes=True)
        assert sliced.has_node("b")

    def test_original_untouched(self, sample):
        window_subnetwork(sample, 1, 4)
        assert sample.num_edges == 4


class TestNodeInduced:
    def test_both_endpoints_required(self, sample):
        induced = node_induced_subnetwork(sample, ["s", "a", "t"])
        assert induced.num_edges == 2
        assert induced.capacity("s", "b", 6) == 0.0

    def test_nonexistent_members_ignored(self, sample):
        induced = node_induced_subnetwork(sample, ["s", "ghost"])
        assert induced.num_edges == 0
        assert not induced.has_node("ghost")


class TestFilterEdges:
    def test_predicate(self, sample):
        heavy = filter_edges(sample, lambda edge: edge.capacity >= 3.0)
        assert heavy.num_edges == 2
        assert heavy.has_node("b")  # nodes preserved


class TestRelabel:
    def test_dict_mapping_partial(self, sample):
        renamed = relabel_nodes(sample, {"s": "source"})
        assert renamed.has_node("source")
        assert renamed.capacity("source", "a", 1) == 3.0
        assert renamed.has_node("t")

    def test_callable_mapping(self, sample):
        renamed = relabel_nodes(sample, lambda node: f"x_{node}")
        assert renamed.has_node("x_s")
        assert renamed.num_edges == 4

    def test_merging_mapping_rejected(self, sample):
        with pytest.raises(UnknownNodeError):
            relabel_nodes(sample, {"a": "t"})

    def test_queries_survive_relabelling(self, sample):
        renamed = relabel_nodes(sample, lambda node: f"n_{node}")
        before = find_bursting_flow(sample, source="s", sink="t", delta=2)
        after = find_bursting_flow(renamed, source="n_s", sink="n_t", delta=2)
        assert after.density == pytest.approx(before.density)
        assert after.interval == before.interval


class TestMergeAndShift:
    def test_merge_sums_shared_capacity(self, sample):
        other = TemporalFlowNetwork.from_tuples([("s", "a", 1, 2.0)])
        merged = merge_networks(sample, other)
        assert merged.capacity("s", "a", 1) == 5.0
        assert merged.num_edges == 4

    def test_shift_preserves_answers(self, sample):
        shifted = shift_timestamps(sample, 100)
        before = find_bursting_flow(sample, source="s", sink="t", delta=2)
        after = find_bursting_flow(shifted, source="s", sink="t", delta=2)
        assert after.density == pytest.approx(before.density)
        lo, hi = after.interval
        assert (lo - 100, hi - 100) == before.interval

    def test_negative_shift(self, sample):
        shifted = shift_timestamps(sample, -1)
        assert shifted.t_min == 0
