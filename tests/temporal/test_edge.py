"""Unit tests for temporal edge primitives."""

import math

import pytest

from repro.exceptions import InvalidCapacityError, InvalidEdgeError
from repro.temporal import TemporalEdge
from repro.temporal.edge import validate_capacity


class TestTemporalEdge:
    def test_basic_construction(self):
        edge = TemporalEdge("a", "b", 3, 7.5)
        assert edge.u == "a"
        assert edge.v == "b"
        assert edge.tau == 3
        assert edge.capacity == 7.5

    def test_key_is_identifying_triple(self):
        assert TemporalEdge("a", "b", 3, 7.5).key() == ("a", "b", 3)

    def test_reversed_swaps_endpoints_only(self):
        edge = TemporalEdge("a", "b", 3, 7.5)
        rev = edge.reversed()
        assert (rev.u, rev.v, rev.tau, rev.capacity) == ("b", "a", 3, 7.5)

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidEdgeError):
            TemporalEdge("a", "a", 1, 1.0)

    def test_non_integer_timestamp_rejected(self):
        with pytest.raises(InvalidEdgeError):
            TemporalEdge("a", "b", 1.5, 1.0)

    def test_frozen(self):
        edge = TemporalEdge("a", "b", 1, 1.0)
        with pytest.raises(AttributeError):
            edge.capacity = 2.0

    def test_hashable_and_equal_by_value(self):
        assert TemporalEdge("a", "b", 1, 2.0) == TemporalEdge("a", "b", 1, 2.0)
        assert len({TemporalEdge("a", "b", 1, 2.0), TemporalEdge("a", "b", 1, 2.0)}) == 1

    def test_integer_node_ids_allowed(self):
        edge = TemporalEdge(1, 2, 3, 4.0)
        assert edge.key() == (1, 2, 3)


class TestValidateCapacity:
    @pytest.mark.parametrize("bad", [0, -1, -0.5, math.nan, math.inf, -math.inf])
    def test_rejects_non_positive_and_non_finite(self, bad):
        with pytest.raises(InvalidCapacityError):
            validate_capacity(bad)

    @pytest.mark.parametrize("bad", [True, "3", None, [1.0]])
    def test_rejects_non_numbers(self, bad):
        with pytest.raises(InvalidCapacityError):
            validate_capacity(bad)

    @pytest.mark.parametrize("good", [1, 0.001, 1e12])
    def test_accepts_positive_finite(self, good):
        assert validate_capacity(good) == good
