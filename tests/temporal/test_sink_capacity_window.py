"""Prefix-sum ``sink_capacity_in_window`` vs the reference edge scan."""

import random

import pytest

from repro.temporal import TemporalEdge, TemporalFlowNetwork

from tests.conftest import random_temporal_network


def _all_windows(network):
    if network.num_timestamps == 0:
        return [(0, 0)]
    lo, hi = network.t_min, network.t_max
    windows = [
        (a, b) for a in range(lo - 1, hi + 2) for b in range(a, hi + 2)
    ]
    windows.append((hi + 5, hi + 9))  # fully out of range
    return windows


class TestPrefixMatchesScan:
    @pytest.mark.parametrize("seed", range(20))
    def test_integer_capacities_exact_equality(self, seed):
        network = random_temporal_network(seed)
        for node in list(network.nodes):
            for tau_lo, tau_hi in _all_windows(network):
                assert network.sink_capacity_in_window(
                    node, tau_lo, tau_hi
                ) == network._sink_capacity_in_window_scan(node, tau_lo, tau_hi)

    @pytest.mark.parametrize("seed", range(10))
    def test_fractional_capacities_close(self, seed):
        # Non-dyadic capacities: the prefix subtraction and the scan may
        # associate additions differently, so allow float-noise slack.
        rng = random.Random(seed)
        network = TemporalFlowNetwork()
        nodes = [f"n{i}" for i in range(4)]
        for _ in range(24):
            u, v = rng.sample(nodes, 2)
            network.add_edge(
                TemporalEdge(u, v, rng.randint(1, 8), rng.randint(1, 99) / 10)
            )
        for node in nodes:
            for tau_lo, tau_hi in _all_windows(network):
                fast = network.sink_capacity_in_window(node, tau_lo, tau_hi)
                slow = network._sink_capacity_in_window_scan(node, tau_lo, tau_hi)
                assert fast == pytest.approx(slow, rel=1e-12, abs=1e-12)

    def test_parallel_edge_merge_invalidates_prefix(self):
        # Adding capacity to an existing (u, v, tau) key must mark the
        # prefix sums dirty, not leave a stale total behind.
        network = TemporalFlowNetwork.from_tuples(
            [("a", "t", 2, 3.0), ("b", "t", 4, 5.0)]
        )
        assert network.sink_capacity_in_window("t", 1, 9) == 8.0
        network.add_edge(TemporalEdge("a", "t", 2, 2.0))  # merges into 5.0
        assert network.sink_capacity_in_window("t", 1, 9) == 10.0
        assert network._sink_capacity_in_window_scan("t", 1, 9) == 10.0

    def test_node_with_no_in_edges(self):
        network = TemporalFlowNetwork.from_tuples([("s", "t", 3, 1.0)])
        assert network.sink_capacity_in_window("s", 1, 9) == 0.0
        assert network._sink_capacity_in_window_scan("s", 1, 9) == 0.0

    def test_empty_and_inverted_windows(self):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "t", 3, 2.0), ("s", "t", 7, 4.0)]
        )
        assert network.sink_capacity_in_window("t", 4, 6) == 0.0
        assert network.sink_capacity_in_window("t", 6, 4) == 0.0
        assert network.sink_capacity_in_window("t", 3, 3) == 2.0
        assert network.sink_capacity_in_window("t", 3, 7) == 6.0
