"""Tests for temporal reachability / earliest arrival."""

import pytest

from repro.exceptions import UnknownNodeError
from repro.temporal import (
    TemporalFlowNetwork,
    earliest_arrival,
    is_temporally_reachable,
    min_temporal_hops,
    reachable_set,
)


@pytest.fixture
def timeline() -> TemporalFlowNetwork:
    """Edges whose ordering matters: b is only reachable the "long way"."""
    return TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 5, 1.0),
            ("a", "b", 3, 1.0),  # too early: a is reached at 5
            ("a", "c", 6, 1.0),
            ("c", "b", 8, 1.0),
            ("b", "t", 9, 1.0),
        ]
    )


class TestEarliestArrival:
    def test_respects_time_order(self, timeline):
        arrival = earliest_arrival(timeline, "s")
        assert arrival["a"] == 5
        assert arrival["c"] == 6
        assert arrival["b"] == 8  # via c, not via the tau=3 edge
        assert arrival["t"] == 9

    def test_source_arrival_is_departure_time(self, timeline):
        arrival = earliest_arrival(timeline, "s", depart_at=4)
        assert arrival["s"] == 4

    def test_departure_after_edges_blocks_them(self, timeline):
        arrival = earliest_arrival(timeline, "s", depart_at=6)
        assert "a" not in arrival  # the tau=5 edge already left

    def test_horizon_bound(self, timeline):
        arrival = earliest_arrival(timeline, "s", until=7)
        assert "b" not in arrival and "t" not in arrival
        assert arrival["c"] == 6

    def test_unknown_source_raises(self, timeline):
        with pytest.raises(UnknownNodeError):
            earliest_arrival(timeline, "zzz")

    def test_same_timestamp_chaining(self):
        # s->a and a->b both at tau=2: value may hop twice in one instant.
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 2, 1.0), ("a", "b", 2, 1.0)]
        )
        arrival = earliest_arrival(network, "s")
        assert arrival["b"] == 2


class TestReachability:
    def test_reachable(self, timeline):
        assert is_temporally_reachable(timeline, "s", "t")

    def test_not_reachable_backwards(self, timeline):
        assert not is_temporally_reachable(timeline, "t", "s")

    def test_window_restriction(self, timeline):
        assert not is_temporally_reachable(timeline, "s", "t", tau_e=8)

    def test_reachable_set(self, timeline):
        assert reachable_set(timeline, "s") == {"s", "a", "b", "c", "t"}
        assert reachable_set(timeline, "c") == {"c", "b", "t"}


class TestMinHops:
    def test_hop_count(self, timeline):
        assert min_temporal_hops(timeline, "s", "t") == 4  # s-a-c-b-t

    def test_direct_edge_is_one_hop(self):
        network = TemporalFlowNetwork.from_tuples([("s", "t", 1, 1.0)])
        assert min_temporal_hops(network, "s", "t") == 1

    def test_unreachable_returns_none(self, timeline):
        assert min_temporal_hops(timeline, "t", "s") is None

    def test_time_invalid_shortcut_ignored(self):
        # s-x-t is 2 hops but time-inverted; the valid path has 3 hops.
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "x", 5, 1.0),
                ("x", "t", 2, 1.0),  # earlier than arrival at x
                ("s", "a", 1, 1.0),
                ("a", "b", 2, 1.0),
                ("b", "t", 3, 1.0),
            ]
        )
        assert min_temporal_hops(network, "s", "t") == 3

    def test_window_restricts_hops(self, timeline):
        assert min_temporal_hops(timeline, "s", "t", tau_e=8) is None
