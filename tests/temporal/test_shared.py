"""Unit tests for the shared-memory edge log (store + reader)."""

import glob
import random

import pytest

from repro.exceptions import ReproError
from repro.temporal.edge import TemporalEdge
from repro.temporal.network import TemporalFlowNetwork
from repro.temporal.shared import (
    INITIAL_CAPACITY,
    SharedNetworkReader,
    SharedNetworkStore,
)


def _edge_set(network):
    return sorted((e.u, e.v, e.tau, e.capacity) for e in network.edges())


def _random_network(seed: int, edges: int) -> TemporalFlowNetwork:
    rng = random.Random(seed)
    network = TemporalFlowNetwork()
    added = 0
    while added < edges:
        u, v = rng.sample(range(25), 2)
        network.add_edge(
            TemporalEdge(
                f"n{u}", f"n{v}", rng.randrange(60), float(rng.randint(1, 9))
            )
        )
        added += 1
    return network


def _assert_no_segments(name: str) -> None:
    assert not glob.glob(f"/dev/shm/{name}*")


class TestRoundTrip:
    def test_initial_snapshot_reconstructs_network(self):
        network = _random_network(0, 120)
        with SharedNetworkStore(network) as store:
            with SharedNetworkReader(store.name) as reader:
                assert _edge_set(reader.network) == _edge_set(network)
                assert reader.network.epoch == network.epoch

    def test_suffix_replay_after_epoch_bumps(self):
        network = _random_network(1, 50)
        with SharedNetworkStore(network) as store:
            with SharedNetworkReader(store.name) as reader:
                for round_no in range(3):
                    fresh = []
                    for i in range(10):
                        edge = TemporalEdge(
                            f"x{round_no}", f"y{i}", 100 + round_no * 10 + i, 2.0
                        )
                        network.add_edge(edge)
                        fresh.append(edge)
                    store.publish(fresh, epoch=network.epoch)
                    assert reader.catch_up() == 10
                    assert _edge_set(reader.network) == _edge_set(network)
                    assert reader.network.epoch == network.epoch
                # A no-change poll replays nothing.
                assert reader.catch_up() == 0

    def test_duplicate_edges_merge_identically(self):
        # add_edge merges duplicate (u, v, tau) capacities; replay runs
        # through add_edge, so the merge happens in the reader too.
        network = TemporalFlowNetwork()
        network.add_edge(TemporalEdge("a", "b", 1, 2.0))
        with SharedNetworkStore(network) as store:
            with SharedNetworkReader(store.name) as reader:
                dup = TemporalEdge("a", "b", 1, 3.0)
                network.add_edge(dup)
                store.publish([dup], epoch=network.epoch)
                reader.catch_up()
                assert _edge_set(reader.network) == _edge_set(network)
                assert reader.network.num_edges == 1

    def test_growth_across_generations(self):
        # Force several capacity doublings and make sure an attached
        # reader follows the data segment across generations.
        network = _random_network(2, 10)
        with SharedNetworkStore(network, capacity=2048) as store:
            with SharedNetworkReader(store.name) as reader:
                total = 10
                for burst in range(4):
                    fresh = []
                    for i in range(500):
                        edge = TemporalEdge(
                            f"g{burst}", f"h{i}", 1000 + burst * 500 + i, 1.0
                        )
                        network.add_edge(edge)
                        fresh.append(edge)
                    store.publish(fresh, epoch=network.epoch)
                    total += 500
                    assert reader.catch_up() == 500
                    assert reader.network.num_edges == network.num_edges
                assert store.records == total


class TestLifecycle:
    def test_close_unlinks_all_segments(self):
        network = _random_network(3, 30)
        store = SharedNetworkStore(network)
        name = store.name
        assert glob.glob(f"/dev/shm/{name}*")
        store.close()
        _assert_no_segments(name)

    def test_close_is_idempotent_and_rejects_publish(self):
        network = _random_network(4, 5)
        store = SharedNetworkStore(network)
        store.close()
        store.close()
        with pytest.raises(ReproError, match="closed"):
            store.publish([], epoch=network.epoch)

    def test_growth_unlinks_old_generations(self):
        network = _random_network(5, 5)
        store = SharedNetworkStore(network, capacity=2048)
        fresh = []
        for i in range(2000):
            edge = TemporalEdge("p", f"q{i}", 10 + i, 1.0)
            network.add_edge(edge)
            fresh.append(edge)
        store.publish(fresh, epoch=network.epoch)
        segments = glob.glob(f"/dev/shm/{store.name}*")
        # Exactly the header and the *current* data generation remain.
        assert len(segments) == 2, segments
        store.close()
        _assert_no_segments(store.name)

    def test_initial_capacity_floor(self):
        network = TemporalFlowNetwork()
        network.add_edge(TemporalEdge("a", "b", 1, 1.0))
        with SharedNetworkStore(network, capacity=1) as store:
            with SharedNetworkReader(store.name) as reader:
                assert reader.network.num_edges == 1
        assert INITIAL_CAPACITY >= 1024
