"""Tests for the Table-2 statistics module."""

import math

import pytest

from repro.temporal import TemporalFlowNetwork, format_stats_table, network_stats
from repro.temporal.stats import _fmt_count


class TestNetworkStats:
    def test_basic_columns(self):
        network = TemporalFlowNetwork.from_tuples(
            [("a", "b", 1, 2.0), ("b", "c", 2, 3.0), ("a", "c", 2, 4.0)]
        )
        stats = network_stats(network)
        assert stats.num_nodes == 3
        assert stats.num_edges == 3
        assert stats.num_timestamps == 2
        assert stats.avg_degree == 2.0  # 2|E|/|V| = 6/3
        assert stats.total_capacity == 9.0

    def test_stddev_zero_for_regular_graph(self):
        # Directed triangle: every node has degree exactly 2.
        network = TemporalFlowNetwork.from_tuples(
            [("a", "b", 1, 1.0), ("b", "c", 1, 1.0), ("c", "a", 1, 1.0)]
        )
        stats = network_stats(network)
        assert stats.stddev_degree == 0.0
        assert stats.max_degree == 2

    def test_stddev_of_star(self):
        # Hub with 4 spokes: degrees [4, 1, 1, 1, 1].
        network = TemporalFlowNetwork.from_tuples(
            [("hub", f"n{i}", i + 1, 1.0) for i in range(4)]
        )
        stats = network_stats(network)
        degrees = [4, 1, 1, 1, 1]
        mean = sum(degrees) / 5
        expected = math.sqrt(sum((d - mean) ** 2 for d in degrees) / 5)
        assert stats.stddev_degree == pytest.approx(expected)
        assert stats.max_degree == 4

    def test_empty_network(self):
        stats = network_stats(TemporalFlowNetwork())
        assert stats.num_nodes == 0
        assert stats.avg_degree == 0.0

    def test_as_row_order(self):
        network = TemporalFlowNetwork.from_tuples([("a", "b", 1, 1.0)])
        row = network_stats(network).as_row()
        assert row[:3] == (2, 1, 1)


class TestFormatting:
    def test_table_contains_all_datasets(self):
        network = TemporalFlowNetwork.from_tuples([("a", "b", 1, 1.0)])
        stats = network_stats(network)
        table = format_stats_table({"demo1": stats, "demo2": stats})
        assert "demo1" in table and "demo2" in table
        assert "Avg. degree" in table

    def test_fmt_count_paper_style(self):
        assert _fmt_count(999) == "999"
        assert _fmt_count(1_259) == "1,259"
        assert _fmt_count(21_000) == "21K"
        assert _fmt_count(54_400) == "54.4K"
        assert _fmt_count(3_300_000) == "3.30M"
        assert _fmt_count(2_000_000) == "2M"
