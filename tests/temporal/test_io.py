"""Tests for edge-list loading/saving."""

import pytest

from repro.exceptions import DatasetError
from repro.temporal import (
    TemporalFlowNetwork,
    load_edge_list,
    load_jsonl,
    save_edge_list,
    save_jsonl,
)


@pytest.fixture
def sample() -> TemporalFlowNetwork:
    return TemporalFlowNetwork.from_tuples(
        [
            ("alice", "bob", 1, 250.0),
            ("bob", "carol", 3, 100.5),
            ("alice", "carol", 3, 42.0),
        ]
    )


def same_edges(a: TemporalFlowNetwork, b: TemporalFlowNetwork) -> bool:
    return sorted((e.u, e.v, e.tau, e.capacity) for e in a.edges()) == sorted(
        (e.u, e.v, e.tau, e.capacity) for e in b.edges()
    )


class TestCsvRoundTrip:
    def test_csv(self, sample, tmp_path):
        path = tmp_path / "edges.csv"
        save_edge_list(sample, path)
        loaded = load_edge_list(path)
        assert same_edges(sample, loaded)

    def test_tsv_delimiter_inferred(self, sample, tmp_path):
        path = tmp_path / "edges.tsv"
        save_edge_list(sample, path)
        assert "\t" in path.read_text().splitlines()[1]
        loaded = load_edge_list(path)
        assert same_edges(sample, loaded)

    def test_header_optional(self, tmp_path):
        path = tmp_path / "noheader.csv"
        path.write_text("x,y,1,5.0\ny,z,2,6.0\n")
        loaded = load_edge_list(path)
        assert loaded.num_edges == 2

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("u,v,tau,capacity\nx,y,1,5.0\n\n\ny,z,2,6.0\n")
        assert load_edge_list(path).num_edges == 2

    def test_short_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y,1\n")
        with pytest.raises(DatasetError, match="expected 4 fields"):
            load_edge_list(path)

    def test_non_numeric_capacity_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y,1,abc\n")
        with pytest.raises(DatasetError, match="not a number"):
            load_edge_list(path)

    def test_compact_timestamps(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("u,v,tau,capacity\nx,y,1000,5.0\ny,z,5000,6.0\n")
        network, codec = load_edge_list(path, compact_timestamps=True)
        assert list(network.timestamps) == [1, 2]
        assert codec.decode(2) == 5000.0


class TestJsonlRoundTrip:
    def test_jsonl(self, sample, tmp_path):
        path = tmp_path / "edges.jsonl"
        save_jsonl(sample, path)
        loaded = load_jsonl(path)
        assert same_edges(sample, loaded)

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"u": "x"\n')
        with pytest.raises(DatasetError, match="invalid JSON"):
            load_jsonl(path)

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"u": "x", "v": "y", "tau": 1}\n')
        with pytest.raises(DatasetError, match="must have"):
            load_jsonl(path)

    def test_jsonl_compacted(self, sample, tmp_path):
        path = tmp_path / "edges.jsonl"
        save_jsonl(sample, path)
        network, codec = load_jsonl(path, compact_timestamps=True)
        assert network.num_timestamps == 2
        assert codec.decode(1) == 1
