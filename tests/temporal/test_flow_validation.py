"""Tests for temporal flows and the Eq. 3/4 validators."""

import pytest

from repro.exceptions import FlowValidationError
from repro.temporal import TemporalFlow, TemporalFlowNetwork, validate_temporal_flow


@pytest.fixture
def diamond() -> TemporalFlowNetwork:
    """s -> {a, b} -> t with staggered timestamps."""
    return TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 1, 4.0),
            ("s", "b", 2, 3.0),
            ("a", "t", 3, 4.0),
            ("b", "t", 4, 3.0),
        ]
    )


def make_flow(values, tau_s=1, tau_e=4) -> TemporalFlow:
    flow = TemporalFlow("s", "t", tau_s, tau_e)
    for (u, v, tau), value in values.items():
        flow.set_value(u, v, tau, value)
    return flow


class TestTemporalFlowContainer:
    def test_flow_value_counts_source_emission(self, diamond):
        flow = make_flow(
            {
                ("s", "a", 1): 2.0,
                ("a", "t", 3): 2.0,
            }
        )
        assert flow.flow_value() == 2.0

    def test_density(self):
        flow = make_flow({("s", "a", 1): 3.0, ("a", "t", 3): 3.0}, tau_s=1, tau_e=4)
        assert flow.density() == pytest.approx(1.0)

    def test_density_of_degenerate_interval_raises(self):
        flow = make_flow({}, tau_s=2, tau_e=2)
        with pytest.raises(FlowValidationError):
            flow.density()

    def test_set_value_zero_removes_entry(self):
        flow = make_flow({("s", "a", 1): 2.0})
        flow.set_value("s", "a", 1, 0.0)
        assert ("s", "a", 1) not in flow.values

    def test_negative_value_rejected(self):
        flow = TemporalFlow("s", "t", 1, 4)
        with pytest.raises(FlowValidationError):
            flow.set_value("s", "a", 1, -1.0)

    def test_interval_properties(self):
        flow = TemporalFlow("s", "t", 2, 7)
        assert flow.interval == (2, 7)
        assert flow.interval_length == 5


class TestValidators:
    def test_valid_flow_passes(self, diamond):
        flow = make_flow(
            {
                ("s", "a", 1): 4.0,
                ("s", "b", 2): 3.0,
                ("a", "t", 3): 4.0,
                ("b", "t", 4): 3.0,
            }
        )
        validate_temporal_flow(diamond, flow)

    def test_capacity_violation(self, diamond):
        flow = make_flow({("s", "a", 1): 5.0, ("a", "t", 3): 5.0})
        with pytest.raises(FlowValidationError, match="capacity"):
            validate_temporal_flow(diamond, flow)

    def test_flow_on_nonexistent_edge_is_capacity_violation(self, diamond):
        flow = make_flow({("s", "t", 1): 1.0})
        with pytest.raises(FlowValidationError, match="capacity"):
            validate_temporal_flow(diamond, flow)

    def test_conservation_violation(self, diamond):
        # a receives 4 but forwards only 2.
        flow = make_flow({("s", "a", 1): 4.0, ("a", "t", 3): 2.0})
        with pytest.raises(FlowValidationError):
            validate_temporal_flow(diamond, flow)

    def test_time_constraint_violation(self):
        # a forwards at tau=1 what it only receives at tau=3.
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 3, 2.0), ("a", "t", 1, 2.0)]
        )
        flow = make_flow({("s", "a", 3): 2.0, ("a", "t", 1): 2.0}, tau_s=1, tau_e=3)
        with pytest.raises(FlowValidationError, match="time constraint"):
            validate_temporal_flow(network, flow)

    def test_flow_outside_window_rejected(self, diamond):
        flow = make_flow(
            {("s", "a", 1): 1.0, ("a", "t", 3): 1.0}, tau_s=2, tau_e=4
        )
        with pytest.raises(FlowValidationError, match="outside"):
            validate_temporal_flow(diamond, flow)

    def test_degenerate_window_rejected(self, diamond):
        flow = make_flow({}, tau_s=4, tau_e=4)
        with pytest.raises(FlowValidationError):
            validate_temporal_flow(diamond, flow)

    def test_value_mismatch_detected_in_strict_mode(self, diamond):
        # Source emits 4 but the sink only absorbs 2: node 'a' both breaks
        # conservation and the strict source/sink agreement.
        flow = make_flow({("s", "a", 1): 4.0, ("a", "t", 3): 2.0})
        with pytest.raises(FlowValidationError):
            validate_temporal_flow(diamond, flow, strict=True)

    def test_empty_flow_is_valid(self, diamond):
        validate_temporal_flow(diamond, make_flow({}))

    def test_storage_at_node_is_allowed(self):
        # Value waits at 'a' between tau=1 and tau=5 — legal.
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 1, 2.0), ("a", "t", 5, 2.0)]
        )
        flow = make_flow({("s", "a", 1): 2.0, ("a", "t", 5): 2.0}, tau_s=1, tau_e=5)
        validate_temporal_flow(network, flow)
