"""Unit tests for the network builder and the timestamp codec."""

import pytest

from repro.exceptions import InvalidTimestampError
from repro.temporal import TemporalFlowNetworkBuilder, TimestampCodec


class TestBuilder:
    def test_fluent_build(self):
        network = (
            TemporalFlowNetworkBuilder()
            .edge("a", "b", tau=1, capacity=2.0)
            .edge("b", "c", tau=2, capacity=3.0)
            .build()
        )
        assert network.num_edges == 2
        assert network.capacity("a", "b", 1) == 2.0

    def test_edges_bulk(self):
        network = (
            TemporalFlowNetworkBuilder()
            .edges([("a", "b", 1, 2.0), ("b", "c", 2, 3.0)])
            .build()
        )
        assert network.num_edges == 2

    def test_node_registers_isolated_node(self):
        network = TemporalFlowNetworkBuilder().node("ghost").build()
        assert network.has_node("ghost")

    def test_integer_valued_float_timestamps_accepted(self):
        network = TemporalFlowNetworkBuilder().edge("a", "b", tau=3.0, capacity=1.0).build()
        assert network.capacity("a", "b", 3) == 1.0

    def test_fractional_timestamp_rejected_without_compaction(self):
        builder = TemporalFlowNetworkBuilder().edge("a", "b", tau=3.5, capacity=1.0)
        with pytest.raises(InvalidTimestampError):
            builder.build()

    def test_build_compacted_renumbers_timestamps(self):
        network, codec = (
            TemporalFlowNetworkBuilder()
            .edge("a", "b", tau=1_600_000_000.5, capacity=1.0)
            .edge("b", "c", tau=1_600_000_900.0, capacity=1.0)
            .edge("a", "c", tau=1_600_000_000.5, capacity=1.0)
            .build_compacted()
        )
        assert network.num_timestamps == 2
        assert list(network.timestamps) == [1, 2]
        assert codec.decode(1) == 1_600_000_000.5
        assert codec.encode(1_600_000_900.0) == 2


class TestTimestampCodec:
    def test_round_trip(self):
        codec = TimestampCodec([10.0, 20.0, 35.0])
        for seq, raw in ((1, 10.0), (2, 20.0), (3, 35.0)):
            assert codec.encode(raw) == seq
            assert codec.decode(seq) == raw

    def test_decode_interval(self):
        codec = TimestampCodec([10.0, 20.0, 35.0])
        assert codec.decode_interval((1, 3)) == (10.0, 35.0)

    def test_len(self):
        assert len(TimestampCodec([1.0, 2.0])) == 2

    def test_unknown_event_time_raises(self):
        codec = TimestampCodec([10.0])
        with pytest.raises(InvalidTimestampError):
            codec.encode(11.0)

    def test_out_of_range_sequence_raises(self):
        codec = TimestampCodec([10.0])
        with pytest.raises(InvalidTimestampError):
            codec.decode(2)
        with pytest.raises(InvalidTimestampError):
            codec.decode(0)

    def test_unsorted_input_rejected(self):
        with pytest.raises(InvalidTimestampError):
            TimestampCodec([3.0, 1.0])

    def test_duplicate_input_rejected(self):
        with pytest.raises(InvalidTimestampError):
            TimestampCodec([1.0, 1.0])
