"""CLI tests for the ``serve`` subcommand and the ``--kernel`` flags."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main
from repro.temporal import TemporalFlowNetwork, save_edge_list


@pytest.fixture
def edges_csv(tmp_path):
    network = TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 10, 500.0),
            ("s", "b", 10, 400.0),
            ("a", "t", 12, 500.0),
            ("b", "t", 13, 400.0),
            ("s", "a", 2, 20.0),
            ("a", "t", 5, 20.0),
        ]
    )
    path = tmp_path / "edges.csv"
    save_edge_list(network, path)
    return path


class TestKernelFlags:
    @pytest.mark.parametrize("kernel", ["persistent", "object"])
    def test_query_kernel_flag(self, edges_csv, capsys, kernel):
        code = main(
            [
                "query", str(edges_csv),
                "--source", "s", "--sink", "t", "--delta", "2",
                "--kernel", kernel,
            ]
        )
        assert code == 0
        assert "300" in capsys.readouterr().out

    def test_query_rejects_unknown_kernel(self, edges_csv, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "query", str(edges_csv),
                    "--source", "s", "--sink", "t", "--delta", "2",
                    "--kernel", "cuda",
                ]
            )

    def test_scan_kernel_flag(self, edges_csv, capsys):
        code = main(
            [
                "scan", str(edges_csv),
                "--sources", "s", "--sinks", "t",
                "--kernel", "object",
            ]
        )
        assert code == 0
        assert "scanned" in capsys.readouterr().out

    def test_kernels_agree_on_the_answer(self, edges_csv, capsys):
        outputs = []
        for kernel in ("persistent", "object"):
            assert main(
                [
                    "query", str(edges_csv),
                    "--source", "s", "--sink", "t", "--delta", "2",
                    "--kernel", kernel,
                ]
            ) == 0
            out = capsys.readouterr().out
            outputs.append(
                [line for line in out.splitlines()
                 if "density" in line or "interval" in line]
            )
        assert outputs[0] == outputs[1]


class TestFuzzServiceBackend:
    def test_fuzz_accepts_service_backend(self, capsys):
        code = main(
            [
                "fuzz", "--trials", "2", "--seed", "7",
                "--backends", "bfq*,service",
                "--no-certify", "--no-shrink",
            ]
        )
        assert code == 0
        assert "agree" in capsys.readouterr().out


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "edges.csv"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 7461
        assert args.algorithm == "bfq*"
        assert args.kernel is None
        assert args.processes is None
        assert args.max_pending == 64
        assert args.serve_seconds is None

    def test_serve_rejects_unknown_kernel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "edges.csv", "--kernel", "cuda"]
            )


class TestServeEndToEnd:
    def test_serve_boots_answers_and_exits(self, edges_csv):
        """Boot ``repro-bfq serve`` in a subprocess and query it over TCP."""
        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_dir)] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", str(edges_csv),
                "--port", "0", "--serve-seconds", "30",
                "--max-pending", "8",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "serving delta-BFlow queries on" in banner, banner
            address = banner.split(" on ", 1)[1].split(" ", 1)[0]
            host, port = address.rsplit(":", 1)

            from repro.service import ServiceClient

            with ServiceClient(host, int(port)) as client:
                cold = client.query("s", "t", 2)
                warm = client.query("s", "t", 2)
                metrics = client.metrics()

            from repro import BurstingFlowQuery, find_bursting_flow
            from repro.temporal import load_edge_list

            network = load_edge_list(edges_csv)
            fresh = find_bursting_flow(
                network, BurstingFlowQuery("s", "t", 2)
            )
            for reply in (cold, warm):
                assert reply.density == fresh.density
                assert reply.interval == fresh.interval
                assert reply.flow_value == fresh.flow_value
            assert cold.cached is False and warm.cached is True
            assert metrics["cache"]["hits"] == 1
            assert json.dumps(metrics)  # snapshot is JSON-able
        finally:
            process.terminate()
            process.wait(timeout=30)
