"""Trace builder: determinism, burstiness, popularity, round-trip."""

import collections

import pytest

from repro.exceptions import InvalidQueryError
from repro.loadgen import ArrivalEvent, OpMix, Trace, TraceConfig, build_trace
from repro.loadgen.trace import derive_pairs
from repro.temporal import TemporalFlowNetwork

EDGES = [
    ("s", "a", 1, 4.0),
    ("a", "t", 2, 3.0),
    ("s", "b", 3, 5.0),
    ("b", "t", 4, 2.0),
    ("a", "b", 5, 1.0),
    ("b", "a", 6, 1.0),
    ("t", "s", 7, 2.0),
]

FULL_MIX = OpMix(query=0.4, append=0.2, batch=0.15, topk=0.15, scan=0.1)


@pytest.fixture()
def network():
    return TemporalFlowNetwork.from_tuples(EDGES)


def config(**overrides):
    defaults = dict(
        seed=3, duration_s=4.0, base_rate=25.0, burst_rate=100.0,
        pairs=4, mix=FULL_MIX,
    )
    defaults.update(overrides)
    return TraceConfig(**defaults)


class TestBuildTrace:
    def test_same_seed_same_trace(self, network):
        a = build_trace(network, config())
        b = build_trace(network, config())
        assert [e.as_dict() for e in a.events] == [e.as_dict() for e in b.events]
        assert a.bursts == b.bursts
        assert a.pair_universe == b.pair_universe

    def test_different_seed_different_trace(self, network):
        a = build_trace(network, config())
        b = build_trace(network, config(seed=4))
        assert [e.as_dict() for e in a.events] != [e.as_dict() for e in b.events]

    def test_schedule_is_sorted_and_bounded(self, network):
        trace = build_trace(network, config())
        times = [event.at for event in trace.events]
        assert times == sorted(times)
        assert all(0.0 <= at < trace.config.duration_s for at in times)

    def test_covers_every_requested_op(self, network):
        trace = build_trace(network, config(duration_s=8.0))
        assert set(trace.op_counts) == {"query", "append", "batch", "topk", "scan"}

    def test_burst_intervals_are_denser(self, network):
        trace = build_trace(
            network, config(duration_s=20.0, base_rate=10.0, burst_rate=200.0)
        )
        burst_span = sum(hi - lo for lo, hi in trace.bursts)
        assert 0 < burst_span < trace.config.duration_s
        in_burst = sum(
            1
            for event in trace.events
            if any(lo <= event.at < hi for lo, hi in trace.bursts)
        )
        out_burst = len(trace.events) - in_burst
        quiet_span = trace.config.duration_s - burst_span
        assert in_burst / burst_span > 3 * (out_burst / quiet_span)

    def test_zipf_popularity_prefers_hot_pair(self, network):
        trace = build_trace(
            network,
            config(duration_s=30.0, mix=OpMix(query=1.0), zipf_s=1.3),
        )
        counts = collections.Counter(
            (event.source, event.sink) for event in trace.events
        )
        ranked = [counts.get(pair, 0) for pair in trace.pair_universe]
        assert ranked[0] == max(ranked)
        assert ranked[0] > ranked[-1]

    def test_append_edges_are_fresh_and_monotone(self, network):
        trace = build_trace(
            network, config(duration_s=10.0, mix=OpMix(query=0.0, append=1.0))
        )
        taus = [
            edge[2]
            for event in trace.events
            for edge in event.edges
        ]
        assert taus == sorted(taus)
        assert len(set(taus)) == len(taus)  # never a capacity merge
        assert min(taus) > network.num_timestamps

    def test_scaled_stretches_schedule(self, network):
        trace = build_trace(network, config())
        slow = trace.scaled(0.5)
        assert len(slow) == len(trace)
        assert slow.events[-1].at == pytest.approx(trace.events[-1].at * 2)
        assert slow.bursts[0][0] == pytest.approx(trace.bursts[0][0] * 2)

    def test_explicit_pairs_override(self, network):
        trace = build_trace(
            network, config(mix=OpMix(query=1.0)), pairs=[("s", "t")]
        )
        assert trace.pair_universe == (("s", "t"),)
        assert all(event.source == "s" for event in trace.events)


class TestRoundTrip:
    def test_jsonl_round_trip(self, network, tmp_path):
        trace = build_trace(network, config())
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        loaded = Trace.from_jsonl(path)
        assert loaded.config == trace.config
        assert loaded.bursts == trace.bursts
        assert loaded.pair_universe == trace.pair_universe
        assert loaded.delta == trace.delta
        assert [e.as_dict() for e in loaded.events] == [
            e.as_dict() for e in trace.events
        ]

    def test_event_dict_round_trip(self):
        event = ArrivalEvent(
            at=1.5, op="append", edges=(("a", "b", 9, 2.5),)
        )
        assert ArrivalEvent.from_dict(event.as_dict()) == event


class TestValidation:
    def test_rejects_all_zero_mix(self):
        with pytest.raises(InvalidQueryError):
            OpMix(query=0.0)

    def test_rejects_negative_weight(self):
        with pytest.raises(InvalidQueryError):
            OpMix(query=1.0, append=-0.1)

    def test_rejects_burst_below_base(self):
        with pytest.raises(InvalidQueryError):
            TraceConfig(base_rate=100.0, burst_rate=50.0)

    def test_derive_pairs_relaxes_hop_bound(self, network):
        pairs = derive_pairs(network, count=3, seed=0)
        assert len(pairs) >= 1
        assert all(source != sink for source, sink in pairs)
