"""Open-loop driver against a real service: honesty under pressure."""

import asyncio

import pytest

from repro.exceptions import ReproError
from repro.loadgen import OpMix, OpenLoopDriver, build_trace, classify_error
from repro.loadgen.trace import TraceConfig
from repro.service import BurstingFlowService
from repro.service.protocol import (
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    RemoteServiceError,
    StaleEpochError,
)
from repro.temporal import TemporalFlowNetwork

EDGES = [
    ("s", "a", 1, 4.0),
    ("a", "t", 2, 3.0),
    ("s", "b", 3, 5.0),
    ("b", "t", 4, 2.0),
    ("a", "b", 5, 1.0),
]

PAIRS = [("s", "t"), ("a", "t")]


def run_trace(mix, *, duration_s=1.5, rate=30.0, connections=4, **config):
    async def scenario():
        network = TemporalFlowNetwork.from_tuples(EDGES)
        service = BurstingFlowService(network, max_pending=64)
        host, port = await service.start("127.0.0.1", 0)
        driver = OpenLoopDriver(host, port, connections=connections)
        try:
            trace = build_trace(
                network,
                TraceConfig(
                    seed=11, duration_s=duration_s, base_rate=rate,
                    burst_rate=rate * 2, pairs=2, mix=mix, **config,
                ),
                pairs=PAIRS,
            )
            result = await driver.run(trace)
            return trace, result
        finally:
            await driver.close()
            await service.stop()

    return asyncio.run(scenario())


class TestOpenLoopDriver:
    def test_fires_full_schedule_and_reports_lag(self):
        trace, result = run_trace(OpMix(query=1.0))
        assert result.offered == len(trace.events)
        assert result.completed == result.offered
        assert result.ok == result.offered
        assert result.error_count == 0
        # Open-loop honesty: one lag observation per request, always.
        assert result.lag.count == result.offered
        assert result.lag.quantile(0.99) is not None
        assert result.wall_s >= trace.events[-1].at

    def test_latency_views_are_distinct(self):
        _, result = run_trace(OpMix(query=1.0))
        stats = result.per_op["query"]
        assert stats.total_latency.count == stats.ok
        assert stats.service_latency.count == stats.ok
        # total includes queueing from the scheduled time, so it can
        # never undercut the service view.
        assert (
            stats.total_latency.total_seconds
            >= stats.service_latency.total_seconds
        )

    def test_records_acked_appends_with_epochs(self):
        _, result = run_trace(OpMix(query=0.5, append=0.5), duration_s=2.0)
        assert result.acked_appends, "no appends in the draw"
        epochs = [epoch for epoch, _ in result.acked_appends]
        assert len(set(epochs)) == len(epochs)
        assert all(edges for _, edges in result.acked_appends)
        assert result.per_op["append"].ok == len(result.acked_appends)

    def test_starved_pool_shows_up_as_lag_not_slowdown(self):
        # One connection, arrivals far faster than the round trip:
        # a closed-loop harness would silently stretch the run; the
        # open-loop driver must keep the schedule and report the queue
        # as scheduled-vs-sent lag.
        trace, result = run_trace(
            OpMix(query=1.0), duration_s=0.8, rate=200.0, connections=1
        )
        assert result.ok == result.offered
        assert result.lag.max_seconds > 0.0
        p50_lag = result.lag.quantile(0.5)
        assert p50_lag is not None and p50_lag > 0.0

    def test_rejects_bad_connections(self):
        with pytest.raises(ReproError):
            OpenLoopDriver("127.0.0.1", 1, connections=0)


class TestClassifyError:
    def test_typed_kinds(self):
        assert classify_error(OverloadedError("busy")) == "overloaded"
        assert classify_error(StaleEpochError("old")) == "stale"
        assert classify_error(DeadlineExceededError("late")) == "timeout"
        assert classify_error(ProtocolError("bad")) == "invalid"
        assert classify_error(RemoteServiceError("boom")) == "internal"

    def test_everything_else_is_connection(self):
        assert classify_error(ConnectionResetError()) == "connection"
        assert classify_error(OSError("down")) == "connection"
