"""Scenario matrix + SLO gate: reports carry proof, bounds bite."""

import pytest

from repro.exceptions import ReproError
from repro.loadgen import (
    SMOKE_SCALE,
    SMOKE_SLOS,
    ScenarioReport,
    Slo,
    evaluate_matrix,
    run_scenario,
)
from repro.loadgen.scenarios import SCENARIOS, scale_from_overrides
from repro.temporal import TemporalFlowNetwork

EDGES = [
    ("s", "a", 1, 4.0),
    ("a", "t", 2, 3.0),
    ("s", "b", 3, 5.0),
    ("b", "t", 4, 2.0),
    ("a", "b", 5, 1.0),
    ("b", "a", 6, 1.0),
]

TEST_SCALE = scale_from_overrides(
    SMOKE_SCALE,
    {
        "duration_s": 1.5,
        "base_rate": 10.0,
        "burst_rate": 40.0,
        "connections": 4,
        "pairs": 3,
    },
)


def tiny_network():
    return TemporalFlowNetwork.from_tuples(EDGES)


def sample_report(**overrides):
    payload = dict(
        scenario="query_heavy",
        target="service",
        offered_rate=100.0,
        achieved_rate=98.0,
        duration_s=10.0,
        offered=1000,
        ok=980,
        error_rate=0.02,
        errors={"overloaded": 20},
        retries=7,
        per_op={
            "query": {
                "scheduled": 1000,
                "ok": 980,
                "errors": {"overloaded": 20},
                "total_ms": {
                    "count": 980, "p50_ms": 5.0, "p95_ms": 20.0,
                    "p99_ms": 45.0, "p999_ms": 80.0, "max_ms": 95.0,
                },
                "service_ms": {
                    "count": 980, "p50_ms": 4.0, "p95_ms": 15.0,
                    "p99_ms": 30.0, "p999_ms": 60.0, "max_ms": 70.0,
                },
            }
        },
        lag_ms={
            "count": 1000, "p50_ms": 0.1, "p95_ms": 1.0,
            "p99_ms": 3.0, "p999_ms": 8.0, "max_ms": 10.0,
        },
    )
    payload.update(overrides)
    return ScenarioReport(**payload)


class TestSloGate:
    def test_all_bounds_pass(self):
        slo = Slo(
            min_achieved_fraction=0.95, max_error_rate=0.05,
            max_p99_ms=50.0, max_p999_ms=100.0, max_lag_p99_ms=5.0,
        )
        result = slo.evaluate(sample_report())
        assert result.passed
        assert {check.name for check in result.checks} == {
            "achieved_fraction", "error_rate", "p99_ms", "p999_ms",
            "lag_p99_ms", "lag_reported",
        }

    def test_each_bound_can_fail(self):
        report = sample_report()
        for slo, expected in (
            (Slo(min_achieved_fraction=0.999), "achieved_fraction"),
            (Slo(max_error_rate=0.001), "error_rate"),
            (Slo(max_p99_ms=1.0), "p99_ms"),
            (Slo(max_p999_ms=1.0), "p999_ms"),
            (Slo(max_lag_p99_ms=0.5), "lag_p99_ms"),
        ):
            result = slo.evaluate(report)
            assert not result.passed
            assert [check.name for check in result.failures] == [expected]

    def test_zero_lost_acked_gate(self):
        strict = Slo(require_zero_lost_acked=True)
        assert strict.evaluate(
            sample_report(lost_acked_appends=0)
        ).passed
        assert not strict.evaluate(
            sample_report(lost_acked_appends=1)
        ).passed
        # A scenario that never measured loss cannot pass the gate.
        assert not strict.evaluate(sample_report()).passed

    def test_lag_must_be_reported(self):
        silent = sample_report(lag_ms={"count": 0, "p99_ms": None})
        assert not Slo().evaluate(silent).passed

    def test_recovery_bound(self):
        slo = Slo(max_recovery_s=5.0)
        assert slo.evaluate(sample_report(recovery_s=3.0)).passed
        assert not slo.evaluate(sample_report(recovery_s=9.0)).passed
        assert not slo.evaluate(sample_report()).passed

    def test_evaluate_matrix_requires_full_coverage(self):
        reports = {"query_heavy": sample_report()}
        with pytest.raises(ReproError):
            evaluate_matrix(reports, {})
        results = evaluate_matrix(reports, {"query_heavy": Slo()})
        assert results["query_heavy"].passed

    def test_report_round_trips_through_dict(self):
        report = sample_report(
            recovery_s=1.5, lost_acked_appends=0, acked_appends=12,
            ambiguous_appends=0, answers_verified=True,
            bursts=((0.5, 1.0),), extra={"victim": "r0"},
        )
        loaded = ScenarioReport.from_dict(report.as_dict())
        assert loaded == report
        assert report.as_dict()["loop"] == "open"


class TestScenarioRuns:
    def test_matrix_names_are_gated(self):
        assert set(SCENARIOS) == set(SMOKE_SLOS)

    def test_query_heavy_end_to_end(self, tmp_path):
        report = run_scenario(
            "query_heavy",
            scale=TEST_SCALE,
            network=tiny_network(),
            workdir=tmp_path,
        )
        assert report.target == "service"
        assert report.offered > 0
        assert report.lag_ms["count"] == report.offered
        assert SMOKE_SLOS["query_heavy"].evaluate(report).passed

    def test_cache_cold_restart_measures_recovery(self, tmp_path):
        report = run_scenario(
            "cache_cold_restart",
            scale=TEST_SCALE,
            network=tiny_network(),
            workdir=tmp_path,
        )
        assert report.recovery_s is not None and report.recovery_s > 0
        assert "warm_phase" in report.extra
        assert SMOKE_SLOS["cache_cold_restart"].evaluate(report).passed

    def test_failover_chaos_proves_zero_lost_acked(self, tmp_path):
        report = run_scenario(
            "failover_chaos",
            scale=scale_from_overrides(TEST_SCALE, {"duration_s": 3.0}),
            network=tiny_network(),
            workdir=tmp_path,
        )
        assert report.extra["killed"]
        assert report.lost_acked_appends == 0
        assert report.acked_appends and report.acked_appends > 0
        assert report.recovery_s is not None and report.recovery_s > 0
        if report.ambiguous_appends == 0:
            assert report.answers_verified is True
        assert SMOKE_SLOS["failover_chaos"].evaluate(report).passed

    def test_unknown_scenario_is_typed_error(self):
        with pytest.raises(ReproError):
            run_scenario("warp_speed", network=tiny_network())
