"""Corner-case matrix for ``enumerate_candidates`` (Section 4.2, Lemma 2).

Every corner is asserted two ways: structurally (the plan has the expected
shape) and semantically, against the naive ``O(|T|^2)`` scan over every
window — the plan must reach the same optimal density, and under the
canonical tie-break the same record wherever the optimum lies on the plan.
"""

import pytest

from repro.baselines.naive import naive_bfq
from repro.core import BurstingFlowQuery, enumerate_candidates
from repro.core.bfq import bfq
from repro.core.record import BestRecord
from repro.core.transform import build_transformed_network
from repro.flownet.algorithms.dinic import dinic
from repro.temporal import TemporalFlowNetwork


def _exhaustive_scan(network, source, sink, delta):
    """Independent O(|T|^2) reference: every window, canonical tie-break."""
    best = BestRecord()
    if network.num_timestamps == 0:
        return best
    t_min, t_max = network.t_min, network.t_max
    for tau_s in range(t_min, t_max - delta + 1):
        for tau_e in range(tau_s + delta, t_max + 1):
            transformed = build_transformed_network(
                network, source, sink, tau_s, tau_e
            )
            value = dinic(
                transformed.flow_network,
                transformed.source_index,
                transformed.sink_index,
            ).value
            best.offer(value, tau_s, tau_e)
    return best


def _assert_plan_matches_scan(network, source, sink, delta):
    scan = _exhaustive_scan(network, source, sink, delta)
    query = BurstingFlowQuery(source, sink, delta)
    plan_answer = bfq(network, query)
    naive_answer = naive_bfq(network, query)
    assert plan_answer.density == pytest.approx(scan.density, rel=1e-9, abs=1e-12)
    assert naive_answer.density == pytest.approx(scan.density, rel=1e-9, abs=1e-12)
    assert naive_answer.interval == scan.interval
    return plan_answer, scan


class TestEveryStartOvershooting:
    """All of Ti(s) lands within delta of the horizon: only the clamped
    corner window [T_max - delta, T_max] can carry flow."""

    def _network(self):
        return TemporalFlowNetwork.from_tuples(
            [
                ("x", "y", 1, 1.0),  # stretches the horizon leftward
                ("s", "a", 7, 3.0),
                ("a", "t", 8, 3.0),
            ]
        )

    def test_plan_shape(self):
        network = self._network()
        plan = enumerate_candidates(network, "s", "t", 3)
        assert plan.starts == ()  # 7 + 3 > 8: every start overshoots
        assert plan.corner == (5, 8)
        assert list(plan.intervals()) == [(5, 8)]

    def test_matches_exhaustive_scan(self):
        network = self._network()
        answer, scan = _assert_plan_matches_scan(network, "s", "t", 3)
        assert answer.interval == (5, 8)
        assert scan.density == answer.density


class TestCornerCollidingWithExistingStart:
    """T_max - delta is itself in Ti(s): the corner would duplicate the
    minimal window of that start and must be deduped from the plan."""

    def _network(self):
        return TemporalFlowNetwork.from_tuples(
            [
                ("s", "a", 5, 2.0),  # 5 = T_max - delta: fits exactly
                ("a", "t", 6, 2.0),
                ("s", "b", 7, 9.0),  # 7 + 3 > 8: overshoots
                ("b", "t", 8, 9.0),
                ("x", "y", 1, 1.0),
            ]
        )

    def test_plan_shape(self):
        network = self._network()
        plan = enumerate_candidates(network, "s", "t", 3)
        assert 5 in plan.starts
        assert plan.corner is None  # (5, 8) already covered by start 5
        intervals = list(plan.intervals())
        assert intervals.count((5, 8)) == 1

    def test_matches_exhaustive_scan(self):
        network = self._network()
        answer, _ = _assert_plan_matches_scan(network, "s", "t", 3)
        assert answer.interval == (5, 8)


class TestHorizonShorterThanDelta:
    """t_max - t_min < delta: no admissible window exists at all."""

    def _network(self):
        return TemporalFlowNetwork.from_tuples(
            [("s", "a", 3, 2.0), ("a", "t", 4, 2.0)]
        )

    def test_plan_is_empty(self):
        network = self._network()
        plan = enumerate_candidates(network, "s", "t", 4)
        assert plan.starts == ()
        assert plan.corner is None
        assert list(plan.intervals()) == []

    def test_matches_exhaustive_scan(self):
        network = self._network()
        answer, scan = _assert_plan_matches_scan(network, "s", "t", 4)
        assert answer.interval is None
        assert scan.interval is None

    def test_exact_fit_still_admissible(self):
        # Boundary partner: t_max - t_min == delta is NOT the corner case.
        network = self._network()
        answer, _ = _assert_plan_matches_scan(network, "s", "t", 1)
        assert answer.interval == (3, 4)


class TestEmptyTiSets:
    """Ti(s) or Ti(t) empty: no flow can leave s / reach t."""

    def test_source_never_emits(self):
        network = TemporalFlowNetwork.from_tuples(
            [("a", "s", 2, 2.0), ("a", "t", 3, 2.0)]
        )
        plan = enumerate_candidates(network, "s", "t", 1)
        assert list(plan.intervals()) == []
        answer, scan = _assert_plan_matches_scan(network, "s", "t", 1)
        assert answer.interval is None and scan.interval is None

    def test_sink_never_receives(self):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 2, 2.0), ("t", "a", 3, 2.0)]
        )
        plan = enumerate_candidates(network, "s", "t", 1)
        assert list(plan.intervals()) == []
        answer, scan = _assert_plan_matches_scan(network, "s", "t", 1)
        assert answer.interval is None and scan.interval is None

    def test_isolated_endpoints_in_edgeless_network(self):
        network = TemporalFlowNetwork()
        network.add_node("s")
        network.add_node("t")
        plan = enumerate_candidates(network, "s", "t", 1)
        assert list(plan.intervals()) == []
        assert plan.t_max == 0
        answer = bfq(network, BurstingFlowQuery("s", "t", 1))
        assert answer.interval is None
