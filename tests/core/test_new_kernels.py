"""Property and agreement tests for the specialised maxflow kernels.

``kernel="vectorized"`` (numpy phase-BFS Dinic), ``kernel="push_relabel"``
(flat FIFO preflow) and ``kernel="adaptive"`` (per-window selection) all
run on the *same* persistent residual arena as ``kernel="persistent"``,
and must be interchangeable mid-stream: any kernel may pick up the arena
another kernel left behind.  Hypothesis drives random ``extend_end`` /
``advance_start`` / ``run_maxflow`` interleavings against an
object-graph twin and asserts, after every step:

* value parity — all kernels report the same maximum flow;
* mirror parity — the arena still byte-mirrors the object graph
  (``ResidualArena.mirrors``), i.e. the numpy/preflow kernels wrote
  their residual updates back exactly like the scalar kernel does;
* the executed kernel is stamped on the run (``MaxflowRun.kernel``), and
  under ``adaptive`` it is always one of the real arena kernels.

The agreement matrix then checks the full BFQ* pipeline end-to-end: every
registry kernel must produce the identical ``(density, interval,
flow_value)`` on the same queries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bfq_star import bfq_star
from repro.core.incremental import IncrementalTransformedNetwork
from repro.core.query import BurstingFlowQuery
from repro.flownet.algorithms.registry import ARENA_KERNELS, ENGINE_KERNELS
from repro.flownet.algorithms.selector import KernelSelector
from tests.core.test_persistent_kernel import temporal_networks

TOLERANCE = 1e-7

#: The kernels under test here (everything that runs on the flat arena).
NEW_KERNELS = ("vectorized", "push_relabel", "adaptive")


def _twins(network, kernel, tau_s, tau_e):
    specialised = IncrementalTransformedNetwork(
        network, "n0", "n1", tau_s, tau_e, kernel=kernel
    )
    reference = IncrementalTransformedNetwork(
        network, "n0", "n1", tau_s, tau_e, kernel="object"
    )
    return specialised, reference


def _check_step(specialised, reference):
    assert specialised.flow_value() == pytest.approx(
        reference.flow_value(), abs=TOLERANCE
    )
    arena = specialised.network.arena
    if arena is not None:  # attached lazily on the first kernel run
        assert arena.mirrors(specialised.network)


@settings(max_examples=40, deadline=None)
@given(temporal_networks(), st.sampled_from(NEW_KERNELS), st.data())
def test_operation_sequences_keep_twins_equivalent(network, kernel, data):
    """Random interleavings per kernel: value + mirror invariants."""
    t_min, t_max = network.t_min, network.t_max
    if t_max - t_min < 2:
        return
    tau_s = t_min
    tau_e = data.draw(
        st.integers(min_value=tau_s + 1, max_value=min(tau_s + 4, t_max)),
        label="initial tau_e",
    )
    specialised, reference = _twins(network, kernel, tau_s, tau_e)
    specialised.run_maxflow()
    reference.run_maxflow()
    _check_step(specialised, reference)

    for _ in range(data.draw(st.integers(min_value=1, max_value=4), label="steps")):
        options = ["run"]
        if specialised.tau_e < t_max:
            options.append("extend")
        if specialised.tau_e - specialised.tau_s > 1:
            options.append("advance")
        op = data.draw(st.sampled_from(options), label="op")
        if op == "extend":
            new_tau_e = data.draw(
                st.integers(min_value=specialised.tau_e + 1, max_value=t_max),
                label="new tau_e",
            )
            specialised.extend_end(new_tau_e)
            reference.extend_end(new_tau_e)
        elif op == "advance":
            new_tau_s = data.draw(
                st.integers(
                    min_value=specialised.tau_s + 1,
                    max_value=specialised.tau_e - 1,
                ),
                label="new tau_s",
            )
            specialised.advance_start(new_tau_s)
            reference.advance_start(new_tau_s)
        specialised.run_maxflow()
        reference.run_maxflow()
        _check_step(specialised, reference)


@settings(max_examples=25, deadline=None)
@given(temporal_networks(), st.data())
def test_kernels_interchange_on_one_arena(network, data):
    """Any kernel may resume the arena another kernel left behind."""
    t_min, t_max = network.t_min, network.t_max
    if t_max - t_min < 2:
        return
    mixed, reference = _twins(network, "persistent", t_min, t_min + 1)
    for _ in range(data.draw(st.integers(min_value=2, max_value=5), label="steps")):
        if mixed.tau_e < t_max and data.draw(st.booleans(), label="extend?"):
            new_tau_e = data.draw(
                st.integers(min_value=mixed.tau_e + 1, max_value=t_max),
                label="new tau_e",
            )
            mixed.extend_end(new_tau_e)
            reference.extend_end(new_tau_e)
        # Hop between kernels on the same persistent arena.
        mixed.kernel = data.draw(
            st.sampled_from(sorted(ARENA_KERNELS) + ["adaptive"]),
            label="kernel",
        )
        mixed.run_maxflow()
        reference.run_maxflow()
        _check_step(mixed, reference)


class TestAgreementMatrix:
    """Every registry kernel answers BFQ* identically, end to end."""

    DELTAS = (2, 3, 5, 10)

    def test_all_kernels_agree_on_burst_network(self, burst_network):
        baseline = {
            delta: bfq_star(
                burst_network,
                BurstingFlowQuery("s", "t", delta),
                kernel="persistent",
            )
            for delta in self.DELTAS
        }
        for kernel in ENGINE_KERNELS:
            for delta in self.DELTAS:
                result = bfq_star(
                    burst_network,
                    BurstingFlowQuery("s", "t", delta),
                    kernel=kernel,
                )
                expected = baseline[delta]
                assert result.density == pytest.approx(
                    expected.density, abs=TOLERANCE
                ), (kernel, delta)
                assert result.interval == expected.interval, (kernel, delta)
                assert result.flow_value == pytest.approx(
                    expected.flow_value, abs=TOLERANCE
                ), (kernel, delta)

    def test_kernel_runs_are_stamped_and_tallied(self, burst_network):
        for kernel in ("persistent", "vectorized", "push_relabel"):
            result = bfq_star(
                burst_network, BurstingFlowQuery("s", "t", 3), kernel=kernel
            )
            tally = result.stats.kernel_runs
            assert tally, kernel
            assert set(tally) == {kernel}
            assert result.stats.kernel_seconds.keys() == tally.keys()

    def test_adaptive_only_executes_arena_kernels(self, burst_network):
        result = bfq_star(
            burst_network, BurstingFlowQuery("s", "t", 5), kernel="adaptive"
        )
        assert result.stats.kernel_runs
        assert set(result.stats.kernel_runs) <= ARENA_KERNELS


class TestSelector:
    def test_small_arenas_stay_scalar(self):
        selector = KernelSelector()
        assert selector.choose(arcs=100, nodes=20) == "persistent"

    def test_learning_converges_to_cheapest(self):
        selector = KernelSelector()
        arcs, nodes = 50_000, 1_000
        # Feed consistent timings: vectorized is 4x cheaper at this size.
        for _ in range(6):
            for kernel in ARENA_KERNELS:
                seconds = 0.01 if kernel == "vectorized" else 0.04
                selector.record(kernel, arcs=arcs, seconds=seconds)
        choices = {selector.choose(arcs=arcs, nodes=nodes) for _ in range(8)}
        assert choices == {"vectorized"}

    def test_snapshot_counts_choices(self):
        selector = KernelSelector()
        selector.choose(arcs=100, nodes=20)
        assert selector.snapshot() == {"persistent": 1}
