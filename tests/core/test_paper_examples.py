"""Reproductions of the paper's worked examples (Examples 2, 5-8).

These tests pin the implementation to the concrete numbers the paper walks
through, wherever the running example is fully specified in the text.
"""

import pytest

from repro import BurstingFlowQuery, bfq, bfq_plus, bfq_star
from repro.core import IncrementalTransformedNetwork, enumerate_candidates
from repro.flownet import dinic
from repro.temporal import TemporalFlowNetwork


class TestExample2Figure2:
    """Example 2: flows, residual networks and Maxflow on Figure 2."""

    def test_maxflow_is_seven(self, figure2_network):
        s, t = figure2_network.index_of("s"), figure2_network.index_of("t")
        assert dinic(figure2_network, s, t).value == pytest.approx(7.0)

    def test_dinic_finds_blocking_flow_in_one_phase(self, figure2_network):
        """Example 2 (Dinic walk-through): the first level graph already
        carries the full Maxflow via three augmenting paths; the second
        BFS finds no more augmenting paths."""
        s, t = figure2_network.index_of("s"), figure2_network.index_of("t")
        run = dinic(figure2_network, s, t, track_paths=True)
        assert run.phases == 1
        assert run.augmenting_paths == 3
        assert sum(len(p) for p in run.paths) == 3 * 5  # all length-4 paths

    def test_augmenting_path_on_residual(self, figure2_network):
        """Figure 2(b)-(d): after routing the suboptimal flow f (|f| = 5),
        exactly one augmenting path of value 2 remains."""
        net = figure2_network
        refs = {}
        for tail, arc in net.iter_edges():
            refs[(net.label_of(tail), net.label_of(arc.head))] = (tail, arc)
        # f: 3 units s->v1->v3->v5->t, 2 units s->v2->v3->v4->t.
        for u, v, amount in [
            ("s", "v1", 3.0), ("v1", "v3", 3.0), ("v3", "v5", 3.0), ("v5", "t", 3.0),
            ("s", "v2", 2.0), ("v2", "v3", 2.0), ("v3", "v4", 2.0), ("v4", "t", 2.0),
        ]:
            tail, arc = refs[(u, v)]
            arc.cap -= amount
            net.arcs_of(arc.head)[arc.rev].cap += amount
        s, t = net.index_of("s"), net.index_of("t")
        run = dinic(net, s, t, track_paths=True)
        assert run.value == pytest.approx(2.0)
        assert run.augmenting_paths == 1
        # The paper's path: s -> v2 -> v3 -> v5 -> t.
        labels = [net.label_of(i) for i in run.paths[0]]
        assert labels == ["s", "v2", "v3", "v5", "t"]


@pytest.fixture
def example_temporal() -> TemporalFlowNetwork:
    """A fully specified analogue of the paper's Figure 3 running example.

    T = [1..6]; engineered so that (like the paper's network):
    * MF[1, 3] = 3, MF[1, 4] = 5 and the 2-BFlow has density 5/3 on [1, 4];
    * extending [1, 3] -> [1, 4] adds an augmenting path of value 2
      (Example 6's insertion case);
    * [3, 4] is a core interval with MF[3, 4] = 2;
    * the sink's capacity during (4, 6] is tiny (1.0), so Observation 2
      prunes MF[1, 6] exactly as Example 6 shows.
    """
    return TemporalFlowNetwork.from_tuples(
        [
            ("s", "v1", 1, 3.0),
            ("v1", "t", 3, 3.0),
            ("s", "v2", 3, 2.0),
            ("v2", "v3", 4, 2.0),
            ("v3", "t", 4, 2.0),
            ("s", "v4", 5, 1.0),
            ("v4", "t", 6, 1.0),
        ]
    )


class TestExample5Bfq:
    def test_window_values(self, example_temporal):
        state = IncrementalTransformedNetwork(example_temporal, "s", "t", 1, 3)
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(3.0)
        state.extend_end(4)
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(5.0)

    def test_two_bflow_density(self, example_temporal):
        for algorithm in (bfq, bfq_plus, bfq_star):
            result = algorithm(example_temporal, BurstingFlowQuery("s", "t", 2))
            assert result.density == pytest.approx(5.0 / 3.0)
            assert result.interval == (1, 4)

    def test_candidate_enumeration_covers_core_interval(self, example_temporal):
        plan = enumerate_candidates(example_temporal, "s", "t", 2)
        assert (1, 4) in set(plan.intervals())


class TestExample6InsertionCase:
    def test_incremental_gain_is_two(self, example_temporal):
        state = IncrementalTransformedNetwork(example_temporal, "s", "t", 1, 3)
        first = state.run_maxflow()
        assert first.value == pytest.approx(3.0)
        state.extend_end(4)
        second = state.run_maxflow()
        assert second.value == pytest.approx(2.0)  # only the new path

    def test_observation2_prunes_the_long_window(self, example_temporal):
        """|MF[1,4]| + sink capacity in (4,6] = 5 + 1 < (5/3) * (6-1)."""
        result = bfq_plus(example_temporal, BurstingFlowQuery("s", "t", 2))
        pruned = [s for s in result.stats.samples if s.mode == "pruned"]
        assert any(s.interval == (1, 6) for s in pruned)


class TestExample8DeletionCase:
    def test_withdrawal_from_shrinking_start(self, example_temporal):
        state = IncrementalTransformedNetwork(example_temporal, "s", "t", 1, 4)
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(5.0)
        withdrawn = state.advance_start(3)
        # The 3 units that left s at tau=1 (arriving at t by tau=3) vanish.
        assert withdrawn == pytest.approx(3.0)
        state.extend_end(5)
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(2.0)  # MF[3, 5] = 2

    def test_bfq_star_zigzag_matches(self, example_temporal):
        star = bfq_star(example_temporal, BurstingFlowQuery("s", "t", 2))
        base = bfq(example_temporal, BurstingFlowQuery("s", "t", 2))
        assert star.density == pytest.approx(base.density)
        assert star.stats.incremental_deletions >= 1
