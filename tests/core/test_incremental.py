"""Tests for the incremental transformed network (Lemmas 3-5)."""

import pytest

from repro.core import IncrementalTransformedNetwork, build_transformed_network
from repro.exceptions import InvalidIntervalError
from repro.flownet import dinic
from repro.temporal import TemporalFlowNetwork


@pytest.fixture
def network() -> TemporalFlowNetwork:
    """Flow arrives in three waves: tau 1-2, tau 3-4, tau 5-6."""
    return TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 1, 3.0),
            ("a", "t", 2, 3.0),
            ("s", "a", 3, 2.0),
            ("a", "t", 4, 2.0),
            ("s", "b", 5, 4.0),
            ("b", "t", 6, 4.0),
        ]
    )


def scratch_value(network, tau_s, tau_e) -> float:
    transformed = build_transformed_network(network, "s", "t", tau_s, tau_e)
    return dinic(
        transformed.flow_network,
        transformed.source_index,
        transformed.sink_index,
    ).value


class TestInsertionCase:
    def test_extend_matches_scratch(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 2)
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(scratch_value(network, 1, 2))
        for tau_e in (4, 6):
            state.extend_end(tau_e)
            state.run_maxflow()
            assert state.flow_value() == pytest.approx(
                scratch_value(network, 1, tau_e)
            ), f"window [1, {tau_e}]"

    def test_extension_only_adds_missing_paths(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 2)
        first = state.run_maxflow()
        assert first.value == pytest.approx(3.0)
        state.extend_end(4)
        second = state.run_maxflow()
        # Only the new 2 units are found; the old 3 are reused.
        assert second.value == pytest.approx(2.0)
        assert state.flow_value() == pytest.approx(5.0)

    def test_backwards_extension_rejected(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 4)
        with pytest.raises(InvalidIntervalError):
            state.extend_end(3)
        with pytest.raises(InvalidIntervalError):
            state.extend_end(4)

    def test_extension_without_maxflow_keeps_residual_valid(self, network):
        # Extend twice, solve once at the end: same value as scratch.
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 2)
        state.extend_end(4)
        state.extend_end(6)
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(scratch_value(network, 1, 6))


class TestDeletionCase:
    def test_advance_matches_scratch(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 6)
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(9.0)
        withdrawn = state.advance_start(3)
        assert withdrawn == pytest.approx(3.0)  # the first wave disappears
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(scratch_value(network, 3, 6))

    def test_advance_then_extend(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 4)
        state.run_maxflow()
        state.advance_start(3)
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(scratch_value(network, 3, 4))
        state.extend_end(6)
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(scratch_value(network, 3, 6))

    def test_advance_bounds_checked(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 4)
        with pytest.raises(InvalidIntervalError):
            state.advance_start(1)  # not strictly after tau_s
        with pytest.raises(InvalidIntervalError):
            state.advance_start(4)  # not strictly before tau_e

    def test_advance_without_prior_maxflow(self, network):
        # Withdrawing from a zero flow is a no-op but must stay consistent.
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 6)
        withdrawn = state.advance_start(3)
        assert withdrawn == 0.0
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(scratch_value(network, 3, 6))

    def test_repeated_advances(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 6)
        state.run_maxflow()
        state.advance_start(3)
        state.run_maxflow()
        state.advance_start(5)
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(scratch_value(network, 5, 6))

    def test_flow_arriving_at_sink_before_boundary_is_withdrawn(self):
        # All flow lands on t by tau=2; advancing to 3 must withdraw it
        # (the Example 8 pattern: the crossing happens at <t, tau>).
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "a", 1, 3.0),
                ("a", "t", 2, 3.0),
                ("s", "t", 4, 1.0),
            ]
        )
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 4)
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(4.0)
        withdrawn = state.advance_start(3)
        assert withdrawn == pytest.approx(3.0)
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(1.0)


class TestClone:
    def test_clone_is_independent(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 4)
        state.run_maxflow()
        snapshot = state.clone()
        state.extend_end(6)
        state.run_maxflow()
        # The snapshot still answers for [1, 4].
        snapshot.run_maxflow()
        assert snapshot.flow_value() == pytest.approx(scratch_value(network, 1, 4))
        assert state.flow_value() == pytest.approx(scratch_value(network, 1, 6))

    def test_clone_after_advance_is_compacted(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 6)
        state.run_maxflow()
        state.advance_start(5)
        before = state.network.num_nodes
        snapshot = state.clone()
        assert snapshot.network.num_nodes < before  # retired prefix dropped
        snapshot.run_maxflow()
        assert snapshot.flow_value() == pytest.approx(scratch_value(network, 5, 6))

    def test_cloned_state_supports_full_lifecycle(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 4)
        state.run_maxflow()
        snapshot = state.clone()
        snapshot.extend_end(6)
        snapshot.run_maxflow()
        snapshot.advance_start(5)
        snapshot.run_maxflow()
        assert snapshot.flow_value() == pytest.approx(scratch_value(network, 5, 6))


class TestAsTransformed:
    def test_view_fields(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 4)
        view = state.as_transformed()
        assert view.tau_s == 1 and view.tau_e == 4
        assert view.source_index == state.source_index
        assert view.flow_value() == state.flow_value()
