"""Behavioural tests for BFQ, BFQ+ and BFQ* on hand-checked networks."""

import pytest

from repro import BurstingFlowQuery, bfq, bfq_plus, bfq_star, find_bursting_flow
from repro.temporal import TemporalFlowNetwork

ALL = [bfq, bfq_plus, bfq_star]
IDS = ["bfq", "bfq+", "bfq*"]


@pytest.mark.parametrize("algorithm", ALL, ids=IDS)
class TestKnownAnswers:
    def test_burst_dominates(self, algorithm, burst_network):
        result = algorithm(burst_network, BurstingFlowQuery("s", "t", 2))
        assert result.found
        assert result.density == pytest.approx(300.0)  # 900 over [10, 13]
        lo, hi = result.interval
        assert 10 <= lo and hi <= 13

    def test_delta_filters_short_bursts(self, algorithm, burst_network):
        # With delta=10 the [10, 13] burst must be averaged over >= 10
        # ticks: 900/10 = 90 is still the best.
        result = algorithm(burst_network, BurstingFlowQuery("s", "t", 10))
        assert result.density == pytest.approx(90.0)
        lo, hi = result.interval
        assert hi - lo == 10

    def test_chain(self, algorithm, chain_network):
        result = algorithm(chain_network, BurstingFlowQuery("s", "t", 1))
        assert result.density == pytest.approx(5.0 / 2.0)
        assert result.interval == (1, 3)
        assert result.flow_value == pytest.approx(5.0)

    def test_chain_delta_longer_than_horizon(self, algorithm, chain_network):
        result = algorithm(chain_network, BurstingFlowQuery("s", "t", 5))
        assert not result.found
        assert result.interval is None
        assert result.density == 0.0

    def test_unreachable_sink(self, algorithm):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 1, 1.0), ("b", "t", 2, 1.0)]
        )
        result = algorithm(network, BurstingFlowQuery("s", "t", 1))
        assert not result.found

    def test_time_inverted_path_no_flow(self, algorithm):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 5, 1.0), ("a", "t", 2, 1.0), ("s", "b", 1, 1.0), ("b", "t", 3, 1.0)]
        )
        result = algorithm(network, BurstingFlowQuery("s", "t", 1))
        # Only the s->b->t path is temporally valid.
        assert result.density == pytest.approx(1.0 / 2.0)

    def test_corner_case_window_found(self, algorithm):
        """A burst so late that tau_s + delta overshoots the horizon is
        caught by the clamped corner window (footnote 4)."""
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "x", 1, 1.0),  # early stamp: stretches the horizon
                ("x", "t", 2, 1.0),
                ("s", "a", 9, 50.0),
                ("a", "t", 10, 50.0),
            ]
        )
        result = algorithm(network, BurstingFlowQuery("s", "t", 5))
        # Best: the corner window [5, 10] carrying the 50-unit burst.
        assert result.density == pytest.approx(50.0 / 5.0)
        assert result.interval == (5, 10)

    def test_stats_populated(self, algorithm, burst_network):
        result = algorithm(burst_network, BurstingFlowQuery("s", "t", 2))
        stats = result.stats
        assert stats.candidates_enumerated > 0
        assert stats.maxflow_runs >= 1
        assert stats.candidates_enumerated == len(stats.samples)
        assert stats.augmenting_paths >= 1

    def test_interval_answer_is_reproducible(self, algorithm, burst_network):
        """The reported interval really achieves the reported density."""
        from repro.core import build_transformed_network
        from repro.flownet import dinic

        result = algorithm(burst_network, BurstingFlowQuery("s", "t", 2))
        lo, hi = result.interval
        transformed = build_transformed_network(burst_network, "s", "t", lo, hi)
        value = dinic(
            transformed.flow_network,
            transformed.source_index,
            transformed.sink_index,
        ).value
        assert value / (hi - lo) == pytest.approx(result.density)


class TestIncrementalInstrumentation:
    def test_bfq_plus_reports_insertions(self, burst_network):
        result = bfq_plus(burst_network, BurstingFlowQuery("s", "t", 2))
        assert result.stats.incremental_insertions > 0
        assert result.stats.incremental_deletions == 0

    def test_bfq_star_reports_deletions(self, burst_network):
        result = bfq_star(burst_network, BurstingFlowQuery("s", "t", 2))
        assert result.stats.incremental_deletions > 0

    def test_pruning_reduces_maxflow_runs(self, burst_network):
        query = BurstingFlowQuery("s", "t", 2)
        pruned = bfq_plus(burst_network, query, use_pruning=True)
        unpruned = bfq_plus(burst_network, query, use_pruning=False)
        assert pruned.density == pytest.approx(unpruned.density)
        assert pruned.stats.maxflow_runs <= unpruned.stats.maxflow_runs
        assert unpruned.stats.pruned_intervals == 0

    def test_bfq_evaluates_every_candidate_with_dinic(self, burst_network):
        result = bfq(burst_network, BurstingFlowQuery("s", "t", 2))
        assert result.stats.maxflow_runs == result.stats.candidates_enumerated
        assert all(s.mode == "dinic" for s in result.stats.samples)

    def test_solver_parameter_for_bfq(self, burst_network):
        result = bfq(
            burst_network, BurstingFlowQuery("s", "t", 2), solver="edmonds-karp"
        )
        assert result.density == pytest.approx(300.0)
