"""Property-based equivalence tests — the heart of the reproduction.

On random temporal flow networks, hypothesis checks:

* **Lemma 2 / algorithm agreement:** BFQ, BFQ+ and BFQ* (with and without
  pruning) all report the same optimal density as the naive ``O(|T|^2)``
  enumeration.
* **Lemma 1:** the Maxflow of a transformed window converts back into a
  *valid* temporal flow (capacity, conservation, time constraint) with the
  same value, and no temporal flow can exceed it (via the naive oracle).
* **Monotonicity:** widening a window never decreases its Maxflow; growing
  delta never increases the optimal density.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BurstingFlowQuery, bfq, bfq_plus, bfq_star
from repro.baselines import naive_bfq
from repro.core import build_transformed_network
from repro.core.transform import extract_temporal_flow
from repro.flownet import dinic
from repro.temporal import TemporalEdge, TemporalFlowNetwork, validate_temporal_flow

TOLERANCE = 1e-7


@st.composite
def temporal_networks(draw) -> TemporalFlowNetwork:
    num_nodes = draw(st.integers(min_value=3, max_value=7))
    horizon = draw(st.integers(min_value=2, max_value=9))
    num_edges = draw(st.integers(min_value=3, max_value=18))
    network = TemporalFlowNetwork()
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        v = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        if u == v:
            continue
        tau = draw(st.integers(min_value=1, max_value=horizon))
        capacity = float(draw(st.integers(min_value=1, max_value=9)))
        network.add_edge(TemporalEdge(f"n{u}", f"n{v}", tau, capacity))
    # Guarantee both query endpoints exist.
    network.add_node("n0")
    network.add_node("n1")
    if not network.num_edges:
        network.add_edge(TemporalEdge("n0", "n1", 1, 1.0))
    return network


def queries(network: TemporalFlowNetwork, draw_delta: int) -> BurstingFlowQuery:
    horizon = network.t_max - network.t_min if network.num_edges else 1
    delta = max(1, min(draw_delta, max(1, horizon)))
    return BurstingFlowQuery("n0", "n1", delta)


@settings(max_examples=50, deadline=None)
@given(temporal_networks(), st.integers(min_value=1, max_value=5))
def test_all_solutions_match_naive_oracle(network, raw_delta):
    query = queries(network, raw_delta)
    oracle = naive_bfq(network, query)
    for algorithm in (bfq, bfq_plus, bfq_star):
        result = algorithm(network, query)
        assert abs(result.density - oracle.density) < TOLERANCE, (
            f"{algorithm.__name__} disagrees with the naive oracle"
        )


@settings(max_examples=40, deadline=None)
@given(temporal_networks(), st.integers(min_value=1, max_value=5))
def test_pruning_never_changes_the_answer(network, raw_delta):
    query = queries(network, raw_delta)
    with_pruning = bfq_plus(network, query, use_pruning=True)
    without = bfq_plus(network, query, use_pruning=False)
    assert abs(with_pruning.density - without.density) < TOLERANCE
    star_with = bfq_star(network, query, use_pruning=True)
    star_without = bfq_star(network, query, use_pruning=False)
    assert abs(star_with.density - star_without.density) < TOLERANCE
    assert abs(with_pruning.density - star_with.density) < TOLERANCE


@settings(max_examples=50, deadline=None)
@given(temporal_networks())
def test_lemma1_transformed_maxflow_is_a_valid_temporal_flow(network):
    tau_s, tau_e = network.t_min, network.t_max
    if tau_e <= tau_s:
        return
    transformed = build_transformed_network(network, "n0", "n1", tau_s, tau_e)
    value = dinic(
        transformed.flow_network,
        transformed.source_index,
        transformed.sink_index,
    ).value
    temporal_flow = extract_temporal_flow(transformed)
    validate_temporal_flow(network, temporal_flow)
    assert abs(temporal_flow.flow_value() - value) < 1e-6


@settings(max_examples=40, deadline=None)
@given(temporal_networks(), st.integers(min_value=1, max_value=4))
def test_window_monotonicity(network, shrink):
    tau_s, tau_e = network.t_min, network.t_max
    if tau_e - tau_s < shrink + 1:
        return

    def window_value(lo, hi):
        transformed = build_transformed_network(network, "n0", "n1", lo, hi)
        return dinic(
            transformed.flow_network,
            transformed.source_index,
            transformed.sink_index,
        ).value

    wide = window_value(tau_s, tau_e)
    narrow = window_value(tau_s + shrink, tau_e)
    assert narrow <= wide + TOLERANCE
    narrow_right = window_value(tau_s, tau_e - shrink)
    assert narrow_right <= wide + TOLERANCE


@settings(max_examples=30, deadline=None)
@given(temporal_networks())
def test_density_antitone_in_delta(network):
    horizon = network.t_max - network.t_min
    if horizon < 2:
        return
    query_small = BurstingFlowQuery("n0", "n1", 1)
    query_large = BurstingFlowQuery("n0", "n1", 2)
    small = bfq_star(network, query_small)
    large = bfq_star(network, query_large)
    assert large.density <= small.density + TOLERANCE


@settings(max_examples=30, deadline=None)
@given(temporal_networks(), st.integers(min_value=1, max_value=4))
def test_reported_interval_satisfies_constraints(network, raw_delta):
    query = queries(network, raw_delta)
    result = bfq_star(network, query)
    if result.interval is None:
        assert result.density == 0.0
        return
    lo, hi = result.interval
    assert hi - lo >= query.delta
    assert lo >= network.t_min - query.delta  # corner clamp lower bound
    assert hi <= network.t_max
    assert result.density == pytest.approx(result.flow_value / (hi - lo))
