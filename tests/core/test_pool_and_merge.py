"""Regressions for the batch layer's shared pool and stats merging.

Two silent-drop bugs are pinned here:

* the old ``answer_many`` let sibling futures run to completion after one
  query failed and re-raised the bare exception with no hint of *which*
  query died — :func:`run_pool` must cancel the siblings and raise a
  :class:`BatchQueryError` carrying the index and the item;
* the old ``bfq_parallel`` chunk merge hand-copied ``QueryStats`` fields,
  so a counter added later was silently dropped from parallel results —
  :func:`merge_query_stats` must be driven by ``dataclasses.fields``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing

import pytest

from repro.core import BurstingFlowQuery, bfq_parallel, find_bursting_flow
from repro.core._pool import run_pool
from repro.core.bfq import bfq
from repro.core.query import IntervalSample, QueryStats, merge_query_stats
from repro.exceptions import BatchQueryError


def _square(payload: int) -> int:
    return payload * payload


def _explode_on_three(payload: int) -> int:
    if payload == 3:
        raise ValueError("payload three is cursed")
    return payload


def _noop_initializer() -> None:
    pass


def fork_context():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    return multiprocessing.get_context("fork")


class TestRunPool:
    def test_results_align_with_input_order(self):
        context = fork_context()
        results = run_pool(
            [5, 1, 4, 2],
            _square,
            max_workers=2,
            context=context,
            initializer=_noop_initializer,
            initargs=(),
        )
        assert results == [25, 1, 16, 4]

    def test_failure_names_the_item(self):
        context = fork_context()
        with pytest.raises(BatchQueryError) as info:
            run_pool(
                [0, 1, 2, 3, 4],
                _explode_on_three,
                max_workers=2,
                context=context,
                initializer=_noop_initializer,
                initargs=(),
                describe=lambda index: f"payload #{index}",
            )
        assert info.value.index == 3
        assert info.value.item == "payload #3"
        assert "payload #3" in str(info.value)
        assert "ValueError" in str(info.value)
        assert "cursed" in str(info.value)

    def test_default_describe_is_the_index(self):
        context = fork_context()
        with pytest.raises(BatchQueryError) as info:
            run_pool(
                [3],
                _explode_on_three,
                max_workers=1,
                context=context,
                initializer=_noop_initializer,
                initargs=(),
            )
        assert info.value.index == 0
        assert info.value.item == 0


class TestAnswerManyFailFast:
    def test_batch_error_carries_index_and_query_repr(self, burst_network):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        from repro.core import answer_many
        from repro.core import engine as engine_module

        def poisoned(network, query, **kwargs):
            if query.delta == 5:
                raise ValueError("solver rejected this query")
            return find_bursting_flow(network, query)

        queries = [
            BurstingFlowQuery("s", "t", 2),
            BurstingFlowQuery("s", "t", 5),
            BurstingFlowQuery("s", "t", 10),
        ]
        engine_module.ALGORITHMS["poisoned"] = poisoned
        try:
            with pytest.raises(BatchQueryError) as info:
                answer_many(
                    burst_network,
                    queries,
                    processes=2,
                    algorithm="poisoned",
                    mp_context="fork",
                )
        finally:
            del engine_module.ALGORITHMS["poisoned"]
        assert info.value.index == 1
        assert info.value.item == queries[1]
        assert repr(queries[1]) in str(info.value)


def sample(tau_s: int, tau_e: int, value: float) -> IntervalSample:
    return IntervalSample((tau_s, tau_e), 8, "dinic", 0.25, 0.5, value)


class TestMergeQueryStats:
    def test_every_declared_field_is_merged(self):
        # Build parts whose field values are all distinct so a dropped
        # field shows up as a wrong sum, whatever its position.  Dict
        # fields (the per-kernel tallies) merge key-wise, so they get a
        # one-key dict carrying the same distinct value.
        parts = []
        for offset in (0, 100):
            stats = QueryStats()
            for index, spec in enumerate(dataclasses.fields(QueryStats)):
                if spec.name == "samples":
                    continue
                value = offset + 2 * index + 1
                if spec.type == "float":
                    value = float(value)
                elif spec.type.startswith("dict"):
                    value = {"k": value}
                setattr(stats, spec.name, value)
            parts.append(stats)
        merged = merge_query_stats(parts)
        for spec in dataclasses.fields(QueryStats):
            if spec.name == "samples":
                continue
            values = [getattr(part, spec.name) for part in parts]
            if isinstance(values[0], dict):
                expected = {"k": sum(v["k"] for v in values)}
            else:
                expected = sum(values)
            assert getattr(merged, spec.name) == expected, spec.name

    def test_kernel_tallies_merge_key_wise(self):
        first = QueryStats()
        first.note_kernel("persistent", 0.25)
        first.note_kernel("vectorized", 0.5)
        second = QueryStats()
        second.note_kernel("vectorized", 0.125)
        merged = merge_query_stats([first, second])
        assert merged.kernel_runs == {"persistent": 1, "vectorized": 2}
        assert merged.kernel_seconds == {
            "persistent": 0.25,
            "vectorized": 0.625,
        }

    def test_samples_concatenate_in_chunk_order(self):
        first = QueryStats(samples=[sample(1, 3, 4.0), sample(2, 4, 5.0)])
        second = QueryStats(samples=[sample(3, 5, 6.0)])
        merged = merge_query_stats([first, second])
        assert merged.samples == first.samples + second.samples

    def test_sample_timings_are_not_double_counted(self):
        # record_sample already folded each sample's timings into the
        # chunk's seconds; the merge must sum the *fields*, not replay the
        # samples (which would count every second twice).
        chunk = QueryStats()
        chunk.record_sample(sample(1, 3, 4.0))
        chunk.record_sample(sample(2, 4, 5.0))
        merged = merge_query_stats([chunk])
        assert merged.transform_seconds == pytest.approx(chunk.transform_seconds)
        assert merged.maxflow_seconds == pytest.approx(chunk.maxflow_seconds)

    def test_merge_of_nothing_is_zero(self):
        merged = merge_query_stats([])
        assert merged == QueryStats()


class TestBfqParallelStats:
    """Parallel BFQ must reproduce sequential stats, not just the answer."""

    def test_parallel_stats_match_sequential(self, burst_network):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        query = BurstingFlowQuery("s", "t", 3)
        sequential = bfq(burst_network, query)
        parallel = bfq_parallel(
            burst_network, query, processes=2, mp_context="fork"
        )
        assert parallel.density == sequential.density
        assert parallel.interval == sequential.interval
        assert parallel.flow_value == sequential.flow_value
        # Every counter field agrees (timings are wall-clock, so only the
        # integer-valued counters are comparable across runs).
        for spec in dataclasses.fields(QueryStats):
            if spec.name == "samples" or spec.type == "float":
                continue
            assert getattr(parallel.stats, spec.name) == getattr(
                sequential.stats, spec.name
            ), spec.name
        # Samples line up in plan order, modulo their timing fields.
        assert len(parallel.stats.samples) == len(sequential.stats.samples)
        for ours, theirs in zip(parallel.stats.samples, sequential.stats.samples):
            assert ours.interval == theirs.interval
            assert ours.network_size == theirs.network_size
            assert ours.mode == theirs.mode
            assert ours.flow_value == theirs.flow_value
