"""Tests for labeled delta-BFlow queries (future-work extension i)."""

import pytest

from repro import BurstingFlowQuery, find_bursting_flow
from repro.exceptions import InvalidQueryError
from repro.extensions import LabeledTemporalFlowNetwork, find_labeled_bursting_flow


@pytest.fixture
def labeled() -> LabeledTemporalFlowNetwork:
    """Two parallel channels s->m->t: a 'wire' channel and a 'cash' one."""
    net = LabeledTemporalFlowNetwork()
    net.add_edge("s", "m", 1, 100.0, labels=["wire"])
    net.add_edge("m", "t", 2, 100.0, labels=["wire"])
    net.add_edge("s", "m", 3, 40.0, labels=["cash"])
    net.add_edge("m", "t", 4, 40.0, labels=["cash"])
    net.add_edge("s", "t", 5, 7.0)  # unlabeled direct transfer
    return net


class TestLabeledNetwork:
    def test_labels_merge_on_duplicate_edges(self):
        net = LabeledTemporalFlowNetwork()
        net.add_edge("a", "b", 1, 5.0, labels=["x"])
        net.add_edge("a", "b", 1, 3.0, labels=["y"])
        assert net.labels_of("a", "b", 1) == {"x", "y"}
        assert net.network.capacity("a", "b", 1) == 8.0

    def test_unlabeled_edges_have_empty_set(self, labeled):
        assert labeled.labels_of("s", "t", 5) == frozenset()

    def test_project_keeps_endpoints(self, labeled):
        projected = labeled.project(lambda labels: "wire" in labels)
        assert projected.num_edges == 2
        assert projected.has_node("t")  # still present even if isolated


class TestLabeledQueries:
    def test_any_mode_restricts_to_channel(self, labeled):
        query = BurstingFlowQuery("s", "t", 1)
        wire = find_labeled_bursting_flow(
            labeled, query, required_labels=["wire"], mode="any"
        )
        assert wire.density == pytest.approx(100.0)  # 100 over [1, 2]
        cash = find_labeled_bursting_flow(
            labeled, query, required_labels=["cash"], mode="any"
        )
        assert cash.density == pytest.approx(40.0)

    def test_any_mode_with_both_labels(self, labeled):
        query = BurstingFlowQuery("s", "t", 1)
        both = find_labeled_bursting_flow(
            labeled, query, required_labels=["wire", "cash"], mode="any"
        )
        unrestricted = find_bursting_flow(labeled.network, query)
        # Both channels admitted, only the unlabeled edge excluded.
        assert both.density <= unrestricted.density + 1e-9
        assert both.density == pytest.approx(100.0)

    def test_all_mode(self):
        net = LabeledTemporalFlowNetwork()
        net.add_edge("s", "t", 1, 5.0, labels=["a", "b"])
        net.add_edge("s", "t", 3, 50.0, labels=["a"])
        query = BurstingFlowQuery("s", "t", 1)
        result = find_labeled_bursting_flow(
            net, query, required_labels=["a", "b"], mode="all"
        )
        # Only the doubly labeled tau=1 edge qualifies; best window is the
        # corner [t_max - 1, t_max]... which excludes it -> check density.
        assert result.flow_value <= 5.0 + 1e-9

    def test_subset_mode_admits_unlabeled(self, labeled):
        query = BurstingFlowQuery("s", "t", 1)
        result = find_labeled_bursting_flow(
            labeled, query, required_labels=["cash"], mode="subset"
        )
        # cash edges and the unlabeled direct edge qualify; wire excluded.
        assert result.density == pytest.approx(40.0)

    def test_empty_required_any_finds_nothing(self, labeled):
        result = find_labeled_bursting_flow(
            labeled, BurstingFlowQuery("s", "t", 1), required_labels=[]
        )
        assert not result.found

    def test_empty_required_all_means_unrestricted(self, labeled):
        result = find_labeled_bursting_flow(
            labeled, BurstingFlowQuery("s", "t", 1),
            required_labels=[], mode="all",
        )
        unrestricted = find_bursting_flow(
            labeled.network, BurstingFlowQuery("s", "t", 1)
        )
        assert result.density == pytest.approx(unrestricted.density)

    def test_unknown_mode_rejected(self, labeled):
        with pytest.raises(InvalidQueryError, match="label mode"):
            find_labeled_bursting_flow(
                labeled, BurstingFlowQuery("s", "t", 1),
                required_labels=["x"], mode="exactly",
            )

    def test_label_mismatch_yields_empty(self, labeled):
        result = find_labeled_bursting_flow(
            labeled, BurstingFlowQuery("s", "t", 1),
            required_labels=["crypto"],
        )
        assert not result.found
