"""Tests for the network transformation (Section 4.1, Lemma 1)."""

import math

import pytest

from repro.core import build_transformed_network
from repro.core.transform import reachable_edges
from repro.exceptions import InvalidIntervalError
from repro.flownet import EdgeKind, dinic
from repro.temporal import TemporalFlowNetwork


@pytest.fixture
def simple() -> TemporalFlowNetwork:
    return TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 1, 3.0),
            ("a", "t", 2, 2.0),
            ("a", "t", 4, 5.0),
            ("s", "t", 3, 1.0),
        ]
    )


def maxflow_of(transformed) -> float:
    return dinic(
        transformed.flow_network,
        transformed.source_index,
        transformed.sink_index,
    ).value


class TestStructure:
    def test_source_and_sink_boundary_nodes_exist(self, simple):
        transformed = build_transformed_network(simple, "s", "t", 1, 4)
        fn = transformed.flow_network
        assert fn.has_node(("s", 1))
        assert fn.has_node(("t", 4))
        assert transformed.source_index == fn.index_of(("s", 1))
        assert transformed.sink_index == fn.index_of(("t", 4))

    def test_capacity_edges_match_temporal_edges(self, simple):
        transformed = build_transformed_network(simple, "s", "t", 1, 4)
        fn = transformed.flow_network
        capacity_edges = {
            (fn.label_of(tail), fn.label_of(arc.head)): arc.cap
            for tail, arc in fn.iter_edges()
            if arc.kind is EdgeKind.CAPACITY
        }
        assert capacity_edges[(("s", 1), ("a", 1))] == 3.0
        assert capacity_edges[(("a", 2), ("t", 2))] == 2.0
        assert capacity_edges[(("s", 3), ("t", 3))] == 1.0

    def test_hold_edges_are_infinite_and_time_ordered(self, simple):
        transformed = build_transformed_network(simple, "s", "t", 1, 4)
        fn = transformed.flow_network
        for tail, arc in fn.iter_edges():
            if arc.kind is not EdgeKind.HOLD:
                continue
            (u, tau_a) = fn.label_of(tail)
            (v, tau_b) = fn.label_of(arc.head)
            assert u == v
            assert tau_a < tau_b
            assert math.isinf(arc.cap)

    def test_reversed_window_rejected(self, simple):
        with pytest.raises(InvalidIntervalError):
            build_transformed_network(simple, "s", "t", 4, 3)

    def test_instantaneous_window_allowed(self, simple):
        # MF[3, 3] captures the direct s->t transfer at tau=3.
        transformed = build_transformed_network(simple, "s", "t", 3, 3)
        assert maxflow_of(transformed) == pytest.approx(1.0)

    def test_unreachable_edges_pruned(self):
        # The b->c edge fires before anything can reach b.
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "a", 3, 1.0),
                ("b", "c", 1, 1.0),
                ("a", "b", 4, 1.0),
            ]
        )
        transformed = build_transformed_network(network, "s", "c", 1, 4)
        fn = transformed.flow_network
        assert not fn.has_node(("c", 1))  # pruned with the b->c edge

    def test_sink_out_edges_not_materialised(self):
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "t", 1, 1.0),
                ("t", "x", 2, 9.0),  # out of the sink: useless for s-t flow
            ]
        )
        transformed = build_transformed_network(network, "s", "t", 1, 2)
        assert not transformed.flow_network.has_node(("x", 2))


class TestMaxflowOnWindows:
    def test_full_window(self, simple):
        transformed = build_transformed_network(simple, "s", "t", 1, 4)
        assert maxflow_of(transformed) == pytest.approx(4.0)

    def test_narrow_window_limits_flow(self, simple):
        transformed = build_transformed_network(simple, "s", "t", 1, 2)
        assert maxflow_of(transformed) == pytest.approx(2.0)

    def test_window_excluding_source_edge(self, simple):
        transformed = build_transformed_network(simple, "s", "t", 2, 4)
        # s's only remaining emission is the tau=3 direct edge.
        assert maxflow_of(transformed) == pytest.approx(1.0)

    def test_storage_across_time(self):
        # 5 units leave s at tau=1 but can only drain 2+3 at tau 3 and 7.
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "a", 1, 5.0),
                ("a", "t", 3, 2.0),
                ("a", "t", 7, 3.0),
            ]
        )
        transformed = build_transformed_network(network, "s", "t", 1, 7)
        assert maxflow_of(transformed) == pytest.approx(5.0)

    def test_time_ordering_enforced(self):
        # a receives at tau=5 but the out edge fired at tau=2: no flow.
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "a", 5, 5.0),
                ("a", "t", 2, 5.0),
            ]
        )
        transformed = build_transformed_network(network, "s", "t", 1, 6)
        assert maxflow_of(transformed) == 0.0

    def test_flow_value_accessor(self, simple):
        transformed = build_transformed_network(simple, "s", "t", 1, 4)
        assert transformed.flow_value() == 0.0
        value = maxflow_of(transformed)
        assert transformed.flow_value() == pytest.approx(value)


class TestReachableEdges:
    def test_same_timestamp_cascade(self):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 2, 1.0), ("a", "b", 2, 1.0), ("b", "t", 2, 1.0)]
        )
        included = reachable_edges(network, "s", 1, 3)
        assert len(included) == 3

    def test_arrival_labels_extended_in_place(self):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 1, 1.0), ("a", "b", 5, 1.0)]
        )
        arrival: dict = {}
        reachable_edges(network, "s", 1, 3, arrival=arrival)
        assert arrival["a"] == 1.0
        assert "b" not in arrival
        reachable_edges(network, "s", 4, 6, arrival=arrival)
        assert arrival["b"] == 5.0

    def test_window_filter(self):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 1, 1.0), ("s", "b", 9, 1.0)]
        )
        included = reachable_edges(network, "s", 1, 5)
        assert [(u, v) for u, v, _, __ in included] == [("s", "a")]
