"""Tests for flow-trail decomposition and delta profiling."""

import pytest

from repro import BurstingFlowQuery
from repro.core.profile import density_profile, suggest_delta
from repro.core.trails import bursting_flow_trails, trails_for_interval
from repro.exceptions import InvalidQueryError
from repro.temporal import TemporalFlow, TemporalFlowNetwork, validate_temporal_flow


class TestTrails:
    def test_burst_trails(self, burst_network):
        report = bursting_flow_trails(burst_network, BurstingFlowQuery("s", "t", 2))
        assert report.found
        assert report.density == pytest.approx(300.0)
        assert sum(t.amount for t in report.trails) == pytest.approx(
            report.flow_value
        )
        # Two mule chains: via a (500) and via b (400), largest first.
        assert report.trails[0].amount == pytest.approx(500.0)
        assert report.trails[0].nodes == ("s", "a", "t")
        assert report.trails[1].nodes == ("s", "b", "t")

    def test_hops_are_time_respecting(self, burst_network):
        report = bursting_flow_trails(burst_network, BurstingFlowQuery("s", "t", 2))
        for trail in report.trails:
            taus = [hop.tau for hop in trail.hops]
            assert taus == sorted(taus)
            lo, hi = report.interval
            assert lo <= trail.start and trail.end <= hi

    def test_each_trail_is_a_valid_temporal_flow(self, burst_network):
        report = bursting_flow_trails(burst_network, BurstingFlowQuery("s", "t", 2))
        lo, hi = report.interval
        for trail in report.trails:
            flow = TemporalFlow("s", "t", lo, hi)
            for hop in trail.hops:
                flow.set_value(hop.u, hop.v, hop.tau, hop.amount)
            validate_temporal_flow(burst_network, flow)

    def test_describe(self, chain_network):
        report = bursting_flow_trails(chain_network, BurstingFlowQuery("s", "t", 1))
        line = report.trails[0].describe()
        assert "s -@1-> a -@2-> b -@3-> t" in line
        assert "(5 units)" in line

    def test_no_flow_no_trails(self):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 1, 1.0), ("b", "t", 2, 1.0)]
        )
        report = bursting_flow_trails(network, BurstingFlowQuery("s", "t", 1))
        assert not report.found
        assert report.trails == ()

    def test_trails_for_specific_interval(self, burst_network):
        trails = trails_for_interval(burst_network, "s", "t", 1, 28)
        assert sum(t.amount for t in trails) == pytest.approx(950.0)

    def test_reversed_interval_rejected(self, burst_network):
        with pytest.raises(InvalidQueryError):
            trails_for_interval(burst_network, "s", "t", 9, 3)

    def test_waiting_collapsed_into_hops(self):
        # Value waits at 'a' from tau=1 to tau=9: still a two-hop trail.
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 1, 2.0), ("a", "t", 9, 2.0)]
        )
        trails = trails_for_interval(network, "s", "t", 1, 9)
        assert len(trails) == 1
        assert [hop.tau for hop in trails[0].hops] == [1, 9]


class TestDensityProfile:
    def test_profile_is_antitone(self, burst_network):
        profile = density_profile(burst_network, "s", "t")
        densities = [p.density for p in profile]
        assert densities == sorted(densities, reverse=True)
        assert profile[0].delta == 1

    def test_explicit_deltas(self, burst_network):
        profile = density_profile(burst_network, "s", "t", deltas=[2, 10])
        assert [p.delta for p in profile] == [2, 10]
        assert profile[0].density == pytest.approx(300.0)
        assert profile[1].density == pytest.approx(90.0)

    def test_out_of_range_deltas_skipped(self, burst_network):
        profile = density_profile(burst_network, "s", "t", deltas=[0, 2, 999])
        assert [p.delta for p in profile] == [2]

    def test_unknown_node_rejected(self, burst_network):
        with pytest.raises(InvalidQueryError):
            density_profile(burst_network, "s", "ghost")


class TestSuggestDelta:
    def test_knee_keeps_most_of_the_burst(self, burst_network):
        profile = density_profile(
            burst_network, "s", "t", deltas=[1, 2, 3, 6, 12, 24]
        )
        knee = suggest_delta(profile, max_drop=0.5)
        assert knee is not None
        # The burst spans 3 ticks; at delta 6 the density halves-ish, at 12
        # it collapses. The knee must not run past the collapse.
        assert knee.delta <= 6

    def test_no_positive_density(self):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 1, 1.0), ("b", "t", 5, 1.0)]
        )
        profile = density_profile(network, "s", "t")
        assert suggest_delta(profile) is None

    def test_bad_max_drop(self, burst_network):
        profile = density_profile(burst_network, "s", "t", deltas=[1])
        with pytest.raises(InvalidQueryError):
            suggest_delta(profile, max_drop=0.0)
