"""Tests for the ``kernel=`` plumbing through the engine front door."""

import pytest

from repro import BurstingFlowQuery, find_bursting_flow
from repro.anomaly import BurstDetector
from repro.core.engine import KERNEL_ALGORITHMS
from repro.exceptions import InvalidQueryError


class TestEngineKernelPlumbing:
    def test_kernel_algorithms_are_the_incremental_pair(self):
        assert KERNEL_ALGORITHMS == {"bfq+", "bfq*"}

    @pytest.mark.parametrize("algorithm", sorted(KERNEL_ALGORITHMS))
    @pytest.mark.parametrize("kernel", ["persistent", "object"])
    def test_both_kernels_give_identical_answers(
        self, burst_network, algorithm, kernel
    ):
        baseline = find_bursting_flow(
            burst_network, BurstingFlowQuery("s", "t", 2), algorithm="bfq"
        )
        result = find_bursting_flow(
            burst_network,
            BurstingFlowQuery("s", "t", 2),
            algorithm=algorithm,
            kernel=kernel,
        )
        assert result.density == pytest.approx(baseline.density)
        assert result.interval == baseline.interval

    @pytest.mark.parametrize("algorithm", ["bfq", "naive"])
    def test_kernel_rejected_for_non_incremental_algorithms(
        self, burst_network, algorithm
    ):
        with pytest.raises(InvalidQueryError, match="kernel"):
            find_bursting_flow(
                burst_network,
                BurstingFlowQuery("s", "t", 2),
                algorithm=algorithm,
                kernel="persistent",
            )

    def test_unknown_kernel_propagates_from_solver(self, burst_network):
        with pytest.raises(Exception, match="kernel"):
            find_bursting_flow(
                burst_network,
                BurstingFlowQuery("s", "t", 2),
                algorithm="bfq*",
                kernel="cuda",
            )

    def test_kernel_none_is_the_default_path(self, burst_network):
        default = find_bursting_flow(
            burst_network, BurstingFlowQuery("s", "t", 2), algorithm="bfq*"
        )
        explicit = find_bursting_flow(
            burst_network,
            BurstingFlowQuery("s", "t", 2),
            algorithm="bfq*",
            kernel="persistent",
        )
        assert (default.density, default.interval) == (
            explicit.density, explicit.interval
        )


class TestDetectorKernelPlumbing:
    def test_scan_matches_across_kernels(self, burst_network):
        reports = {
            kernel: BurstDetector(burst_network, kernel=kernel).scan(
                ["s"], ["t"], [2, 5]
            )
            for kernel in ("persistent", "object")
        }
        persistent, object_ = reports["persistent"], reports["object"]
        assert len(persistent.findings) == len(object_.findings)
        for a, b in zip(persistent.findings, object_.findings):
            assert a.density == pytest.approx(b.density)
            assert a.interval == b.interval

    def test_default_kernel_is_none(self, burst_network):
        assert BurstDetector(burst_network).kernel is None
