"""BFQ parameterised over every registered Maxflow solver.

Section 3.1: "other augmenting path-based Maxflow algorithms can be also
applied in our solutions".  BFQ rebuilds each candidate window from
scratch, so *any* solver works there — including the non-resumable ones.
This suite pins that interchangeability.
"""

import pytest

from repro import BurstingFlowQuery, bfq
from repro.flownet import SOLVERS


@pytest.mark.parametrize("solver_name", sorted(SOLVERS))
class TestBfqAcrossSolvers:
    def test_burst_network(self, solver_name, burst_network):
        result = bfq(
            burst_network, BurstingFlowQuery("s", "t", 2), solver=solver_name
        )
        assert result.density == pytest.approx(300.0), solver_name
        assert result.interval == (10, 13)

    def test_chain_network(self, solver_name, chain_network):
        result = bfq(
            chain_network, BurstingFlowQuery("s", "t", 1), solver=solver_name
        )
        assert result.density == pytest.approx(2.5), solver_name

    def test_no_flow(self, solver_name):
        from repro.temporal import TemporalFlowNetwork

        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 5, 1.0), ("a", "t", 2, 1.0)]
        )
        result = bfq(
            network, BurstingFlowQuery("s", "t", 1), solver=solver_name
        )
        assert not result.found, solver_name


def test_random_networks_agree_across_solvers():
    from tests.conftest import random_temporal_network

    for seed in range(8):
        network = random_temporal_network(seed, max_nodes=6, max_time=8)
        if "n0" not in network or "n1" not in network:
            continue
        query = BurstingFlowQuery("n0", "n1", 1)
        densities = {
            name: bfq(network, query, solver=name).density
            for name in SOLVERS
        }
        spread = max(densities.values()) - min(densities.values())
        assert spread < 1e-6, (seed, densities)
