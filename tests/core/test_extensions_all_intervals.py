"""Tests for enumerating all bursting intervals."""

import pytest

from repro import BurstingFlowQuery, find_bursting_flow
from repro.extensions import find_all_bursting_intervals
from repro.temporal import TemporalFlowNetwork


class TestAllIntervals:
    def test_single_winner(self, burst_network):
        result = find_all_bursting_intervals(
            burst_network, BurstingFlowQuery("s", "t", 2)
        )
        assert result.found
        assert result.density == pytest.approx(300.0)
        assert (10, 13) in result.intervals

    def test_density_matches_single_answer(self, burst_network):
        query = BurstingFlowQuery("s", "t", 2)
        single = find_bursting_flow(burst_network, query)
        all_of_them = find_all_bursting_intervals(burst_network, query)
        assert all_of_them.density == pytest.approx(single.density)
        assert single.interval in all_of_them.intervals

    def test_sliding_windows_expand(self):
        """Footnote 13: a core interval shorter than delta is attained by
        every delta-window containing it."""
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "a", 5, 10.0),
                ("a", "t", 6, 10.0),
                ("s", "x", 1, 1.0),
                ("x", "t", 9, 1.0),
            ]
        )
        # Core interval [5, 6] has length 1 < delta=3: windows [3,6]..[5,8]
        # all carry the same 10 units.
        result = find_all_bursting_intervals(
            network, BurstingFlowQuery("s", "t", 3)
        )
        assert result.density == pytest.approx(10.0 / 3.0)
        for lo in (3, 4, 5):
            assert (lo, lo + 3) in result.intervals

    def test_every_reported_interval_attains_density(self):
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "a", 2, 4.0),
                ("a", "t", 3, 4.0),
                ("s", "b", 6, 4.0),
                ("b", "t", 7, 4.0),
            ]
        )
        query = BurstingFlowQuery("s", "t", 1)
        result = find_all_bursting_intervals(network, query)
        from repro.core import build_transformed_network
        from repro.flownet import dinic

        for lo, hi in result.intervals:
            transformed = build_transformed_network(network, "s", "t", lo, hi)
            value = dinic(
                transformed.flow_network,
                transformed.source_index,
                transformed.sink_index,
            ).value
            assert value / (hi - lo) == pytest.approx(result.density)

    def test_symmetric_bursts_both_reported(self):
        # Two identical bursts at different times: both intervals tie.
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "a", 2, 4.0),
                ("a", "t", 3, 4.0),
                ("s", "b", 6, 4.0),
                ("b", "t", 7, 4.0),
            ]
        )
        result = find_all_bursting_intervals(network, BurstingFlowQuery("s", "t", 1))
        assert (2, 3) in result.intervals
        assert (6, 7) in result.intervals

    def test_no_flow(self):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 1, 1.0), ("b", "t", 2, 1.0)]
        )
        result = find_all_bursting_intervals(network, BurstingFlowQuery("s", "t", 1))
        assert not result.found
        assert result.intervals == ()
