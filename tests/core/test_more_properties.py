"""Additional property-based suites across subsystems.

* streaming monitor ≡ offline answer on arbitrary time-ordered streams;
* multi-source/multi-sink group queries dominate every pairwise answer;
* the declarative operator algebra matches the live residual network;
* store ingest -> replay -> export round-trips exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BurstingFlowQuery, bfq, find_bursting_flow
from repro.core.operators import capacity_map_of, combine, residual_of, subtract
from repro.extensions import StreamingBurstMonitor, find_group_bursting_flow
from repro.store import GraphStore
from repro.temporal import TemporalEdge, TemporalFlowNetwork


@st.composite
def event_streams(draw):
    """Time-ordered (u, v, tau, capacity) streams on a small node set."""
    num_nodes = draw(st.integers(min_value=3, max_value=6))
    horizon = draw(st.integers(min_value=2, max_value=10))
    count = draw(st.integers(min_value=3, max_value=22))
    events = []
    for _ in range(count):
        u = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        v = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        if u == v:
            continue
        tau = draw(st.integers(min_value=1, max_value=horizon))
        capacity = float(draw(st.integers(min_value=1, max_value=9)))
        events.append((f"n{u}", f"n{v}", tau, capacity))
    events.sort(key=lambda e: e[2])
    return events


@settings(max_examples=40, deadline=None)
@given(event_streams(), st.integers(min_value=1, max_value=4))
def test_streaming_equals_offline(events, delta):
    monitor = StreamingBurstMonitor("n0", "n1", delta)
    monitor.observe_batch(events)
    record = monitor.finalize()
    network = TemporalFlowNetwork.from_tuples(events)
    network.add_node("n0")
    network.add_node("n1")
    if network.num_edges == 0:
        assert not record.found
        return
    offline = find_bursting_flow(network, source="n0", sink="n1", delta=delta)
    assert record.density == pytest.approx(offline.density)


@settings(max_examples=30, deadline=None)
@given(event_streams(), st.integers(min_value=1, max_value=3))
def test_group_query_dominates_pairwise(events, delta):
    network = TemporalFlowNetwork.from_tuples(events)
    for node in ("n0", "n1", "n2", "n3"):
        network.add_node(node)
    if network.num_edges == 0:
        return
    sources = ["n0", "n2"]
    sinks = ["n1", "n3"]
    group = find_group_bursting_flow(network, sources, sinks, delta)
    for s in sources:
        for t in sinks:
            if s == t:
                continue
            pair = find_bursting_flow(network, source=s, sink=t, delta=delta)
            assert group.density >= pair.density - 1e-7, (s, t)


@settings(max_examples=30, deadline=None)
@given(event_streams())
def test_operator_algebra_matches_live_residual(events):
    """residual_of(original, flow) == live residual after Dinic."""
    from repro.core.transform import build_transformed_network
    from repro.flownet import dinic, extract_flow

    network = TemporalFlowNetwork.from_tuples(events)
    network.add_node("n0")
    network.add_node("n1")
    if network.num_edges == 0:
        return
    transformed = build_transformed_network(
        network, "n0", "n1", network.t_min, network.t_max
    )
    fn = transformed.flow_network
    original = capacity_map_of(fn)
    dinic(fn, transformed.source_index, transformed.sink_index)
    live_residual = capacity_map_of(fn)
    flow = {
        (fn.label_of(u), fn.label_of(v)): value
        for (u, v), value in extract_flow(fn).items()
    }
    declarative = residual_of(original, flow)
    for edge, capacity in declarative.items():
        assert live_residual.get(edge, 0.0) == pytest.approx(capacity), edge
    for edge, capacity in live_residual.items():
        assert declarative.get(edge, 0.0) == pytest.approx(capacity), edge


@settings(max_examples=25, deadline=None)
@given(event_streams(), st.integers(min_value=1, max_value=3))
def test_store_round_trip_preserves_answers(tmp_path_factory, events, delta):
    # hypothesis + tmp_path interplay: create a fresh directory per example.
    directory = tmp_path_factory.mktemp("store_prop")
    path = directory / "events.log"
    with GraphStore(path) as store:
        for u, v, tau, capacity in events:
            store.add_relationship(u, v, tau=tau, amount=capacity)
    with GraphStore(path) as revived:
        network, _ = revived.export_network(compact_timestamps=False)
    direct = TemporalFlowNetwork.from_tuples(events)
    for node in ("n0", "n1"):
        network.add_node(node)
        direct.add_node(node)
    if direct.num_edges == 0:
        return
    query = BurstingFlowQuery("n0", "n1", delta)
    assert bfq(network, query).density == pytest.approx(bfq(direct, query).density)


@settings(max_examples=25, deadline=None)
@given(event_streams(), st.integers(min_value=1, max_value=3))
def test_all_intervals_against_naive_enumeration(events, delta):
    """Every optimal window the brute force finds must be reported by
    find_all_bursting_intervals, and vice versa (at candidate granularity
    plus the footnote-13 sliding expansion)."""
    from repro.core import build_transformed_network
    from repro.extensions import find_all_bursting_intervals
    from repro.flownet import dinic

    network = TemporalFlowNetwork.from_tuples(events)
    network.add_node("n0")
    network.add_node("n1")
    if network.num_edges == 0:
        return
    t_min, t_max = network.t_min, network.t_max
    if t_max - t_min < delta:
        return

    def window_value(lo, hi):
        transformed = build_transformed_network(network, "n0", "n1", lo, hi)
        return dinic(
            transformed.flow_network,
            transformed.source_index,
            transformed.sink_index,
        ).value

    best = 0.0
    optimal = set()
    for lo in range(t_min, t_max - delta + 1):
        for hi in range(lo + delta, t_max + 1):
            density = window_value(lo, hi) / (hi - lo)
            if density > best + 1e-12:
                best = density
                optimal = {(lo, hi)}
            elif best > 0 and abs(density - best) <= best * 1e-9:
                optimal.add((lo, hi))

    query = BurstingFlowQuery("n0", "n1", delta)
    result = find_all_bursting_intervals(network, query)
    assert result.density == pytest.approx(best)
    if best == 0:
        return
    # Everything reported is genuinely optimal...
    for interval in result.intervals:
        assert interval in optimal, interval
    # ...and every optimal *length-delta* window is reported (longer ties
    # at non-candidate boundaries may legitimately be skipped).
    for lo, hi in optimal:
        if hi - lo == delta:
            assert (lo, hi) in result.intervals, (lo, hi)
