"""Tests for the multi-query planner (shared skeletons + top-k bursts).

The load-bearing property: a batch routed through the planner — duplicates,
overlapping deltas and all — produces answers *byte-identical* to solving
every query independently with :func:`find_bursting_flow`.  The memo and
the shared skeleton are pure amortisation; they must never change a result.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BurstingFlowQuery,
    PlannerReport,
    WindowMemo,
    answer_many,
    answer_planned,
    find_bursting_flow,
    group_queries,
    planner_bfq,
    top_k_bursts,
)
from repro.exceptions import GraphError, InvalidQueryError
from repro.temporal import TemporalEdge, TemporalFlowNetwork


def random_network(seed: int, nodes: int = 6, edges: int = 24, horizon: int = 12):
    rng = random.Random(seed)
    network = TemporalFlowNetwork()
    for name in ("n0", "n1", "n2", "n3"):
        network.add_node(name)
    for _ in range(edges):
        u = rng.randrange(nodes)
        v = rng.randrange(nodes)
        if u == v:
            continue
        network.add_edge(
            TemporalEdge(
                f"n{u}", f"n{v}", rng.randint(1, horizon), float(rng.randint(1, 9))
            )
        )
    return network


def overlapping_batch(deltas=(2, 3, 2, 5, 3)) -> list[BurstingFlowQuery]:
    """A batch with duplicate queries and delta-overlapping sweeps."""
    batch = [BurstingFlowQuery("n0", "n1", d) for d in deltas]
    batch += [BurstingFlowQuery("n2", "n3", d) for d in deltas[:3]]
    batch.append(BurstingFlowQuery("n0", "n1", deltas[0]))  # exact duplicate
    return batch


def assert_results_identical(planned, independent):
    assert len(planned) == len(independent)
    for ours, theirs in zip(planned, independent):
        assert ours.density == theirs.density
        assert ours.interval == theirs.interval
        assert ours.flow_value == theirs.flow_value


@st.composite
def temporal_networks(draw) -> TemporalFlowNetwork:
    num_nodes = draw(st.integers(min_value=3, max_value=6))
    horizon = draw(st.integers(min_value=2, max_value=8))
    num_edges = draw(st.integers(min_value=3, max_value=15))
    network = TemporalFlowNetwork()
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        v = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        if u == v:
            continue
        tau = draw(st.integers(min_value=1, max_value=horizon))
        capacity = float(draw(st.integers(min_value=1, max_value=9)))
        network.add_edge(TemporalEdge(f"n{u}", f"n{v}", tau, capacity))
    for name in ("n0", "n1", "n2"):
        network.add_node(name)
    if not network.num_edges:
        network.add_edge(TemporalEdge("n0", "n1", 1, 1.0))
    return network


class TestPlannerEquivalence:
    """Planner answers == independent answers, always."""

    @settings(max_examples=50, deadline=None)
    @given(
        temporal_networks(),
        st.lists(
            st.tuples(
                st.sampled_from([("n0", "n1"), ("n1", "n0"), ("n0", "n2")]),
                st.integers(min_value=1, max_value=5),
            ),
            min_size=1,
            max_size=8,
        ),
    )
    def test_property_planned_matches_independent(self, network, raw_batch):
        # Duplicates and delta-overlap arise naturally from the small
        # sample space; both amortisation paths (memo hit, shared
        # skeleton) are exercised across examples.
        batch = [
            BurstingFlowQuery(source, sink, delta)
            for (source, sink), delta in raw_batch
        ]
        planned, report = answer_planned(network, batch)
        independent = [find_bursting_flow(network, query) for query in batch]
        assert_results_identical(planned, independent)
        assert report.queries == len(batch)
        assert report.windows_solved + report.windows_reused == report.windows_total

    def test_duplicate_heavy_batch_reuses_windows(self):
        network = random_network(3)
        batch = overlapping_batch()
        planned, report = answer_planned(network, batch)
        independent = [find_bursting_flow(network, query) for query in batch]
        assert_results_identical(planned, independent)
        assert report.groups == 2
        # Skeletons are compiled lazily — a group whose candidate plan is
        # empty never pays for one.
        assert 1 <= report.skeletons_compiled <= report.groups
        assert report.windows_reused > 0
        assert report.amortization > 1.0

    def test_process_pool_matches_sequential(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        network = random_network(7)
        batch = overlapping_batch()
        sequential, seq_report = answer_planned(network, batch)
        pooled, pool_report = answer_planned(
            network, batch, processes=2, mp_context="fork"
        )
        assert_results_identical(pooled, sequential)
        # The pool shards whole groups, so the amortisation bookkeeping
        # is identical too, not merely equivalent.
        assert pool_report.windows_total == seq_report.windows_total
        assert pool_report.windows_solved == seq_report.windows_solved
        assert pool_report.windows_reused == seq_report.windows_reused

    def test_answer_many_shared_plan_matches_independent(self):
        network = random_network(11)
        batch = overlapping_batch()
        shared = answer_many(network, batch, plan="shared")
        independent = answer_many(network, batch)
        assert_results_identical(shared, independent)

    def test_empty_batch(self):
        network = random_network(0)
        results, report = answer_planned(network, [])
        assert results == []
        assert report.queries == 0
        assert report.amortization == 0.0


class TestPlanValidation:
    def test_unknown_plan_rejected(self):
        network = random_network(0)
        with pytest.raises(InvalidQueryError, match="unknown plan"):
            answer_many(network, [], plan="greedy")

    def test_shared_plan_rejects_algorithm_override(self):
        network = random_network(0)
        with pytest.raises(InvalidQueryError, match="plan='shared'"):
            answer_many(
                network,
                [BurstingFlowQuery("n0", "n1", 2)],
                plan="shared",
                algorithm="bfq",
            )

    def test_unknown_endpoint_rejected_before_solving(self):
        network = random_network(0)
        with pytest.raises(InvalidQueryError, match="ghost"):
            answer_planned(network, [BurstingFlowQuery("n0", "ghost", 2)])


class TestGroupQueries:
    def test_groups_preserve_first_appearance_order(self):
        batch = [
            BurstingFlowQuery("a", "b", 2),
            BurstingFlowQuery("c", "d", 2),
            BurstingFlowQuery("a", "b", 5),
            BurstingFlowQuery("c", "d", 9),
            BurstingFlowQuery("a", "c", 1),
        ]
        groups = group_queries(batch)
        assert [(g.source, g.sink) for g in groups] == [
            ("a", "b"),
            ("c", "d"),
            ("a", "c"),
        ]
        assert groups[0].indices == (0, 2)
        assert groups[1].indices == (1, 3)
        assert groups[2].indices == (4,)

    def test_indices_cover_the_batch_exactly_once(self):
        batch = overlapping_batch()
        groups = group_queries(batch)
        covered = sorted(i for g in groups for i in g.indices)
        assert covered == list(range(len(batch)))


class TestPlannerReport:
    def test_absorb_is_field_complete(self):
        import dataclasses

        left = PlannerReport(**{
            spec.name: index + 1
            for index, spec in enumerate(dataclasses.fields(PlannerReport))
        })
        right = PlannerReport(**{
            spec.name: 10 * (index + 1)
            for index, spec in enumerate(dataclasses.fields(PlannerReport))
        })
        left.absorb(right)
        for index, spec in enumerate(dataclasses.fields(PlannerReport)):
            assert getattr(left, spec.name) == 11 * (index + 1), spec.name

    def test_amortization(self):
        report = PlannerReport(windows_total=12, windows_solved=4)
        assert report.amortization == 3.0
        assert PlannerReport().amortization == 0.0  # no divide-by-zero

    def test_as_dict_round_trips_every_field(self):
        import dataclasses

        report = PlannerReport(queries=3, windows_total=9, windows_solved=3)
        payload = report.as_dict()
        for spec in dataclasses.fields(PlannerReport):
            assert payload[spec.name] == getattr(report, spec.name)
        assert payload["amortization"] == 3.0


class TestWindowMemo:
    def test_round_trip(self):
        network = random_network(1)
        memo = WindowMemo(network)
        assert memo.get((1, 4)) is None
        memo.put((1, 4), 7.5, 12)
        assert memo.get((1, 4)) == (7.5, 12)

    def test_epoch_guard_fires_after_mutation(self):
        network = random_network(1)
        memo = WindowMemo(network)
        memo.put((1, 4), 7.5, 12)
        network.add_edge(TemporalEdge("n0", "n1", network.t_max, 1.0))
        with pytest.raises(GraphError, match="mutated under the planner"):
            memo.get((1, 4))


class TestTopKBursts:
    def test_ranking_matches_independent_answers(self):
        network = random_network(5)
        pairs = [("n0", "n1"), ("n2", "n3"), ("n1", "n0"), ("n0", "n2")]
        entries = top_k_bursts(network, pairs, 3, k=10)
        expected = []
        for position, (source, sink) in enumerate(pairs):
            result = find_bursting_flow(
                network, BurstingFlowQuery(source, sink, 3)
            )
            if not result.found:
                continue
            tau_s, tau_e = result.interval
            expected.append(
                (
                    (-result.density, tau_s, tau_e - tau_s, position),
                    (source, sink, result.density, result.interval),
                )
            )
        expected.sort(key=lambda item: item[0])
        assert [
            (e.source, e.sink, e.density, e.interval) for e in entries
        ] == [payload for _key, payload in expected]
        for entry in entries:
            assert entry.delta == 3

    def test_k_truncates(self):
        network = random_network(5)
        pairs = [("n0", "n1"), ("n2", "n3"), ("n1", "n0"), ("n0", "n2")]
        full = top_k_bursts(network, pairs, 3, k=10)
        if len(full) < 2:
            pytest.skip("seed produced fewer than two positive bursts")
        top_one = top_k_bursts(network, pairs, 3, k=1)
        assert top_one == full[:1]

    def test_duplicate_pairs_deduplicated_first_wins(self):
        network = random_network(5)
        once = top_k_bursts(network, [("n0", "n1")], 3, k=5)
        doubled = top_k_bursts(
            network, [("n0", "n1"), ("n0", "n1"), ("n0", "n1")], 3, k=5
        )
        assert doubled == once

    def test_pairs_without_burst_are_dropped(self):
        network = TemporalFlowNetwork.from_tuples(
            [("a", "b", 1, 5.0), ("a", "b", 2, 5.0)]
        )
        network.add_node("x")
        network.add_node("y")
        entries = top_k_bursts(network, [("a", "b"), ("x", "y")], 1, k=5)
        assert [(e.source, e.sink) for e in entries] == [("a", "b")]

    @pytest.mark.parametrize("k", [0, -1])
    def test_invalid_k_rejected(self, k):
        network = random_network(0)
        with pytest.raises(InvalidQueryError, match="k must be >= 1"):
            top_k_bursts(network, [("n0", "n1")], 2, k=k)


class TestPlannerOracleBackend:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("delta", [1, 2, 4])
    def test_matches_find_bursting_flow(self, seed, delta):
        network = random_network(seed)
        query = BurstingFlowQuery("n0", "n1", delta)
        via_planner = planner_bfq(network, query)
        direct = find_bursting_flow(network, query)
        assert via_planner.density == direct.density
        assert via_planner.interval == direct.interval
        assert via_planner.flow_value == direct.flow_value

    def test_registered_with_the_oracle(self):
        from repro.oracle.runner import BACKENDS, DEFAULT_BACKENDS, PLAN_BACKENDS

        assert BACKENDS["planner"] is planner_bfq
        assert "planner" in DEFAULT_BACKENDS
        assert "planner" in PLAN_BACKENDS
