"""Property tests for the persistent residual arena inside the engine.

The incremental engine's ``kernel="persistent"`` path keeps a flat residual
arena alive across ``extend_end`` / ``advance_start`` / ``run_maxflow``
calls.  Hypothesis drives random operation sequences against a twin engine
running the pre-persistent object-graph kernel and asserts, after every
step:

* the two kernels agree on the flow value (the *assignments* may differ —
  both are maximum flows);
* the arena still mirrors the object graph exactly (structure, residual
  capacities, levels never out of range) — ``ResidualArena.mirrors`` is a
  byte-level comparison of every parallel array against the adjacency
  lists.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalTransformedNetwork
from repro.exceptions import SolverError
from repro.temporal import TemporalEdge, TemporalFlowNetwork

TOLERANCE = 1e-7


@st.composite
def temporal_networks(draw) -> TemporalFlowNetwork:
    num_nodes = draw(st.integers(min_value=3, max_value=7))
    horizon = draw(st.integers(min_value=4, max_value=12))
    num_edges = draw(st.integers(min_value=4, max_value=20))
    network = TemporalFlowNetwork()
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        v = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        if u == v:
            continue
        tau = draw(st.integers(min_value=1, max_value=horizon))
        capacity = float(draw(st.integers(min_value=1, max_value=9)))
        network.add_edge(TemporalEdge(f"n{u}", f"n{v}", tau, capacity))
    network.add_node("n0")
    network.add_node("n1")
    if not network.num_edges:
        network.add_edge(TemporalEdge("n0", "n1", 1, 1.0))
    return network


def _twins(network, tau_s, tau_e):
    persistent = IncrementalTransformedNetwork(
        network, "n0", "n1", tau_s, tau_e, kernel="persistent"
    )
    reference = IncrementalTransformedNetwork(
        network, "n0", "n1", tau_s, tau_e, kernel="object"
    )
    return persistent, reference


def _check_step(persistent, reference):
    assert persistent.flow_value() == pytest.approx(
        reference.flow_value(), abs=TOLERANCE
    )
    arena = persistent.network.arena
    if arena is not None:  # attached lazily on the first kernel run
        assert arena.mirrors(persistent.network)


@settings(max_examples=60, deadline=None)
@given(
    temporal_networks(),
    st.data(),
)
def test_operation_sequences_keep_twins_equivalent(network, data):
    """Random extend/advance/run interleavings: value + mirror invariants."""
    t_min, t_max = network.t_min, network.t_max
    if t_max - t_min < 2:
        return
    tau_s = t_min
    tau_e = data.draw(
        st.integers(min_value=tau_s + 1, max_value=min(tau_s + 4, t_max)),
        label="initial tau_e",
    )
    persistent, reference = _twins(network, tau_s, tau_e)
    persistent.run_maxflow()
    reference.run_maxflow()
    _check_step(persistent, reference)

    for _ in range(data.draw(st.integers(min_value=1, max_value=4), label="steps")):
        can_extend = persistent.tau_e < t_max
        can_advance = persistent.tau_e - persistent.tau_s > 1
        options = ["run"]
        if can_extend:
            options.append("extend")
        if can_advance:
            options.append("advance")
        op = data.draw(st.sampled_from(options), label="op")
        if op == "extend":
            new_tau_e = data.draw(
                st.integers(min_value=persistent.tau_e + 1, max_value=t_max),
                label="new tau_e",
            )
            persistent.extend_end(new_tau_e)
            reference.extend_end(new_tau_e)
        elif op == "advance":
            new_tau_s = data.draw(
                st.integers(
                    min_value=persistent.tau_s + 1,
                    max_value=persistent.tau_e - 1,
                ),
                label="new tau_s",
            )
            persistent.advance_start(new_tau_s)
            reference.advance_start(new_tau_s)
        persistent.run_maxflow()
        reference.run_maxflow()
        _check_step(persistent, reference)


@settings(max_examples=40, deadline=None)
@given(temporal_networks())
def test_value_bound_run_matches_unbounded_twin(network):
    """Bounded runs (Observation 2) must not under-report the Maxflow."""
    t_min, t_max = network.t_min, network.t_max
    if t_max - t_min < 2:
        return
    persistent, reference = _twins(network, t_min, t_min + 1)
    persistent.run_maxflow()
    reference.run_maxflow()
    for new_tau_e in range(t_min + 2, t_max + 1):
        pending = network.sink_capacity_in_window(
            "n1", persistent.tau_e + 1, new_tau_e
        )
        persistent.extend_end(new_tau_e)
        reference.extend_end(new_tau_e)
        persistent.run_maxflow(value_bound=pending)
        reference.run_maxflow()
        _check_step(persistent, reference)


def test_unknown_kernel_rejected(burst_network):
    with pytest.raises(SolverError, match="kernel"):
        IncrementalTransformedNetwork(
            burst_network, "s", "t", 0, 2, kernel="quantum"
        )


def test_clone_preserves_kernel(burst_network):
    state = IncrementalTransformedNetwork(
        burst_network, "s", "t", 0, 2, kernel="object"
    )
    assert state.clone().kernel == "object"
