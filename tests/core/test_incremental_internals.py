"""White-box tests for the incremental network's internal operations."""

import math

import pytest

from repro.core.incremental import (
    IncrementalTransformedNetwork,
    _span_position,
)
from repro.flownet.network import EdgeKind
from repro.temporal import TemporalFlowNetwork


@pytest.fixture
def network() -> TemporalFlowNetwork:
    return TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 1, 4.0),
            ("a", "t", 6, 4.0),
            ("s", "t", 8, 1.0),
        ]
    )


class TestSpanPosition:
    def test_interior_span(self):
        assert _span_position([1, 6], 3) == 0
        assert _span_position([1, 4, 9], 7) == 1

    def test_existing_stamp_returns_none(self):
        assert _span_position([1, 3, 6], 3) is None

    def test_outside_timeline_returns_none(self):
        assert _span_position([3, 6], 1) is None
        assert _span_position([3, 6], 9) is None
        assert _span_position([3], 5) is None


class TestTimestampInjection:
    def test_split_preserves_capacity_and_flow(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 8)
        state.run_maxflow()
        # 'a' holds 4 units across [1, 6]; inject tau=3 mid-hold.
        state._inject_timestamp(3)
        fn = state.network
        assert fn.has_node(("a", 3))
        first = state._hold_into[("a", 3)]
        second = state._hold_into[("a", 6)]
        assert fn.flow_on(first) == pytest.approx(4.0)
        assert fn.flow_on(second) == pytest.approx(4.0)
        assert math.isinf(fn.forward_arc(first).cap)
        # The old spanning edge is disabled entirely.
        disabled = [
            arc
            for tail, arc in fn.iter_edges()
            if arc.kind is EdgeKind.HOLD
            and fn.label_of(tail) == ("a", 1)
            and fn.label_of(arc.head) == ("a", 6)
        ]
        assert disabled
        assert disabled[0].cap == 0.0

    def test_injection_is_flow_neutral(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 8)
        state.run_maxflow()
        before = state.flow_value()
        state._inject_timestamp(3)
        assert state.flow_value() == pytest.approx(before)
        # Resuming Dinic finds nothing new after a pure injection.
        assert state.run_maxflow().value == pytest.approx(0.0)

    def test_injection_at_existing_stamp_is_noop(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 8)
        nodes_before = state.network.num_nodes
        state._inject_timestamp(6)  # 'a' and 't' already have tau=6 nodes
        # Only nodes lacking the stamp get one ('s' spans 1..8).
        assert state.network.num_nodes == nodes_before + 1
        assert state.network.has_node(("s", 6))


class TestBoundaryCrossings:
    def test_crossings_report_held_flow(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 8)
        state.run_maxflow()
        state._inject_timestamp(3)
        crossings = state._boundary_crossings(3)
        labels = {
            state.network.label_of(index): flow for index, flow in crossings
        }
        assert labels == {("a", 3): pytest.approx(4.0)}

    def test_source_chain_excluded(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 8)
        state.run_maxflow()
        state._inject_timestamp(7)
        crossings = state._boundary_crossings(7)
        for index, _ in crossings:
            node, _tau = state.network.label_of(index)
            assert node != "s"


class TestFlowValueAccounting:
    def test_value_counts_only_active_source_emission(self, network):
        state = IncrementalTransformedNetwork(network, "s", "t", 1, 8)
        state.run_maxflow()
        assert state.flow_value() == pytest.approx(5.0)
        state.advance_start(7)
        state.run_maxflow()
        # Only the tau=8 direct edge remains usable.
        assert state.flow_value() == pytest.approx(1.0)

    def test_stats_modes_partition_candidates(self, network):
        from repro import BurstingFlowQuery, bfq_star

        result = bfq_star(network, BurstingFlowQuery("s", "t", 2))
        modes = {sample.mode for sample in result.stats.samples}
        assert modes <= {"dinic", "maxflow+", "maxflow-", "pruned"}
        assert len(result.stats.samples) == result.stats.candidates_enumerated
