"""Tests for the engine façade."""

import pytest

from repro import BurstingFlowQuery, find_bursting_flow
from repro.core import ALGORITHMS, DEFAULT_ALGORITHM, get_algorithm
from repro.exceptions import InvalidQueryError


class TestDispatch:
    def test_registry_contains_all_five(self):
        assert set(ALGORITHMS) == {"bfq", "bfq+", "bfq*", "naive", "networkx"}
        assert DEFAULT_ALGORITHM == "bfq*"
        assert DEFAULT_ALGORITHM in ALGORITHMS

    def test_unknown_algorithm_error_lists_baselines(self):
        with pytest.raises(InvalidQueryError, match="naive") as excinfo:
            get_algorithm("magic")
        assert "networkx" in str(excinfo.value)

    def test_get_algorithm_case_insensitive(self):
        assert get_algorithm("BFQ*") is ALGORITHMS["bfq*"]

    def test_unknown_algorithm(self):
        with pytest.raises(InvalidQueryError, match="unknown algorithm"):
            get_algorithm("magic")

    def test_query_object_form(self, burst_network):
        result = find_bursting_flow(
            burst_network, BurstingFlowQuery("s", "t", 2)
        )
        assert result.density == pytest.approx(300.0)

    def test_keyword_form(self, burst_network):
        result = find_bursting_flow(burst_network, source="s", sink="t", delta=2)
        assert result.density == pytest.approx(300.0)

    def test_missing_parameters_rejected(self, burst_network):
        with pytest.raises(InvalidQueryError):
            find_bursting_flow(burst_network, source="s", delta=2)

    def test_both_forms_rejected(self, burst_network):
        with pytest.raises(InvalidQueryError):
            find_bursting_flow(
                burst_network,
                BurstingFlowQuery("s", "t", 2),
                source="s",
            )

    def test_kwargs_forwarded(self, burst_network):
        result = find_bursting_flow(
            burst_network,
            source="s",
            sink="t",
            delta=2,
            algorithm="bfq+",
            use_pruning=False,
        )
        assert result.stats.pruned_intervals == 0

    def test_all_algorithms_agree_through_facade(self, burst_network):
        densities = {
            name: find_bursting_flow(
                burst_network, source="s", sink="t", delta=2, algorithm=name
            ).density
            for name in ALGORITHMS
        }
        assert max(densities.values()) - min(densities.values()) < 1e-9
