"""Tests for candidate-interval enumeration (Section 4.2, Lemma 2)."""

import pytest

from repro.core import enumerate_candidates, is_core_interval
from repro.exceptions import InvalidQueryError
from repro.temporal import TemporalFlowNetwork


@pytest.fixture
def network() -> TemporalFlowNetwork:
    return TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 1, 3.0),
            ("s", "a", 4, 2.0),
            ("a", "t", 2, 2.0),
            ("a", "t", 6, 5.0),
            ("s", "t", 8, 1.0),
        ]
    )
    # Ti(s) = [1, 4, 8]; Ti(t) = [2, 6, 8]; T = 1..8


class TestPlanShape:
    def test_starts_are_ti_s(self, network):
        plan = enumerate_candidates(network, "s", "t", 2)
        assert plan.starts == (1, 4)  # 8 + 2 > 8 overshoots
        assert plan.sink_stamps == (2, 6, 8)
        assert plan.corner == (6, 8)

    def test_no_corner_when_everything_fits(self, network):
        plan = enumerate_candidates(network, "s", "t", 2)
        assert plan.corner is not None
        # delta=7: only start 1 fits; corner [1, 8] would duplicate the
        # start window [1, 1+7], so it is deduped.
        plan7 = enumerate_candidates(network, "s", "t", 7)
        assert plan7.starts == (1,)
        assert plan7.corner is None

    def test_endings_strictly_beyond_minimal_window(self, network):
        plan = enumerate_candidates(network, "s", "t", 2)
        assert list(plan.endings_for(1)) == [6, 8]
        assert list(plan.endings_for(4)) == [8]

    def test_intervals_in_bfq_order(self, network):
        plan = enumerate_candidates(network, "s", "t", 2)
        intervals = list(plan.intervals())
        assert intervals == [
            (1, 3), (1, 6), (1, 8),
            (4, 6), (4, 8),
            (6, 8),  # corner
        ]
        assert plan.count() == 6

    def test_candidate_count_is_o_d_squared(self, network):
        plan = enumerate_candidates(network, "s", "t", 1)
        d = network.query_degree("s", "t")
        assert plan.count() <= d * (d + 1) + 1

    @pytest.mark.parametrize("delta", [1, 2, 3, 5, 7])
    def test_count_equals_iterator_length(self, network, delta):
        """Regression: the O(d log d) bisect count must equal the O(d^2)
        iterator — for every delta, corner case included."""
        plan = enumerate_candidates(network, "s", "t", delta)
        assert plan.count() == sum(1 for _ in plan.intervals())

    def test_count_equals_iterator_length_random(self):
        import random

        from repro.temporal import TemporalEdge

        rng = random.Random(7)
        for _ in range(25):
            network = TemporalFlowNetwork()
            network.add_node("s")
            network.add_node("t")
            for _ in range(rng.randint(3, 30)):
                u, v = rng.sample(["s", "t", "a", "b", "c"], 2)
                network.add_edge(
                    TemporalEdge(u, v, rng.randint(1, 15), float(rng.randint(1, 5)))
                )
            for delta in (1, 2, 4, 9):
                plan = enumerate_candidates(network, "s", "t", delta)
                assert plan.count() == sum(1 for _ in plan.intervals())

    def test_delta_longer_than_horizon_yields_empty_plan(self, network):
        plan = enumerate_candidates(network, "s", "t", 8)
        assert plan.starts == ()
        assert plan.corner is None
        assert list(plan.intervals()) == []

    def test_source_without_out_edges_yields_empty_plan(self):
        network = TemporalFlowNetwork.from_tuples([("a", "s", 1, 1.0), ("a", "t", 2, 1.0)])
        plan = enumerate_candidates(network, "s", "t", 1)
        assert list(plan.intervals()) == []

    def test_bad_delta_rejected(self, network):
        with pytest.raises(InvalidQueryError):
            enumerate_candidates(network, "s", "t", 0)

    def test_unknown_node_rejected(self, network):
        with pytest.raises(InvalidQueryError):
            enumerate_candidates(network, "s", "ghost", 1)


class TestCoreIntervals:
    def test_known_core_interval(self):
        # All flow lives inside [2, 4]; trimming either side loses value.
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 2, 3.0), ("a", "t", 4, 3.0), ("s", "t", 9, 1.0)]
        )
        assert is_core_interval(network, "s", "t", 2, 4)

    def test_loose_interval_is_not_core(self):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 2, 3.0), ("a", "t", 4, 3.0), ("s", "t", 9, 1.0)]
        )
        # [1, 5] strictly contains the core interval: same value, not core.
        assert not is_core_interval(network, "s", "t", 1, 5)

    def test_zero_flow_interval_is_not_core(self):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 2, 3.0), ("a", "t", 4, 3.0)]
        )
        assert not is_core_interval(network, "s", "t", 5, 7)

    def test_observation1_core_interval_endpoints(self):
        """Observation 1: a core interval starts in TiStamp_out(s) and ends
        in TiStamp_in(t) — verified exhaustively on a small network."""
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "a", 2, 3.0),
                ("a", "b", 3, 2.0),
                ("b", "t", 5, 2.0),
                ("s", "t", 7, 1.0),
            ]
        )
        out_s = set(network.tistamp_out("s"))
        in_t = set(network.tistamp_in("t"))
        for lo in range(1, 8):
            for hi in range(lo + 1, 9):
                if is_core_interval(network, "s", "t", lo, hi):
                    assert lo in out_s
                    assert hi in in_t
