"""Tests for multi-source / multi-sink delta-BFlow queries."""

import pytest

from repro import find_bursting_flow
from repro.exceptions import InvalidQueryError
from repro.extensions import (
    SUPER_SINK,
    SUPER_SOURCE,
    build_group_network,
    find_group_bursting_flow,
)
from repro.temporal import TemporalFlowNetwork


@pytest.fixture
def two_lane() -> TemporalFlowNetwork:
    """Two disjoint bursts: s1 -> m1 -> t1 and s2 -> m2 -> t2, same window."""
    return TemporalFlowNetwork.from_tuples(
        [
            ("s1", "m1", 10, 6.0),
            ("m1", "t1", 11, 6.0),
            ("s2", "m2", 10, 4.0),
            ("m2", "t2", 11, 4.0),
            ("s1", "x", 1, 1.0),
            ("x", "t2", 20, 1.0),
        ]
    )


class TestGroupNetwork:
    def test_super_nodes_added(self, two_lane):
        grouped = build_group_network(two_lane, ["s1", "s2"], ["t1", "t2"])
        assert SUPER_SOURCE in grouped
        assert SUPER_SINK in grouped
        # Super-source feeds s1 at its out-stamps {1, 10}.
        assert list(grouped.tistamp_out(SUPER_SOURCE)) == [1, 10]
        assert list(grouped.tistamp_in(SUPER_SINK)) == [11, 20]

    def test_virtual_capacities_never_bind(self, two_lane):
        grouped = build_group_network(two_lane, ["s1"], ["t1"])
        # Virtual in-capacity at tau=10 equals s1's spend capacity there.
        assert grouped.capacity(SUPER_SOURCE, "s1", 10) == 6.0

    def test_group_validation(self, two_lane):
        with pytest.raises(InvalidQueryError, match="non-empty"):
            build_group_network(two_lane, [], ["t1"])
        with pytest.raises(InvalidQueryError, match="overlap"):
            build_group_network(two_lane, ["s1"], ["s1"])
        with pytest.raises(InvalidQueryError, match="not in network"):
            build_group_network(two_lane, ["ghost"], ["t1"])


class TestGroupQueries:
    def test_groups_pool_parallel_bursts(self, two_lane):
        result = find_group_bursting_flow(
            two_lane, ["s1", "s2"], ["t1", "t2"], delta=1
        )
        # Both lanes burst simultaneously: 10 units over [10, 11].
        assert result.density == pytest.approx(10.0)
        assert result.interval == (10, 11)

    def test_group_at_least_best_pairwise(self, two_lane):
        group = find_group_bursting_flow(
            two_lane, ["s1", "s2"], ["t1", "t2"], delta=1
        )
        best_pairwise = max(
            find_bursting_flow(
                two_lane, source=s, sink=t, delta=1
            ).density
            for s in ("s1", "s2")
            for t in ("t1", "t2")
        )
        assert group.density >= best_pairwise - 1e-9
        assert best_pairwise == pytest.approx(6.0)

    def test_singleton_groups_equal_pairwise(self, two_lane):
        group = find_group_bursting_flow(two_lane, ["s1"], ["t1"], delta=1)
        pair = find_bursting_flow(two_lane, source="s1", sink="t1", delta=1)
        assert group.density == pytest.approx(pair.density)
        assert group.interval == pair.interval

    def test_no_flow_between_groups(self, two_lane):
        result = find_group_bursting_flow(two_lane, ["t1"], ["s2"], delta=1)
        assert not result.found

    def test_duplicates_in_groups_deduped(self, two_lane):
        result = find_group_bursting_flow(
            two_lane, ["s1", "s1"], ["t1", "t1"], delta=1
        )
        assert result.density == pytest.approx(6.0)

    def test_original_network_untouched(self, two_lane):
        edges_before = two_lane.num_edges
        find_group_bursting_flow(two_lane, ["s1"], ["t1"], delta=1)
        assert two_lane.num_edges == edges_before
        assert SUPER_SOURCE not in two_lane
