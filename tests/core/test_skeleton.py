"""Differential tests for the transform compiler (``core/skeleton.py``).

The skeleton path must be *indistinguishable* from the object-graph
transform: same node set, same Maxflow value, certificates that hold, and
identical end-to-end answers from every algorithm under both transforms.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BurstingFlowQuery, bfq, bfq_plus, bfq_star, find_bursting_flow
from repro.core import enumerate_candidates
from repro.core.bfq_plus import bfq_plus as bfq_plus_direct
from repro.core.skeleton import (
    DEFAULT_TRANSFORM,
    KNOWN_TRANSFORMS,
    WindowSkeleton,
    validate_transform,
)
from repro.core.transform import build_transformed_network, reachable_edges
from repro.exceptions import GraphError, InvalidIntervalError
from repro.flownet import dinic
from repro.flownet.mincut import certify_maxflow
from repro.temporal import TemporalEdge, TemporalFlowNetwork

TOLERANCE = 1e-9


def random_network(seed: int, nodes: int = 6, edges: int = 20, horizon: int = 12):
    rng = random.Random(seed)
    network = TemporalFlowNetwork()
    network.add_node("n0")
    network.add_node("n1")
    for _ in range(edges):
        u = rng.randrange(nodes)
        v = rng.randrange(nodes)
        if u == v:
            continue
        network.add_edge(
            TemporalEdge(
                f"n{u}", f"n{v}", rng.randint(1, horizon), float(rng.randint(1, 9))
            )
        )
    return network


def candidate_windows(network, source="n0", sink="n1", delta=2):
    plan = enumerate_candidates(network, source, sink, delta)
    return list(plan.intervals())


class TestValidateTransform:
    def test_known_names(self):
        assert validate_transform("skeleton") == "skeleton"
        assert validate_transform("object") == "object"
        assert validate_transform("SKELETON") == "skeleton"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown transform"):
            validate_transform("quantum")

    def test_default_is_known(self):
        assert DEFAULT_TRANSFORM in KNOWN_TRANSFORMS


class TestWindowEquality:
    """materialize() vs build_transformed_network, window by window."""

    @pytest.mark.parametrize("seed", range(8))
    def test_same_nodes_value_and_certificate(self, seed):
        network = random_network(seed)
        skeleton = WindowSkeleton(network, "n0", "n1")
        for tau_s, tau_e in candidate_windows(network):
            window = skeleton.materialize(tau_s, tau_e)
            reference = build_transformed_network(network, "n0", "n1", tau_s, tau_e)
            assert window.num_nodes == reference.num_nodes
            assert window.num_edges == reference.num_edges

            run = window.maxflow()
            ref_run = dinic(
                reference.flow_network,
                reference.source_index,
                reference.sink_index,
            )
            assert abs(run.value - ref_run.value) < TOLERANCE
            assert abs(window.flow_value() - ref_run.value) < TOLERANCE

            # The residual state the object-graph Dinic left behind must
            # certify the value the arena kernel computed.
            assert (
                certify_maxflow(
                    reference.flow_network,
                    reference.source_index,
                    reference.sink_index,
                    run.value,
                )
                == []
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_to_flow_network_is_byte_identical(self, seed):
        network = random_network(seed, edges=15)
        skeleton = WindowSkeleton(network, "n0", "n1")
        for tau_s, tau_e in candidate_windows(network)[:6]:
            rebuilt = skeleton.materialize(tau_s, tau_e).to_flow_network()
            reference = build_transformed_network(network, "n0", "n1", tau_s, tau_e)
            assert list(rebuilt.flow_network.labels()) == list(
                reference.flow_network.labels()
            )
            assert rebuilt.source_index == reference.source_index
            assert rebuilt.sink_index == reference.sink_index
            assert rebuilt.num_edges == reference.num_edges

    def test_reversed_window_raises(self):
        network = random_network(0)
        skeleton = WindowSkeleton(network, "n0", "n1")
        with pytest.raises(InvalidIntervalError):
            skeleton.materialize(5, 3)


class TestLazySweep:
    """The resumable per-start index equals reachable_edges on any range."""

    @pytest.mark.parametrize("seed", range(6))
    def test_included_matches_reachable_edges(self, seed):
        network = random_network(seed)
        skeleton = WindowSkeleton(network, "n0", "n1")
        t_min, t_max = network.t_min, network.t_max
        for tau_s in range(t_min, t_max):
            # Ask for growing prefixes, exercising the resume path.
            arrival = {}
            previous_hi = tau_s - 1
            for hi in range(tau_s, t_max + 1):
                expected = list(
                    reachable_edges(
                        network, "n0", previous_hi + 1, hi, arrival=arrival
                    )
                )
                got = list(skeleton.included_between(tau_s, previous_hi + 1, hi))
                assert got == expected
                previous_hi = hi

    def test_epoch_guard_fires_after_mutation(self):
        network = random_network(1)
        skeleton = WindowSkeleton(network, "n0", "n1")
        skeleton.materialize(network.t_min, network.t_max)
        network.add_edge(TemporalEdge("n0", "n1", network.t_max, 1.0))
        with pytest.raises(GraphError, match="mutated after skeleton compile"):
            skeleton.materialize(network.t_min, network.t_max)


class TestAlgorithmEquality:
    """End-to-end: every algorithm agrees across both transforms."""

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("algorithm", [bfq, bfq_plus, bfq_star])
    def test_skeleton_matches_object(self, seed, algorithm):
        network = random_network(seed, edges=25)
        query = BurstingFlowQuery("n0", "n1", 2)
        with_skeleton = algorithm(network, query, transform="skeleton")
        with_object = algorithm(network, query, transform="object")
        assert abs(with_skeleton.density - with_object.density) < TOLERANCE
        assert with_skeleton.interval == with_object.interval
        assert abs(with_skeleton.flow_value - with_object.flow_value) < TOLERANCE

    @pytest.mark.parametrize("seed", range(5))
    def test_skeleton_without_pruning_matches(self, seed):
        network = random_network(seed + 100)
        query = BurstingFlowQuery("n0", "n1", 3)
        pruned = bfq_plus_direct(network, query, transform="skeleton")
        unpruned = bfq_plus_direct(
            network, query, transform="skeleton", use_pruning=False
        )
        assert abs(pruned.density - unpruned.density) < TOLERANCE
        assert pruned.interval == unpruned.interval

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=4),
    )
    def test_property_skeleton_matches_object(self, seed, delta):
        network = random_network(seed, nodes=5, edges=16, horizon=8)
        query = BurstingFlowQuery("n0", "n1", delta)
        for algorithm in (bfq, bfq_plus, bfq_star):
            with_skeleton = algorithm(network, query, transform="skeleton")
            with_object = algorithm(network, query, transform="object")
            assert abs(with_skeleton.density - with_object.density) < TOLERANCE
            assert with_skeleton.interval == with_object.interval


class TestEngineDispatch:
    def test_transform_forwarded(self, burst_network):
        query = BurstingFlowQuery("s", "t", 2)
        for transform in KNOWN_TRANSFORMS:
            result = find_bursting_flow(
                burst_network, query, algorithm="bfq", transform=transform
            )
            assert result.found

    def test_transform_rejected_for_baselines(self, burst_network):
        from repro.exceptions import InvalidQueryError

        with pytest.raises(InvalidQueryError, match="transform"):
            find_bursting_flow(
                burst_network,
                BurstingFlowQuery("s", "t", 2),
                algorithm="naive",
                transform="skeleton",
            )

    def test_parallel_windows_rejected_for_incremental(self, burst_network):
        from repro.exceptions import InvalidQueryError

        with pytest.raises(InvalidQueryError, match="parallel_windows"):
            find_bursting_flow(
                burst_network,
                BurstingFlowQuery("s", "t", 2),
                algorithm="bfq*",
                parallel_windows=2,
            )

    def test_parallel_windows_matches_sequential(self, burst_network):
        query = BurstingFlowQuery("s", "t", 2)
        sequential = find_bursting_flow(burst_network, query, algorithm="bfq")
        parallel = find_bursting_flow(
            burst_network, query, algorithm="bfq", parallel_windows=2
        )
        assert parallel.density == sequential.density
        assert parallel.interval == sequential.interval
        assert parallel.flow_value == sequential.flow_value
        assert (
            parallel.stats.candidates_enumerated
            == sequential.stats.candidates_enumerated
        )
        assert [s.interval for s in parallel.stats.samples] == [
            s.interval for s in sequential.stats.samples
        ]
