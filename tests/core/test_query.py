"""Tests for query/result types."""

import pytest

from repro.core import BurstingFlowQuery, BurstingFlowResult
from repro.core.query import IntervalSample, QueryStats
from repro.exceptions import InvalidQueryError
from repro.temporal import TemporalFlowNetwork


class TestBurstingFlowQuery:
    def test_valid_query(self):
        q = BurstingFlowQuery("s", "t", 3)
        assert (q.source, q.sink, q.delta) == ("s", "t", 3)

    def test_source_equals_sink_rejected(self):
        with pytest.raises(InvalidQueryError):
            BurstingFlowQuery("s", "s", 3)

    @pytest.mark.parametrize("delta", [0, -1, 1.5, "3", True])
    def test_bad_delta_rejected(self, delta):
        with pytest.raises(InvalidQueryError):
            BurstingFlowQuery("s", "t", delta)

    def test_validate_against_network(self):
        network = TemporalFlowNetwork.from_tuples([("s", "t", 1, 1.0)])
        BurstingFlowQuery("s", "t", 1).validate_against(network)
        with pytest.raises(InvalidQueryError):
            BurstingFlowQuery("s", "ghost", 1).validate_against(network)


class TestQueryStats:
    def test_record_sample_accumulates_time(self):
        stats = QueryStats()
        stats.record_sample(
            IntervalSample((1, 3), 10, "dinic", 0.5, 0.25, 4.0)
        )
        stats.record_sample(
            IntervalSample((1, 5), 12, "maxflow+", 0.5, 0.25, 6.0)
        )
        assert stats.maxflow_seconds == pytest.approx(1.0)
        assert stats.transform_seconds == pytest.approx(0.5)
        assert stats.total_seconds == pytest.approx(1.5)
        assert len(stats.samples) == 2


class TestBurstingFlowResult:
    def test_found(self):
        assert BurstingFlowResult(2.0, (1, 3), 4.0).found
        assert not BurstingFlowResult(0.0, None, 0.0).found

    def test_binary_record(self):
        result = BurstingFlowResult(2.5, (1, 3), 5.0)
        assert result.binary_record() == (2.5, (1, 3))

    def test_better_than(self):
        a = BurstingFlowResult(2.0, (1, 3), 4.0)
        b = BurstingFlowResult(1.0, (1, 5), 4.0)
        assert a.better_than(b)
        assert not b.better_than(a)
