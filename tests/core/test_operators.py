"""Tests for the Section-5 operator algebra (⊎, \\, Δ, N(P)).

Includes a line-by-line reproduction of the paper's Example 7: combining
the augmenting flow network N(P) with the residual network N_f restores
the original network's capacities (plus zero-capacity leftovers).
"""

import math

import pytest

from repro.core.operators import (
    augmenting_flow_network,
    capacity_map_of,
    combine,
    inject_timestamp,
    residual_of,
    subtract,
)
from repro.exceptions import GraphError
from repro.flownet import FlowNetwork, dinic


class TestCombine:
    def test_disjoint_union(self):
        assert combine({("a", "b"): 2.0}, {("b", "c"): 3.0}) == {
            ("a", "b"): 2.0,
            ("b", "c"): 3.0,
        }

    def test_common_edges_sum(self):
        assert combine({("a", "b"): 2.0}, {("a", "b"): 3.0}) == {("a", "b"): 5.0}

    def test_infinite_absorbs(self):
        out = combine({("a", "b"): math.inf}, {("a", "b"): 3.0})
        assert math.isinf(out[("a", "b")])

    def test_negative_entries_allowed_for_withdrawal(self):
        # N(P) carries negative capacities by design.
        out = combine({("a", "b"): 2.0}, {("a", "b"): -2.0})
        assert out[("a", "b")] == 0.0


class TestSubtract:
    def test_common_edges_reduced(self):
        assert subtract({("a", "b"): 5.0}, {("a", "b"): 2.0}) == {("a", "b"): 3.0}

    def test_left_only_edges_kept(self):
        assert subtract({("a", "b"): 5.0}, {("x", "y"): 2.0}) == {("a", "b"): 5.0}

    def test_right_only_edges_ignored(self):
        assert subtract({}, {("x", "y"): 2.0}) == {}

    def test_zeroed_edges_removed(self):
        assert subtract({("a", "b"): 2.0}, {("a", "b"): 2.0}) == {}

    def test_overdraw_raises(self):
        with pytest.raises(GraphError):
            subtract({("a", "b"): 1.0}, {("a", "b"): 2.0})

    def test_infinite_left_operand_survives(self):
        out = subtract({("a", "b"): math.inf}, {("a", "b"): 5.0})
        assert math.isinf(out[("a", "b")])

    def test_combine_subtract_round_trip(self):
        a = {("a", "b"): 2.0, ("b", "c"): 4.0}
        b = {("b", "c"): 1.0, ("c", "d"): 7.0}
        merged = combine(a, b)
        assert subtract(merged, b) == a


class TestInjectTimestamp:
    def test_split_spanning_hold_edge(self):
        caps = {(("u", 1), ("u", 5)): math.inf}
        out = inject_timestamp(caps, 3)
        assert math.isinf(out[(("u", 1), ("u", 3))])
        assert math.isinf(out[(("u", 3), ("u", 5))])
        assert (("u", 1), ("u", 5)) not in out

    def test_reverse_orientation_also_split(self):
        caps = {(("u", 5), ("u", 1)): 2.0}  # residual back-edge
        out = inject_timestamp(caps, 3)
        assert out[(("u", 5), ("u", 3))] == 2.0
        assert out[(("u", 3), ("u", 1))] == 2.0

    def test_nodes_already_having_the_stamp_untouched(self):
        caps = {
            (("u", 1), ("u", 5)): 2.0,
            (("u", 3), ("v", 3)): 1.0,  # u already has a tau=3 node
        }
        out = inject_timestamp(caps, 3)
        assert out[(("u", 1), ("u", 5))] == 2.0

    def test_non_spanning_edges_untouched(self):
        caps = {(("u", 1), ("u", 2)): 2.0, (("u", 1), ("v", 1)): 3.0}
        assert inject_timestamp(caps, 3) == caps


class TestAugmentingFlowNetwork:
    def test_single_path(self):
        n_p = augmenting_flow_network([(("s", "a", "t"), 2.0)])
        assert n_p[("s", "a")] == 2.0
        assert n_p[("a", "s")] == -2.0

    def test_opposite_paths_cancel(self):
        n_p = augmenting_flow_network(
            [(("s", "a"), 2.0), (("a", "s"), 2.0)]
        )
        assert n_p[("s", "a")] == 0.0
        assert n_p[("a", "s")] == 0.0

    def test_negative_flow_rejected(self):
        with pytest.raises(GraphError):
            augmenting_flow_network([(("s", "a"), -1.0)])

    def test_example7_withdrawal_identity(self, figure2_network):
        """Example 7: N(P) ⊎ N_f equals the original network N (modulo
        zero-capacity leftovers)."""
        original = capacity_map_of(figure2_network)
        s = figure2_network.index_of("s")
        t = figure2_network.index_of("t")
        dinic(figure2_network, s, t)
        residual = capacity_map_of(figure2_network)
        # The path set P: the flow decomposition of the Maxflow (equivalent
        # to the augmenting paths by definition of N(P)).
        from repro.flownet import decompose_into_paths

        decomposition = [
            (tuple(figure2_network.label_of(i) for i in path), amount)
            for path, amount in decompose_into_paths(figure2_network, s, t)
        ]
        n_p = augmenting_flow_network(decomposition)
        restored = combine(n_p, residual)
        for edge, capacity in original.items():
            assert restored.get(edge, 0.0) == pytest.approx(capacity)
        # Any extra edges must have zero capacity (the blue dashed edges of
        # Figure 7(b)).
        for edge, capacity in restored.items():
            if edge not in original:
                assert capacity == pytest.approx(0.0)


class TestResidualOf:
    def test_residual_definition(self):
        caps = {("a", "b"): 5.0}
        res = residual_of(caps, {("a", "b"): 2.0})
        assert res == {("a", "b"): 3.0, ("b", "a"): 2.0}

    def test_flow_violating_capacity_rejected(self):
        with pytest.raises(GraphError):
            residual_of({("a", "b"): 1.0}, {("a", "b"): 2.0})

    def test_saturated_edge_disappears_forward(self):
        res = residual_of({("a", "b"): 2.0}, {("a", "b"): 2.0})
        assert ("a", "b") not in res
        assert res[("b", "a")] == 2.0


class TestCapacityMapOf:
    def test_snapshot_skips_retired(self):
        net = FlowNetwork()
        net.add_edge_labeled("a", "b", 5.0)
        net.add_edge_labeled("dead", "b", 5.0)
        net.retire_label("dead")
        snap = capacity_map_of(net)
        assert ("dead", "b") not in snap
        assert snap[("a", "b")] == 5.0
