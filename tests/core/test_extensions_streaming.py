"""Tests for the streaming delta-BFlow monitor (future-work extension ii).

The central property: after finalize(), the monitor's answer equals the
offline ``find_bursting_flow`` over the same edges — asserted on hand
fixtures and on random streams.
"""

import random

import pytest

from repro import find_bursting_flow
from repro.exceptions import InvalidQueryError, InvalidTimestampError
from repro.extensions import StreamingBurstMonitor
from repro.temporal import TemporalFlowNetwork


def offline_answer(edges, source, sink, delta):
    network = TemporalFlowNetwork.from_tuples(edges)
    if source not in network or sink not in network:
        return None
    return find_bursting_flow(
        network, source=source, sink=sink, delta=delta, algorithm="bfq"
    )


BURST_STREAM = [
    ("s", "a", 2, 20.0),
    ("a", "t", 5, 20.0),
    ("s", "a", 10, 500.0),
    ("s", "b", 10, 400.0),
    ("a", "t", 12, 500.0),
    ("b", "t", 13, 400.0),
    ("s", "c", 20, 30.0),
    ("c", "t", 28, 30.0),
]


class TestValidation:
    def test_bad_delta(self):
        with pytest.raises(InvalidQueryError):
            StreamingBurstMonitor("s", "t", 0)

    def test_same_endpoints(self):
        with pytest.raises(InvalidQueryError):
            StreamingBurstMonitor("s", "s", 1)

    def test_stream_must_be_ordered(self):
        monitor = StreamingBurstMonitor("s", "t", 1)
        monitor.observe("s", "a", 5, 1.0)
        with pytest.raises(InvalidTimestampError, match="backwards"):
            monitor.observe("a", "t", 4, 1.0)

    def test_no_observe_after_finalize(self):
        monitor = StreamingBurstMonitor("s", "t", 1)
        monitor.observe("s", "t", 1, 1.0)
        monitor.finalize()
        with pytest.raises(InvalidTimestampError, match="finalized"):
            monitor.observe("s", "t", 9, 1.0)


class TestStreamingAnswers:
    def test_matches_offline_on_burst_stream(self):
        monitor = StreamingBurstMonitor("s", "t", 2)
        monitor.observe_batch(BURST_STREAM)
        record = monitor.finalize()
        offline = offline_answer(BURST_STREAM, "s", "t", 2)
        assert record.density == pytest.approx(offline.density)
        assert record.density == pytest.approx(300.0)

    def test_watermark_semantics(self):
        monitor = StreamingBurstMonitor("s", "t", 1)
        monitor.observe("s", "a", 1, 5.0)
        monitor.observe("a", "t", 2, 5.0)
        # tau=2 is still an open batch: not yet reflected.
        assert monitor.watermark == 1
        assert not monitor.best().found
        monitor.observe("s", "x", 9, 1.0)  # closes tau=2 (tau=9 stays open)
        assert monitor.watermark == 2
        assert monitor.best().found
        assert monitor.best().density == pytest.approx(5.0)

    def test_finalize_processes_trailing_batch(self):
        monitor = StreamingBurstMonitor("s", "t", 1)
        monitor.observe("s", "a", 1, 5.0)
        monitor.observe("a", "t", 2, 5.0)
        assert not monitor.best().found
        record = monitor.finalize()
        assert record.found
        assert record.density == pytest.approx(5.0)

    def test_corner_case_burst_near_horizon(self):
        # The burst sits so late that start + delta overshoots T_max.
        stream = [
            ("s", "x", 1, 1.0),
            ("x", "t", 2, 1.0),
            ("s", "a", 9, 50.0),
            ("a", "t", 10, 50.0),
        ]
        monitor = StreamingBurstMonitor("s", "t", 5)
        monitor.observe_batch(stream)
        record = monitor.finalize()
        offline = offline_answer(stream, "s", "t", 5)
        assert record.density == pytest.approx(offline.density)
        assert record.interval == (5, 10)

    def test_repeated_finalize_is_idempotent(self):
        monitor = StreamingBurstMonitor("s", "t", 1)
        monitor.observe("s", "t", 3, 2.0)
        first = monitor.finalize()
        second = monitor.finalize()
        assert first == second

    def test_stats_and_pruning(self):
        monitor = StreamingBurstMonitor("s", "t", 2)
        monitor.observe_batch(BURST_STREAM)
        monitor.finalize()
        stats = monitor.stats
        assert stats["maxflow_runs"] >= 1
        assert stats["live_windows"] >= 1
        # The weak tail windows after the big burst get pruned.
        assert stats["pruned_evaluations"] >= 1

    def test_empty_stream(self):
        monitor = StreamingBurstMonitor("s", "t", 1)
        record = monitor.finalize()
        assert not record.found


class TestStreamingMatchesOfflineRandomised:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_streams(self, seed):
        rng = random.Random(seed)
        nodes = [f"n{i}" for i in range(rng.randint(3, 6))]
        horizon = rng.randint(3, 12)
        edges = []
        for _ in range(rng.randint(5, 25)):
            u, v = rng.sample(nodes, 2)
            edges.append((u, v, rng.randint(1, horizon), float(rng.randint(1, 9))))
        edges.sort(key=lambda e: e[2])
        delta = rng.randint(1, max(1, horizon // 2))

        monitor = StreamingBurstMonitor("n0", "n1", delta)
        monitor.observe_batch(edges)
        record = monitor.finalize()

        offline = offline_answer(edges, "n0", "n1", delta)
        if offline is None:
            assert not record.found
            return
        assert record.density == pytest.approx(offline.density), (
            f"seed={seed} streaming disagrees with offline"
        )
