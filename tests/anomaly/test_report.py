"""Tests for the Table-3-style report rendering."""

from repro.anomaly import ScanFinding, format_case_study_table, format_finding_interval
from repro.temporal import TimestampCodec


def finding(delta: int, density: float, interval) -> ScanFinding:
    return ScanFinding("s", "t", delta, density, interval, density * 10)


class TestFormatting:
    def test_plain_interval(self):
        assert format_finding_interval(finding(1, 2.0, (3, 9))) == "[3, 9]"

    def test_missing_interval(self):
        assert format_finding_interval(finding(1, 0.0, None)) == "-"

    def test_codec_decodes_to_wall_clock(self):
        codec = TimestampCodec([100.5, 200.0, 300.0])
        text = format_finding_interval(finding(1, 2.0, (1, 3)), codec)
        assert text == "[100.5, 300.0]"

    def test_table_layout(self):
        table = format_case_study_table(
            [
                ("Q1", [finding(3, 26275.0, (10, 40)), finding(6, 22140.0, (10, 70))]),
                ("Q2", [finding(3, 74120.0, (5, 90))]),
            ]
        )
        lines = table.splitlines()
        assert "query" in lines[0] and "density" in lines[0]
        assert len(lines) == 2 + 3  # header + rule + three rows
        assert "26,275.0" in table
        assert "Q2" in table
