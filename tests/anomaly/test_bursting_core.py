"""Tests for the bursting-core baseline and the paper's contrast argument."""

import pytest

from repro import find_bursting_flow
from repro.anomaly import BurstingCore, core_flow_value, find_bursting_cores
from repro.exceptions import InvalidQueryError
from repro.temporal import TemporalFlowNetwork


def chatty_clique(value: float) -> list[tuple[str, str, int, float]]:
    """A 4-clique exchanging many tiny transfers inside [10, 12]."""
    members = ["c0", "c1", "c2", "c3"]
    edges = []
    tau = 10
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            edges.append((u, v, tau, value))
            edges.append((v, u, tau + 1, value))
            tau = 10 + (tau - 9) % 3
    return edges


@pytest.fixture
def contrast_network() -> TemporalFlowNetwork:
    """The paper's two counterexamples in one network:

    * a huge-value bursting *flow* along a low-degree path (never in a
      core), and
    * a chatty clique of near-zero-value transfers (a core with almost no
      flow).
    """
    edges = [
        # The bursting flow: 1000 units through a 3-hop path in [20, 23].
        ("s", "m1", 20, 1000.0),
        ("m1", "m2", 21, 1000.0),
        ("m2", "t", 23, 1000.0),
    ]
    edges += chatty_clique(value=0.5)
    return TemporalFlowNetwork.from_tuples(edges)


class TestCoreMining:
    def test_clique_is_a_core(self, contrast_network):
        cores = find_bursting_cores(contrast_network, l_threshold=3, delta=3)
        assert cores, "the chatty clique should form a bursting core"
        clique_cores = [c for c in cores if "c0" in c]
        assert clique_cores
        assert {"c0", "c1", "c2", "c3"} <= set(clique_cores[0].nodes)

    def test_path_nodes_not_in_cores(self, contrast_network):
        cores = find_bursting_cores(contrast_network, l_threshold=3, delta=3)
        for core in cores:
            for node in ("s", "m1", "m2", "t"):
                assert node not in core

    def test_parameter_validation(self, contrast_network):
        with pytest.raises(InvalidQueryError):
            find_bursting_cores(contrast_network, l_threshold=0, delta=3)
        with pytest.raises(InvalidQueryError):
            find_bursting_cores(contrast_network, l_threshold=3, delta=0)

    def test_empty_network(self):
        assert find_bursting_cores(TemporalFlowNetwork(), 2, 2) == []

    def test_threshold_monotonicity(self, contrast_network):
        low = find_bursting_cores(contrast_network, l_threshold=2, delta=3)
        high = find_bursting_cores(contrast_network, l_threshold=5, delta=3)
        low_nodes = set().union(*(c.nodes for c in low)) if low else set()
        high_nodes = set().union(*(c.nodes for c in high)) if high else set()
        assert high_nodes <= low_nodes

    def test_core_object_api(self):
        core = BurstingCore((1, 4), frozenset({"a", "b"}), 2)
        assert "a" in core
        assert core.size == 2


class TestPaperContrastArgument:
    """Related work, on [33]: 'there can be bursting flows in a non-core
    subgraph, whereas there can be bursting cores with small flow values'."""

    def test_bursting_flow_lives_outside_every_core(self, contrast_network):
        result = find_bursting_flow(
            contrast_network, source="s", sink="t", delta=2
        )
        assert result.density >= 1000.0 / 3.0
        cores = find_bursting_cores(contrast_network, l_threshold=3, delta=3)
        flow_nodes = {"s", "m1", "m2", "t"}
        for core in cores:
            assert not (flow_nodes & set(core.nodes))

    def test_bursting_core_carries_negligible_flow(self, contrast_network):
        cores = find_bursting_cores(contrast_network, l_threshold=3, delta=3)
        clique_core = next(c for c in cores if "c0" in c)
        value = core_flow_value(contrast_network, clique_core, "c0", "c3")
        burst = find_bursting_flow(
            contrast_network, source="s", sink="t", delta=2
        )
        assert value < burst.flow_value / 100
