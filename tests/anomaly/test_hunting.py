"""Tests for suspect-free burst hunting."""

import pytest

from repro.anomaly.hunting import NodeBurstScore, hunt_bursts, score_nodes
from repro.exceptions import InvalidQueryError
from repro.datasets import uniform_network, planted_burst
from repro.temporal import TemporalFlowNetwork


@pytest.fixture
def haystack() -> tuple[TemporalFlowNetwork, object]:
    """Background noise plus one planted burst."""
    network = uniform_network(40, 250, 400, seed=5, capacity_range=(1.0, 20.0))
    truth = planted_burst(
        network, "n0", "n1", seed=6, interval=(200, 215),
        volume=50_000.0, hops=3, num_mule_chains=2,
    )
    return network, truth


class TestScoring:
    def test_concentrated_emitter_ranks_first(self, haystack):
        network, truth = haystack
        scores = score_nodes(network, window=15, direction="out")
        assert scores[0].node == truth.source
        assert scores[0].concentration > 0.9

    def test_concentrated_collector_ranks_first(self, haystack):
        network, truth = haystack
        scores = score_nodes(network, window=15, direction="in")
        assert scores[0].node == truth.sink

    def test_steady_nodes_score_low(self):
        # One transfer per tick: no window concentrates the volume.
        network = TemporalFlowNetwork.from_tuples(
            [("steady", f"m{i}", i + 1, 10.0) for i in range(100)]
        )
        (score,) = score_nodes(network, window=5, direction="out")
        assert score.concentration < 0.1

    def test_min_volume_filter(self, haystack):
        network, truth = haystack
        scores = score_nodes(
            network, window=15, direction="out", min_volume=10_000.0
        )
        assert all(s.total_volume >= 10_000.0 for s in scores)
        assert scores  # the planted source passes

    def test_parameter_validation(self, haystack):
        network, _ = haystack
        with pytest.raises(InvalidQueryError):
            score_nodes(network, window=0)
        with pytest.raises(InvalidQueryError):
            score_nodes(network, window=3, direction="sideways")

    def test_score_properties(self):
        score = NodeBurstScore("x", total_volume=100.0, peak_volume=80.0,
                               peak_window=(3, 8))
        assert score.concentration == pytest.approx(0.8)
        assert score.score == pytest.approx(64.0)
        empty = NodeBurstScore("y", 0.0, 0.0, (0, 5))
        assert empty.concentration == 0.0


class TestHunting:
    def test_funnel_finds_the_planted_burst(self, haystack):
        network, truth = haystack
        report = hunt_bursts(network, delta=15, top_sources=4, top_sinks=4)
        assert report.findings
        top = report.top(1)[0]
        assert (top.source, top.sink) == (truth.source, truth.sink)
        assert top.density >= truth.density * 0.9

    def test_funnel_is_heuristic_and_can_miss(self):
        """A burst whose endpoints look individually calm slips through
        the screen — documented behaviour, not a bug."""
        # The source also drips volume all day, diluting its concentration
        # below many noisy nodes'.
        network = uniform_network(30, 400, 400, seed=8, capacity_range=(50.0, 90.0))
        planted_burst(
            network, "n0", "n1", seed=9, interval=(100, 140),
            volume=120.0, hops=3, num_mule_chains=1,
        )
        report = hunt_bursts(network, delta=10, top_sources=2, top_sinks=2)
        pairs = {(f.source, f.sink) for f in report.findings}
        assert ("n0", "n1") not in pairs  # screened out by design
