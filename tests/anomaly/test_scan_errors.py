"""Scan failure semantics: fail fast with a typed error, or record & go.

PR-8 satellite: a query blowing up mid-sweep used to abort the scan with
a bare exception that named nothing.  Now ``scan(on_error="raise")``
(the default) raises a typed :class:`ScanQueryError` carrying the exact
(source, sink, delta) that failed, and ``on_error="record"`` converts
each failure into a :class:`ScanError` row and keeps sweeping.
"""

import pytest

from repro.anomaly import BurstDetector
from repro.anomaly.detector import ScanError
from repro.exceptions import InvalidQueryError, ScanQueryError


@pytest.fixture
def network(burst_network):
    return burst_network


def poisoned(monkeypatch, fail_on):
    """Patch the detector's engine to fail for one (source, sink) pair."""
    from repro.anomaly import detector as detector_mod

    real = detector_mod.find_bursting_flow

    def selective(network, query, **kwargs):
        if (query.source, query.sink) == fail_on:
            raise RuntimeError("engine exploded")
        return real(network, query, **kwargs)

    monkeypatch.setattr(detector_mod, "find_bursting_flow", selective)


class TestRaiseMode:
    def test_typed_error_names_the_failing_query(self, network, monkeypatch):
        poisoned(monkeypatch, ("s", "t"))
        detector = BurstDetector(network)
        with pytest.raises(ScanQueryError) as excinfo:
            detector.scan(["s", "a"], ["t"], [2])
        error = excinfo.value
        assert (error.source, error.sink, error.delta) == ("s", "t", 2)
        assert "RuntimeError: engine exploded" in str(error)
        assert isinstance(error.__cause__, RuntimeError)  # chained via `from`

    def test_raise_is_the_default(self, network, monkeypatch):
        poisoned(monkeypatch, ("s", "t"))
        with pytest.raises(ScanQueryError):
            BurstDetector(network).scan(["s"], ["t"], [2])


class TestRecordMode:
    def test_failures_become_rows_and_the_sweep_continues(
        self, network, monkeypatch
    ):
        poisoned(monkeypatch, ("s", "t"))
        detector = BurstDetector(network)
        report = detector.scan(
            ["s", "a"], ["t"], [2, 3], on_error="record"
        )
        assert report.errors == [
            ScanError(source="s", sink="t", delta=2,
                      error="RuntimeError: engine exploded"),
            ScanError(source="s", sink="t", delta=3,
                      error="RuntimeError: engine exploded"),
        ]
        # The healthy combinations were all still answered.
        assert {(f.source, f.sink) for f in report.findings} == {("a", "t")}
        assert len(report.findings) == 2

    def test_clean_sweep_has_no_error_rows(self, network):
        report = BurstDetector(network).scan(
            ["s"], ["t"], [2], on_error="record"
        )
        assert report.errors == []
        assert len(report.findings) == 1


class TestValidation:
    def test_unknown_mode_is_rejected(self, network):
        with pytest.raises(InvalidQueryError, match="on_error"):
            BurstDetector(network).scan(["s"], ["t"], [2], on_error="ignore")
