"""Tests for the case-study burst detector."""

import pytest

from repro.anomaly import BurstDetector, ScanFinding
from repro.datasets import make_case_study, uniform_network, planted_burst
from repro.exceptions import InvalidQueryError
from repro.temporal import TemporalFlowNetwork


@pytest.fixture(scope="module")
def case_study():
    dataset = make_case_study(scale=0.25)
    horizon = dataset.network.num_timestamps
    deltas = [max(1, round(horizon * f)) for f in (0.03, 0.06, 0.09)]
    detector = BurstDetector(dataset.network)
    report = detector.scan(
        dataset.suspicious_sources + dataset.benign_sources[:2],
        dataset.suspicious_sinks + dataset.benign_sinks[:2],
        deltas,
    )
    return dataset, deltas, report


class TestScan:
    def test_all_combinations_scanned(self, case_study):
        dataset, deltas, report = case_study
        sources = 1 + 2
        sinks = 1 + 2
        assert len(report.findings) == sources * sinks * len(deltas)

    def test_planted_burst_flagged_first(self, case_study):
        dataset, _, report = case_study
        assert report.flagged
        top = report.flagged[0]
        assert top.source == dataset.suspicious_sources[0]
        assert top.sink == dataset.suspicious_sinks[0]

    def test_benign_slow_flow_not_flagged(self, case_study):
        dataset, _, report = case_study
        benign_pair = (dataset.benign_sources[0], dataset.benign_sinks[0])
        for finding in report.flagged:
            assert (finding.source, finding.sink) != benign_pair

    def test_density_antitone_in_delta_for_suspects(self, case_study):
        dataset, deltas, report = case_study
        densities = [
            report.finding_for(
                dataset.suspicious_sources[0], dataset.suspicious_sinks[0], d
            ).density
            for d in deltas
        ]
        assert densities == sorted(densities, reverse=True)

    def test_top_ranking(self, case_study):
        _, __, report = case_study
        top = report.top(3)
        assert len(top) == 3
        assert top[0].density >= top[1].density >= top[2].density

    def test_finding_for_missing_returns_none(self, case_study):
        _, __, report = case_study
        assert report.finding_for("ghost", "ghost2", 1) is None


class TestDetectorEdgeCases:
    def test_same_node_pairs_skipped(self):
        network = TemporalFlowNetwork.from_tuples(
            [("a", "b", 1, 1.0), ("b", "c", 2, 1.0), ("c", "d", 3, 1.0)]
        )
        detector = BurstDetector(network)
        report = detector.scan(["a"], ["a"], [1])
        assert report.findings == []

    def test_unknown_nodes_skipped(self):
        network = TemporalFlowNetwork.from_tuples([("a", "b", 1, 1.0), ("b", "c", 2, 1.0)])
        detector = BurstDetector(network)
        report = detector.scan(["a", "ghost"], ["c"], [1])
        assert len(report.findings) == 1

    def test_too_few_positives_flags_nothing(self):
        network = TemporalFlowNetwork.from_tuples(
            [("a", "b", 1, 5.0), ("b", "c", 2, 5.0)]
        )
        detector = BurstDetector(network)
        report = detector.scan(["a"], ["c"], [1])
        assert report.flagged == []

    def test_bad_interval_fraction_rejected(self):
        network = TemporalFlowNetwork.from_tuples([("a", "b", 1, 1.0)])
        with pytest.raises(InvalidQueryError):
            BurstDetector(network, max_interval_fraction=0.0)

    def test_long_interval_outliers_not_flagged(self):
        """A huge but slow flow must not be flagged even if it is a
        density outlier relative to tiny background flows."""
        network = uniform_network(40, 120, 300, seed=2, capacity_range=(1.0, 2.0))
        planted_burst(
            network, "n0", "n1", seed=3, interval=(10, 290), volume=100000.0
        )
        detector = BurstDetector(network, max_interval_fraction=0.2)
        report = detector.scan(["n0"], ["n1"], [3])
        assert report.flagged == []


class TestScanFinding:
    def test_interval_length(self):
        finding = ScanFinding("a", "b", 1, 2.0, (3, 9), 12.0)
        assert finding.interval_length == 6
        empty = ScanFinding("a", "b", 1, 0.0, None, 0.0)
        assert empty.interval_length is None
