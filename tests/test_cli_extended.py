"""Tests for the trail / profile / self-check CLI subcommands."""

import pytest

from repro.cli import main
from repro.temporal import TemporalFlowNetwork, save_edge_list


@pytest.fixture
def edges_csv(tmp_path):
    network = TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 10, 500.0),
            ("s", "b", 10, 400.0),
            ("a", "t", 12, 500.0),
            ("b", "t", 13, 400.0),
            ("s", "a", 2, 20.0),
            ("a", "t", 5, 20.0),
        ]
    )
    path = tmp_path / "edges.csv"
    save_edge_list(network, path)
    return path


class TestTrail:
    def test_prints_trails(self, edges_csv, capsys):
        code = main(
            [
                "trail", str(edges_csv),
                "--source", "s", "--sink", "t", "--delta", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trails (largest first)" in out
        assert "s -@10-> a -@12-> t" in out
        assert "(500 units)" in out

    def test_top_limits_output(self, edges_csv, capsys):
        main(
            [
                "trail", str(edges_csv),
                "--source", "s", "--sink", "t", "--delta", "2",
                "--top", "1",
            ]
        )
        out = capsys.readouterr().out
        assert "... and 1 more" in out

    def test_no_flow(self, edges_csv, capsys):
        code = main(
            [
                "trail", str(edges_csv),
                "--source", "t", "--sink", "s", "--delta", "1",
            ]
        )
        assert code == 1


class TestProfile:
    def test_default_ladder(self, edges_csv, capsys):
        code = main(
            ["profile", str(edges_csv), "--source", "s", "--sink", "t"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "delta" in out and "density" in out
        assert "suggested delta" in out

    def test_explicit_deltas(self, edges_csv, capsys):
        code = main(
            [
                "profile", str(edges_csv),
                "--source", "s", "--sink", "t", "--deltas", "2,10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "300" in out  # density at delta=2


class TestSelfCheck:
    def test_runs_clean(self, capsys):
        assert main(["self-check"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 4


class TestHunt:
    def test_hunt_finds_planted_burst(self, tmp_path, capsys):
        from repro.datasets import uniform_network, planted_burst

        network = uniform_network(30, 150, 300, seed=12, capacity_range=(1.0, 15.0))
        planted_burst(
            network, "n2", "n3", seed=13, interval=(100, 115),
            volume=40_000.0,
        )
        path = tmp_path / "hunt.csv"
        save_edge_list(network, path)
        code = main(["hunt", str(path), "--delta", "15", "--top-sources", "3",
                     "--top-sinks", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "n2 -> n3" in out
        assert "screened" in out
