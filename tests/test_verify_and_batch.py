"""Tests for the self-check module and the batch query engine."""

import multiprocessing

import pytest

from repro import BurstingFlowQuery, find_bursting_flow
from repro.core import batch as batch_module
from repro.core.batch import answer_many
from repro.core.engine import DEFAULT_ALGORITHM
from repro.exceptions import InvalidQueryError
from repro.verify import SelfCheckError, self_check


class TestSelfCheck:
    def test_all_checks_pass(self):
        outcomes = self_check(trials=4)
        assert set(outcomes) == {
            "figure2_maxflow",
            "oracle_agreement",
            "lemma1_round_trip",
            "streaming_equivalence",
        }
        for outcome in outcomes.values():
            assert outcome  # every check reports a summary

    def test_deterministic(self):
        assert self_check(trials=3) == self_check(trials=3)

    def test_error_type_exists(self):
        assert issubclass(SelfCheckError, Exception)


class TestBatch:
    @pytest.fixture
    def queries(self):
        return [
            BurstingFlowQuery("s", "t", 2),
            BurstingFlowQuery("s", "t", 5),
            BurstingFlowQuery("s", "t", 10),
        ]

    def test_sequential_matches_individual(self, burst_network, queries):
        batch = answer_many(burst_network, queries)
        for query, result in zip(queries, batch):
            single = find_bursting_flow(burst_network, query)
            assert result.density == pytest.approx(single.density)
            assert result.interval == single.interval

    def test_parallel_matches_sequential(self, burst_network, queries):
        sequential = answer_many(burst_network, queries, processes=None)
        parallel = answer_many(burst_network, queries, processes=2)
        assert [r.density for r in parallel] == pytest.approx(
            [r.density for r in sequential]
        )
        assert [r.interval for r in parallel] == [r.interval for r in sequential]

    def test_result_order_is_input_order(self, burst_network, queries):
        results = answer_many(burst_network, queries, processes=2)
        # Densities are antitone in delta, so order is verifiable.
        densities = [r.density for r in results]
        assert densities == sorted(densities, reverse=True)

    def test_empty_batch(self, burst_network):
        assert answer_many(burst_network, []) == []

    def test_unknown_algorithm_fails_fast(self, burst_network, queries):
        with pytest.raises(InvalidQueryError):
            answer_many(burst_network, queries, algorithm="wizardry")

    def test_invalid_query_fails_before_any_work(self, burst_network):
        bad = [BurstingFlowQuery("s", "ghost", 2)]
        with pytest.raises(InvalidQueryError):
            answer_many(burst_network, bad)

    def test_cpu_count_sentinel(self, burst_network, queries):
        results = answer_many(burst_network, queries, processes=0)
        assert len(results) == len(queries)

    @pytest.mark.parametrize("method", ["fork", "forkserver", "spawn"])
    def test_start_methods_match_sequential(self, burst_network, queries, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable on this platform")
        sequential = answer_many(burst_network, queries, processes=None)
        parallel = answer_many(
            burst_network, queries, processes=2, mp_context=method
        )
        assert [r.density for r in parallel] == pytest.approx(
            [r.density for r in sequential]
        )
        assert [r.interval for r in parallel] == [r.interval for r in sequential]

    def test_algorithm_does_not_leak_between_batches(self, burst_network, queries):
        # Regression: a parallel batch used to leave its algorithm in the
        # module globals, so a later fork-based batch could inherit it.
        answer_many(burst_network, queries, processes=2, algorithm="bfq+")
        assert batch_module._WORKER_ALGORITHM == DEFAULT_ALGORITHM
        assert batch_module._WORKER_NETWORK is None
        with pytest.raises(InvalidQueryError):
            answer_many(burst_network, queries, processes=2, algorithm="nope")
        assert batch_module._WORKER_ALGORITHM == DEFAULT_ALGORITHM


class TestBatchCrashRecovery:
    """answer_many survives one BrokenProcessPool and resubmits the rest."""

    @pytest.fixture
    def queries(self):
        return [
            BurstingFlowQuery("s", "t", 2),
            BurstingFlowQuery("s", "t", 5),
            BurstingFlowQuery("s", "t", 10),
            BurstingFlowQuery("s", "t", 3),
        ]

    @pytest.fixture
    def crash_once_algorithm(self, tmp_path):
        """Register an algorithm whose first worker call kills the worker.

        The sentinel file makes the crash one-shot: the first solve writes
        it and hard-exits the worker process (breaking the pool); every
        retry finds it and answers normally.  Requires the fork start
        method so the children inherit the registry entry.
        """
        import os

        from repro.core import engine as engine_module

        sentinel = tmp_path / "crashed-once"

        def suicide_bfq(network, query, **kwargs):
            if not sentinel.exists():
                sentinel.write_text("boom")
                os._exit(1)
            return find_bursting_flow(network, query)

        engine_module.ALGORITHMS["crash-once"] = suicide_bfq
        try:
            yield "crash-once"
        finally:
            del engine_module.ALGORITHMS["crash-once"]

    def test_recovers_from_one_broken_pool(
        self, burst_network, queries, crash_once_algorithm
    ):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        results = answer_many(
            burst_network,
            queries,
            processes=2,
            algorithm=crash_once_algorithm,
            mp_context="fork",
        )
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            expected = find_bursting_flow(burst_network, query)
            assert result.density == pytest.approx(expected.density)
            assert result.interval == expected.interval

    def test_second_crash_propagates(self, burst_network, queries, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        import os

        from concurrent.futures.process import BrokenProcessPool

        from repro.core import engine as engine_module

        def always_dies(network, query, **kwargs):
            os._exit(1)

        engine_module.ALGORITHMS["always-dies"] = always_dies
        try:
            with pytest.raises(BrokenProcessPool):
                answer_many(
                    burst_network,
                    queries,
                    processes=2,
                    algorithm="always-dies",
                    mp_context="fork",
                )
        finally:
            del engine_module.ALGORITHMS["always-dies"]
        # Worker bookkeeping is reset even on the failure path.
        assert batch_module._WORKER_NETWORK is None
        assert batch_module._WORKER_ALGORITHM == DEFAULT_ALGORITHM
