"""Tests for the earliest-arrival flow baselines."""

import pytest

from repro.baselines import (
    arrival_profile,
    earliest_arrival_time,
    max_flow_by_deadline,
)
from repro.exceptions import InvalidQueryError
from repro.temporal import TemporalFlowNetwork


@pytest.fixture
def staged() -> TemporalFlowNetwork:
    """Flow arrives at t in stages: 2 units by tau=3, 3 more by tau=7."""
    return TemporalFlowNetwork.from_tuples(
        [
            ("s", "a", 1, 5.0),
            ("a", "t", 3, 2.0),
            ("a", "t", 7, 3.0),
            ("s", "b", 8, 4.0),
            ("b", "t", 9, 4.0),
        ]
    )


class TestEarliestArrivalTime:
    def test_first_possible_arrival(self, staged):
        assert earliest_arrival_time(staged, "s", "t") == 3

    def test_unreachable(self):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 1, 1.0), ("b", "t", 2, 1.0)]
        )
        assert earliest_arrival_time(network, "s", "t") is None

    def test_unknown_nodes_rejected(self, staged):
        with pytest.raises(InvalidQueryError):
            earliest_arrival_time(staged, "s", "ghost")


class TestMaxFlowByDeadline:
    def test_staged_deadlines(self, staged):
        assert max_flow_by_deadline(staged, "s", "t", 2) == 0.0
        assert max_flow_by_deadline(staged, "s", "t", 3) == pytest.approx(2.0)
        assert max_flow_by_deadline(staged, "s", "t", 7) == pytest.approx(5.0)
        assert max_flow_by_deadline(staged, "s", "t", 9) == pytest.approx(9.0)

    def test_deadline_before_horizon(self, staged):
        assert max_flow_by_deadline(staged, "s", "t", 0) == 0.0

    def test_monotone_in_deadline(self, staged):
        values = [
            max_flow_by_deadline(staged, "s", "t", deadline)
            for deadline in range(1, 10)
        ]
        assert values == sorted(values)


class TestArrivalProfile:
    def test_profile_steps(self, staged):
        profile = arrival_profile(staged, "s", "t")
        assert profile == [
            (3, pytest.approx(2.0)),
            (7, pytest.approx(5.0)),
            (9, pytest.approx(9.0)),
        ]

    def test_profile_matches_pointwise_deadlines(self, staged):
        for stamp, value in arrival_profile(staged, "s", "t"):
            assert value == pytest.approx(
                max_flow_by_deadline(staged, "s", "t", stamp)
            )

    def test_sink_without_in_edges(self):
        network = TemporalFlowNetwork.from_tuples([("t", "s", 1, 1.0)])
        assert arrival_profile(network, "s", "t") == []

    def test_contrast_with_bursting_flow(self, staged):
        """Earliest-arrival optimises *when*, delta-BFlow *how dense*:
        the earliest arrival is at tau=3, but the densest window is the
        late 4-unit burst [8, 9]."""
        from repro import find_bursting_flow

        burst = find_bursting_flow(staged, source="s", sink="t", delta=1)
        assert burst.interval == (8, 9)
        assert earliest_arrival_time(staged, "s", "t") == 3
