"""Tests for the naive O(|T|^2) oracle."""

import pytest

from repro import BurstingFlowQuery, bfq
from repro.baselines import naive_bfq
from repro.temporal import TemporalFlowNetwork


class TestNaive:
    def test_matches_bfq_on_burst(self, burst_network):
        query = BurstingFlowQuery("s", "t", 2)
        assert naive_bfq(burst_network, query).density == pytest.approx(
            bfq(burst_network, query).density
        )

    def test_enumerates_all_windows(self, chain_network):
        # T = 1..3, delta = 1: windows (1,2) (1,3) (2,3) -> 3 candidates.
        result = naive_bfq(chain_network, BurstingFlowQuery("s", "t", 1))
        assert result.stats.candidates_enumerated == 3

    def test_delta_longer_than_horizon(self, chain_network):
        result = naive_bfq(chain_network, BurstingFlowQuery("s", "t", 9))
        assert not result.found

    def test_window_budget_guard(self):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", tau, 1.0) for tau in range(1, 60)]
            + [("a", "t", tau, 1.0) for tau in range(1, 60)]
        )
        with pytest.raises(ValueError, match="max_windows"):
            naive_bfq(network, BurstingFlowQuery("s", "t", 1), max_windows=10)

    def test_budget_disabled(self, chain_network):
        result = naive_bfq(
            chain_network, BurstingFlowQuery("s", "t", 1), max_windows=None
        )
        assert result.found
