"""Tests for the NetworkX cross-check backend."""

import pytest

from repro import BurstingFlowQuery, bfq
from repro.baselines import networkx_bfq, networkx_maxflow_value, to_networkx
from repro.core import build_transformed_network
from repro.flownet import dinic
from repro.temporal import TemporalFlowNetwork


class TestConversion:
    def test_transformed_network_round_trip(self, burst_network):
        transformed = build_transformed_network(burst_network, "s", "t", 1, 28)
        graph = to_networkx(transformed)
        assert graph.number_of_nodes() == transformed.num_nodes
        # Hold edges have no capacity attribute (unbounded in networkx).
        unbounded = [
            (u, v) for u, v, data in graph.edges(data=True) if "capacity" not in data
        ]
        assert unbounded, "expected unbounded hold edges"

    def test_maxflow_value_agrees_with_dinic(self, burst_network):
        transformed = build_transformed_network(burst_network, "s", "t", 1, 28)
        nx_value = networkx_maxflow_value(transformed)
        our_value = dinic(
            transformed.flow_network,
            transformed.source_index,
            transformed.sink_index,
        ).value
        assert nx_value == pytest.approx(our_value)


class TestNetworkxBfq:
    def test_agrees_with_bfq(self, burst_network):
        query = BurstingFlowQuery("s", "t", 2)
        ours = bfq(burst_network, query)
        theirs = networkx_bfq(burst_network, query)
        assert theirs.density == pytest.approx(ours.density)
        assert theirs.interval == ours.interval

    def test_agrees_on_random_networks(self):
        from tests.conftest import random_temporal_network

        for seed in range(12):
            network = random_temporal_network(seed)
            if "n0" not in network or "n1" not in network:
                continue
            query = BurstingFlowQuery("n0", "n1", 1)
            ours = bfq(network, query)
            theirs = networkx_bfq(network, query)
            assert theirs.density == pytest.approx(ours.density), f"seed {seed}"

    def test_empty_answer(self):
        network = TemporalFlowNetwork.from_tuples(
            [("s", "a", 1, 1.0), ("b", "t", 2, 1.0)]
        )
        result = networkx_bfq(network, BurstingFlowQuery("s", "t", 1))
        assert not result.found
