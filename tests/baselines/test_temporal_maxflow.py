"""Tests for the whole-horizon temporal Maxflow baselines."""

import pytest

from repro.baselines import greedy_transfer_flow, temporal_maxflow
from repro.temporal import TemporalFlowNetwork


class TestExactTemporalMaxflow:
    def test_simple_chain(self, chain_network):
        result = temporal_maxflow(chain_network, "s", "t")
        assert result.value == pytest.approx(5.0)
        assert result.interval == (1, 3)
        assert result.density == pytest.approx(5.0 / 2.0)

    def test_burst_network_totals_everything(self, burst_network):
        result = temporal_maxflow(burst_network, "s", "t")
        assert result.value == pytest.approx(950.0)  # 900 burst + 20 + 30

    def test_misses_burstiness(self, burst_network):
        """The related-work contrast: whole-horizon Maxflow has a tiny
        density even though a huge burst exists."""
        from repro import find_bursting_flow

        horizon = temporal_maxflow(burst_network, "s", "t")
        burst = find_bursting_flow(burst_network, source="s", sink="t", delta=2)
        assert burst.density > 5 * horizon.density


class TestGreedyTransfer:
    def test_chain_fully_transfers(self, chain_network):
        result = greedy_transfer_flow(chain_network, "s", "t")
        assert result.value == pytest.approx(5.0)

    def test_lower_bounds_exact(self, burst_network):
        greedy = greedy_transfer_flow(burst_network, "s", "t")
        exact = temporal_maxflow(burst_network, "s", "t")
        assert greedy.value <= exact.value + 1e-9

    def test_greedy_can_be_suboptimal(self):
        """Greedy pushes everything down a dead end and loses value."""
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "a", 1, 5.0),
                ("a", "dead", 2, 5.0),  # greedy drains a's value here
                ("a", "t", 3, 5.0),
            ]
        )
        greedy = greedy_transfer_flow(network, "s", "t")
        exact = temporal_maxflow(network, "s", "t")
        assert exact.value == pytest.approx(5.0)
        assert greedy.value < exact.value

    def test_value_never_leaves_sink(self):
        network = TemporalFlowNetwork.from_tuples(
            [
                ("s", "t", 1, 5.0),
                ("t", "x", 2, 5.0),
            ]
        )
        result = greedy_transfer_flow(network, "s", "t")
        assert result.value == pytest.approx(5.0)
