"""Pattern-store durability tests: stable ids, dedupe, crash injection.

The store's contract is the acceptance criterion of the mining PR: a
pattern's id is a pure function of its content (endpoints, interval,
canonical evidence), so re-scans and restarts derive the *same* id set
with zero duplicates — and the crash-injection harness proves every
``os.fsync`` / ``os.replace`` the write path makes is a safe place to
die.
"""

import contextlib

import pytest

from repro.exceptions import ReproError
from repro.mining.store import (
    PatternRecord,
    PatternStore,
    canonical_evidence,
    pattern_hash,
    pattern_id_for,
)
from repro.temporal import TemporalFlowNetwork
from tests.mining.conftest import planted_edges
from tests.store.crash import SimulatedCrash, count_calls, crash_on


def record_for(index, *, delta=4, epoch=0, z=0.0):
    """A synthetic record; content (and so the id) depends only on index."""
    evidence = ((f"s{index}", f"t{index}", index, 1.0),)
    hash_hex = pattern_hash(
        f"s{index}", f"t{index}", (index, index + 4), evidence
    )
    return PatternRecord(
        pattern_id=pattern_id_for(hash_hex),
        pattern_hash=hash_hex,
        pattern_type="bursting_flow",
        source=f"s{index}",
        sink=f"t{index}",
        delta=delta,
        interval=(index, index + 4),
        density=float(index + 1),
        flow_value=float(index + 1),
        epoch=epoch,
        detection_method="test",
        z_score=z,
        source_concentration=0.0,
        sink_concentration=0.0,
        evidence=evidence,
    )


class TestContentAddressing:
    def test_scan_context_is_outside_the_hash(self):
        a = record_for(1, delta=4, epoch=0, z=0.0)
        b = record_for(1, delta=9, epoch=77, z=12.5)
        assert a.pattern_id == b.pattern_id
        assert a.pattern_hash == b.pattern_hash

    def test_content_changes_the_id(self):
        assert record_for(1).pattern_id != record_for(2).pattern_id

    def test_forged_hash_is_refused(self, tmp_path):
        real = record_for(1)
        forged = PatternRecord(
            **{
                **{f: getattr(real, f) for f in real.__dataclass_fields__},
                "pattern_hash": record_for(2).pattern_hash,
            }
        )
        with PatternStore(tmp_path) as store:
            with pytest.raises(ReproError, match="forgeable"):
                store.add(forged)

    def test_canonical_evidence_is_order_independent(self):
        edges = planted_edges()
        network = TemporalFlowNetwork.from_tuples(edges)
        shuffled = TemporalFlowNetwork.from_tuples(
            list(reversed(edges))
        )
        a = canonical_evidence(network, "s_star", "t_star", (20, 24))
        b = canonical_evidence(shuffled, "s_star", "t_star", (20, 24))
        assert a == b
        assert a  # the planted chain has evidence
        # Only path edges qualify: background chains never appear.
        assert all(u in ("s_star", "mid") for u, _, _, _ in a)


class TestDedupeAndReplay:
    def test_add_dedupes_second_insert(self, tmp_path):
        with PatternStore(tmp_path) as store:
            assert store.add(record_for(1)) is True
            assert store.add(record_for(1, epoch=5)) is False
            assert len(store) == 1

    def test_reopen_replays_the_same_ids(self, tmp_path):
        with PatternStore(tmp_path) as store:
            for i in range(5):
                store.add(record_for(i))
            before = store.ids()
        with PatternStore(tmp_path) as reopened:
            assert reopened.ids() == before
            assert reopened.add(record_for(2)) is False  # still dedupes

    def test_compact_preserves_every_record(self, tmp_path):
        with PatternStore(tmp_path) as store:
            for i in range(4):
                store.add(record_for(i))
            store.compact()
            before = store.ids()
        with PatternStore(tmp_path) as reopened:
            assert reopened.ids() == before
            assert reopened.get(record_for(3).pattern_id) == record_for(3)


class TestQuery:
    def fill(self, store):
        for i in range(6):
            store.add(record_for(i))

    def test_filters(self, tmp_path):
        with PatternStore(tmp_path) as store:
            self.fill(store)
            assert [r.source for r in store.query(source="s2")] == ["s2"]
            assert [r.sink for r in store.query(sink="t4")] == ["t4"]
            dense = store.query(min_density=4.0)
            assert all(r.density >= 4.0 for r in dense)
            assert len(dense) == 3
            # Interval intersection: record i spans [i, i+4].
            overlapping = store.query(since=4, until=5)
            assert {r.interval[0] for r in overlapping} == {0, 1, 2, 3, 4, 5}
            assert store.query(until=0)[0].interval[0] == 0

    def test_order_is_density_desc_and_limit_applies(self, tmp_path):
        with PatternStore(tmp_path) as store:
            self.fill(store)
            densities = [r.density for r in store.query()]
            assert densities == sorted(densities, reverse=True)
            assert len(store.query(limit=2)) == 2
            assert store.query(limit=0) == []


class TestPrune:
    def fill(self, store, *, count=6):
        for i in range(count):
            store.add(record_for(i, epoch=i))

    def test_prune_by_age_drops_only_old_epochs(self, tmp_path):
        with PatternStore(tmp_path) as store:
            self.fill(store)  # epochs 0..5
            dropped = store.prune(max_age_epochs=2)
            assert dropped == 3
            assert {r.epoch for r in store} == {3, 4, 5}

    def test_prune_now_epoch_override(self, tmp_path):
        with PatternStore(tmp_path) as store:
            self.fill(store)
            assert store.prune(max_age_epochs=2, now_epoch=10) == 6
            assert len(store) == 0

    def test_prune_by_count_keeps_newest(self, tmp_path):
        with PatternStore(tmp_path) as store:
            self.fill(store)
            assert store.prune(max_patterns=2) == 4
            assert {r.epoch for r in store} == {4, 5}

    def test_prune_combines_both_bounds(self, tmp_path):
        with PatternStore(tmp_path) as store:
            self.fill(store)
            assert store.prune(max_age_epochs=3, max_patterns=2) == 4
            assert {r.epoch for r in store} == {4, 5}

    def test_prune_is_durable_across_reopen(self, tmp_path):
        with PatternStore(tmp_path) as store:
            self.fill(store)
            store.prune(max_patterns=3)
            survivors = store.ids()
        with PatternStore(tmp_path) as reopened:
            assert reopened.ids() == survivors
            assert len(reopened) == 3

    def test_prune_noop_returns_zero(self, tmp_path):
        with PatternStore(tmp_path / "filled") as store:
            self.fill(store, count=2)
            assert store.prune(max_patterns=10, max_age_epochs=100) == 0
            assert len(store) == 2
        with PatternStore(tmp_path / "empty") as empty:
            assert empty.prune(max_patterns=0) == 0

    def test_prune_requires_a_bound(self, tmp_path):
        with PatternStore(tmp_path) as store:
            with pytest.raises(ReproError):
                store.prune()
            with pytest.raises(ReproError):
                store.prune(max_age_epochs=-1)
            with pytest.raises(ReproError):
                store.prune(max_patterns=-1)


class TestCrashInjection:
    """Die on every durability syscall the scripted workload makes."""

    PATTERNS = 6

    def run_workload(self, directory, acked):
        """Add six patterns, compacting midway; ``acked`` records the ids
        the store *acknowledged* (add returned) before any crash."""
        store = PatternStore(directory, fsync=True)
        try:
            for i in range(self.PATTERNS):
                record = record_for(i)
                store.add(record)
                acked.append(record.pattern_id)
                if i == 2:
                    store.compact()
        finally:
            with contextlib.suppress(Exception):
                store.close()

    @pytest.mark.parametrize("func_name", ["fsync", "replace"])
    def test_acked_patterns_survive_every_crash_point(
        self, tmp_path, func_name
    ):
        baseline = tmp_path / "baseline"
        total = count_calls(
            func_name, lambda: self.run_workload(baseline, [])
        )
        assert total >= 1, f"workload makes no os.{func_name} calls?"
        for call_index in range(1, total + 1):
            directory = tmp_path / f"{func_name}-{call_index}"
            acked = []
            with pytest.raises(SimulatedCrash):
                with crash_on(func_name, call_index):
                    self.run_workload(directory, acked)
            with PatternStore(directory) as recovered:
                ids = recovered.ids()
                # Every acknowledged pattern survived...
                assert ids >= set(acked), (
                    f"crash at os.{func_name} #{call_index} lost acked "
                    f"patterns: {set(acked) - ids}"
                )
                # ...nothing was resurrected from thin air...
                written = {
                    record_for(i).pattern_id for i in range(self.PATTERNS)
                }
                assert ids <= written
                # ...and replay produced zero duplicates (ids is a set by
                # construction; verify the records themselves round-trip).
                for pattern_id in ids:
                    index = int(recovered.get(pattern_id).source[1:])
                    assert recovered.get(pattern_id) == record_for(index)

    @pytest.mark.parametrize("func_name", ["fsync", "replace"])
    def test_prune_crash_never_loses_survivors(self, tmp_path, func_name):
        """Die on every durability syscall of the prune compaction: the
        recovered store holds either the pre-prune set or exactly the
        survivors — never fewer records than the policy retains."""

        def workload(directory):
            store = PatternStore(directory, fsync=True)
            try:
                for i in range(self.PATTERNS):
                    store.add(record_for(i, epoch=i))
                store.prune(max_patterns=2)
            finally:
                with contextlib.suppress(Exception):
                    store.close()

        full = {record_for(i).pattern_id for i in range(self.PATTERNS)}
        survivors = {
            record_for(i).pattern_id
            for i in (self.PATTERNS - 2, self.PATTERNS - 1)
        }
        total = count_calls(
            func_name, lambda: workload(tmp_path / "baseline")
        )
        assert total >= 1
        for call_index in range(1, total + 1):
            directory = tmp_path / f"{func_name}-{call_index}"
            with pytest.raises(SimulatedCrash):
                with crash_on(func_name, call_index):
                    workload(directory)
            prefixes = [
                {record_for(i).pattern_id for i in range(k)}
                for k in range(self.PATTERNS + 1)
            ]
            with PatternStore(directory) as recovered:
                ids = recovered.ids()
                assert ids <= full
                # Atomicity: either the crash predates the compaction
                # (some prefix of the adds is on disk) or the swap
                # completed and exactly the survivors remain.
                assert ids == survivors or ids in prefixes, (
                    f"crash at os.{func_name} #{call_index} left a "
                    f"torn prune: {sorted(ids)}"
                )

    def test_kill_between_scans_never_duplicates(self, tmp_path):
        """Crash mid-run, recover, re-add everything: same id set."""
        acked = []
        fsyncs = count_calls(
            "fsync", lambda: self.run_workload(tmp_path / "probe", [])
        )
        with pytest.raises(SimulatedCrash):
            with crash_on("fsync", max(fsyncs // 2, 1)):
                self.run_workload(tmp_path / "store", acked)
        with PatternStore(tmp_path / "store") as recovered:
            for i in range(self.PATTERNS):  # the "re-scan after restart"
                recovered.add(record_for(i))
            assert recovered.ids() == {
                record_for(i).pattern_id for i in range(self.PATTERNS)
            }
