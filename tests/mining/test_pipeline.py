"""End-to-end pipeline tests: funnel recall, dedupe, restart stability.

The full contract in one place: a scan over the planted-laundering
network must find the planted burst (recall), confirm it with answers
byte-identical to the direct engine (differential), persist it under a
content-derived id, and derive the *same* id on any re-scan — including
one from a process that recovered the store from disk.
"""

import pytest

from repro import BurstingFlowQuery, find_bursting_flow
from repro.exceptions import InvalidQueryError
from repro.mining import (
    MiningBackendError,
    MiningConfig,
    MiningPipeline,
    PatternStore,
    mining_bfq,
)
from repro.temporal import TemporalEdge, TemporalFlowNetwork

from tests.mining.conftest import PLANTED_PAIRS, PLANTED_WINDOW


@pytest.fixture
def store(tmp_path):
    with PatternStore(tmp_path / "patterns") as store:
        yield store


class TestScanRecall:
    def test_planted_burst_is_found_and_persisted(
        self, planted_network, store
    ):
        pipeline = MiningPipeline(planted_network, store)
        outcome = pipeline.scan(4)
        persisted = {(r.source, r.sink) for r in outcome.records}
        assert persisted == set(PLANTED_PAIRS)
        assert outcome.deduped == 0
        assert len(outcome.new_ids) == len(PLANTED_PAIRS)
        for record in outcome.records:
            assert record.interval == PLANTED_WINDOW
            assert record.z_score >= 3.5
            assert record.detection_method == "mining_funnel"
            assert record.evidence  # flagged patterns carry their proof

    def test_confirmation_matches_the_direct_engine(
        self, planted_network, store
    ):
        pipeline = MiningPipeline(planted_network, store)
        outcome = pipeline.scan(4)
        for record in outcome.records:
            direct = find_bursting_flow(
                planted_network,
                BurstingFlowQuery(record.source, record.sink, record.delta),
            )
            assert record.density == direct.density
            assert record.interval == direct.interval
            assert record.flow_value == direct.flow_value

    def test_funnel_beats_the_exhaustive_sweep(self, planted_network, store):
        config = MiningConfig(top_sources=4, top_sinks=4)
        pipeline = MiningPipeline(planted_network, store, config=config)
        outcome = pipeline.scan(4)
        funnel = outcome.funnel
        assert funnel.solves == funnel.candidates > 0
        assert funnel.exhaustive_pairs > funnel.solves
        assert funnel.amortization >= 5.0
        # Note: with so few confirmed entries the planted bursts ARE the
        # batch median and nothing flags — the robust-z rule needs a
        # benign majority, which the default-width scan above provides.

    def test_source_concentration_is_recorded(self, planted_network, store):
        pipeline = MiningPipeline(planted_network, store)
        outcome = pipeline.scan(4)
        by_pair = {(r.source, r.sink): r for r in outcome.records}
        planted = by_pair[("s_star", "t_star")]
        assert planted.source_concentration == pytest.approx(1.0)
        assert planted.sink_concentration == pytest.approx(1.0)


class TestStableIds:
    def test_rescan_dedupes_to_the_same_ids(self, planted_network, store):
        pipeline = MiningPipeline(planted_network, store)
        first = pipeline.scan(4)
        second = pipeline.scan(4)
        assert second.new_ids == []
        assert second.deduped == len(first.new_ids)
        assert {r.pattern_id for r in second.records} == set(first.new_ids)

    def test_restart_rescan_derives_identical_ids(
        self, planted_network, tmp_path
    ):
        directory = tmp_path / "patterns"
        with PatternStore(directory) as store:
            first = MiningPipeline(planted_network, store).scan(4)
        # "Restart": a brand-new store + pipeline over the same history.
        with PatternStore(directory) as recovered:
            assert recovered.ids() == set(first.new_ids)
            again = MiningPipeline(planted_network, recovered).scan(4)
            assert again.new_ids == []
            assert again.deduped == len(first.new_ids)
            assert recovered.ids() == set(first.new_ids)

    def test_new_epochs_do_not_perturb_old_ids(self, planted_network, store):
        pipeline = MiningPipeline(planted_network, store)
        first = pipeline.scan(4)
        # Benign traffic arrives; old patterns must keep their identity.
        pipeline.append(
            TemporalEdge(f"w{i}", f"x{i}", 30 + i, 1.0) for i in range(4)
        )
        second = pipeline.scan(4)
        assert set(first.new_ids) <= store.ids()
        assert {r.pattern_id for r in second.records} == set(first.new_ids)


class TestIngestion:
    def test_append_and_foreign_appends_are_both_ingested(
        self, planted_network, store
    ):
        pipeline = MiningPipeline(planted_network, store)
        assert pipeline.stats.observed_epoch == planted_network.epoch
        pipeline.append([TemporalEdge("n1", "n2", 50, 2.0)])
        assert pipeline.stats.node_volume("n1", "out") == pytest.approx(2.0)
        # An append made by someone else (the service path) on the shared
        # network is picked up by the next sync.
        planted_network.add_edge(TemporalEdge("n2", "n3", 51, 3.0))
        assert pipeline.sync() == 1
        assert pipeline.stats.node_volume("n2", "out") == pytest.approx(3.0)
        assert pipeline.stats.rebuilds == 0


class TestScanModes:
    def test_explicit_pairs_skip_the_prefilter(self, planted_network, store):
        pipeline = MiningPipeline(planted_network, store)
        outcome = pipeline.scan(
            4,
            pairs=[("s_star", "t_star"), ("s_star", "s_star"),
                   ("ghost", "t_star")],
            persist="all",
        )
        # Self-pairs and unknown endpoints are skipped silently.
        assert outcome.funnel.candidates == 1
        assert [(r.source, r.sink) for r in outcome.records] == [
            ("s_star", "t_star")
        ]

    def test_persist_all_stores_every_positive(self, planted_network, store):
        pipeline = MiningPipeline(planted_network, store)
        outcome = pipeline.scan(4, persist="all")
        assert len(outcome.records) == outcome.funnel.confirmed
        assert len(outcome.records) > len(PLANTED_PAIRS)

    def test_top_override_narrows_the_candidate_set(
        self, planted_network, store
    ):
        pipeline = MiningPipeline(planted_network, store)
        narrow = pipeline.scan(4, top=2)
        assert narrow.funnel.candidates <= 2 * 2

    def test_validation(self, planted_network, store):
        pipeline = MiningPipeline(planted_network, store)
        with pytest.raises(InvalidQueryError):
            pipeline.scan(0)
        with pytest.raises(InvalidQueryError):
            pipeline.scan(4, persist="sometimes")

    def test_empty_candidate_set_is_a_clean_noop(self, store):
        network = TemporalFlowNetwork.from_tuples([("a", "b", 1, 1.0)])
        pipeline = MiningPipeline(network, store)
        outcome = pipeline.scan(4, pairs=[("ghost", "phantom")])
        assert outcome.records == [] and outcome.funnel.solves == 0


class TestMiningBackend:
    """The oracle's differential backend: persisted == direct, exactly."""

    def test_round_trip_equals_direct_solve(self, planted_network):
        query = BurstingFlowQuery("s_star", "t_star", 4)
        via_store = mining_bfq(planted_network, query)
        direct = find_bursting_flow(planted_network, query)
        assert via_store.density == direct.density
        assert via_store.interval == direct.interval
        assert via_store.flow_value == direct.flow_value

    def test_no_flow_round_trips_as_empty(self):
        network = TemporalFlowNetwork.from_tuples(
            [("b", "a", 1, 2.0)]  # only the wrong direction exists
        )
        result = mining_bfq(network, BurstingFlowQuery("a", "b", 1))
        assert result.density == 0.0 and result.interval is None

    def test_duplicate_records_are_a_hard_failure(
        self, planted_network, monkeypatch
    ):
        # Simulate a broken identity derivation: evidence that differs
        # between scans yields two ids for one pattern, which the
        # double-scan round trip must refuse to bless.
        from repro.mining import pipeline as pipeline_mod
        from repro.mining.store import canonical_evidence as real_evidence

        calls = {"n": 0}

        def flaky_evidence(network, source, sink, interval):
            calls["n"] += 1
            evidence = real_evidence(network, source, sink, interval)
            if calls["n"] > 1:  # second scan "sees" an extra edge
                evidence = evidence + (("phantom", "edge", 0, 1.0),)
            return evidence

        monkeypatch.setattr(
            pipeline_mod, "canonical_evidence", flaky_evidence
        )
        with pytest.raises(MiningBackendError):
            mining_bfq(planted_network, BurstingFlowQuery("s_star", "mid", 4))
