"""Streaming-statistics tests: robust scores, burst decode, epoch sync."""

import math

import pytest

from repro.mining.stats import (
    StreamStats,
    burstiness,
    kleinberg_states,
    modified_z_score,
)
from repro.temporal import TemporalEdge, TemporalFlowNetwork


class TestModifiedZScore:
    def test_standard_case(self):
        assert modified_z_score(10.0, 4.0, 2.0) == pytest.approx(
            0.6745 * 6.0 / 2.0
        )

    def test_degenerate_mad_falls_back_to_ratio(self):
        assert modified_z_score(30.0, 10.0, 0.0) == pytest.approx(2.0)

    def test_degenerate_everything(self):
        assert modified_z_score(5.0, 0.0, 0.0) == math.inf
        assert modified_z_score(0.0, 0.0, 0.0) == 0.0

    def test_below_median_is_negative(self):
        assert modified_z_score(1.0, 4.0, 2.0) < 0


class TestKleinbergStates:
    def test_empty_and_flat_decode_to_no_burst(self):
        assert kleinberg_states([]) == []
        assert kleinberg_states([5] * 10) == [0] * 10
        assert kleinberg_states([0, 0, 0]) == [0, 0, 0]

    def test_sustained_spike_flags_burst_bins(self):
        counts = [1, 1, 1, 1, 12, 14, 13, 1, 1, 1]
        states = kleinberg_states(counts)
        assert states[4:7] == [1, 1, 1]
        assert states[:4] == [0] * 4 and states[7:] == [0] * 3

    def test_single_noisy_bin_stays_normal(self):
        # The enter cost (gamma * ln(n+1)) suppresses isolated blips.
        states = kleinberg_states([3, 3, 3, 4, 3, 3, 3, 3])
        assert states == [0] * 8

    def test_scale_must_exceed_one(self):
        with pytest.raises(ValueError):
            kleinberg_states([1, 2], scale=1.0)


class TestBurstiness:
    def test_zero_activity(self):
        assert burstiness([], []) == 0.0
        assert burstiness([0, 0], [0, 0]) == 0.0

    def test_share_of_arrivals_in_burst_bins(self):
        assert burstiness([1, 3, 6], [0, 0, 1]) == pytest.approx(0.6)


class TestStreamStatsSync:
    def edge(self, u, v, tau, cap):
        return TemporalEdge(u, v, tau, cap)

    def test_pure_appends_take_the_streaming_fast_path(self):
        network = TemporalFlowNetwork()
        stats = StreamStats()
        network.add_edge(self.edge("a", "b", 1, 2.0))
        network.add_edge(self.edge("b", "c", 2, 3.0))
        assert stats.sync(network) == 2
        network.add_edge(self.edge("a", "c", 3, 1.0))
        assert stats.sync(network) == 1  # only the suffix is consumed
        assert stats.rebuilds == 0
        assert stats.edges_seen == 3
        assert stats.observed_epoch == network.epoch
        assert stats.node_volume("a", "out") == pytest.approx(3.0)
        assert stats.node_volume("c", "in") == pytest.approx(4.0)
        assert stats.pair_volume[("a", "b")] == pytest.approx(2.0)
        assert stats.pair_count[("a", "b")] == 1

    def test_sync_is_a_noop_at_the_same_epoch(self):
        network = TemporalFlowNetwork.from_tuples([("a", "b", 1, 2.0)])
        stats = StreamStats()
        stats.sync(network)
        assert stats.sync(network) == 0
        assert stats.rebuilds == 0

    def test_capacity_merge_forces_a_rebuild(self):
        network = TemporalFlowNetwork()
        stats = StreamStats()
        network.add_edge(self.edge("a", "b", 1, 2.0))
        stats.sync(network)
        # Same (u, v, tau): the epoch moves but num_edges does not, so the
        # advance cannot be a suffix of fresh edges.
        network.add_edge(self.edge("a", "b", 1, 5.0))
        stats.sync(network)
        assert stats.rebuilds == 1
        assert stats.node_volume("a", "out") == pytest.approx(7.0)
        # The network stores one merged edge, so the rebuilt ledger does too.
        assert stats.pair_count[("a", "b")] == 1

    def test_bare_add_node_forces_a_rebuild_not_a_stale_ledger(self):
        network = TemporalFlowNetwork.from_tuples([("a", "b", 1, 2.0)])
        stats = StreamStats()
        stats.sync(network)
        network.add_node("lonely")
        network.add_edge(self.edge("b", "c", 2, 4.0))
        stats.sync(network)
        assert stats.rebuilds == 1
        assert stats.observed_epoch == network.epoch
        assert stats.node_volume("b", "out") == pytest.approx(4.0)

    def test_rebuild_matches_a_fresh_scan(self):
        edges = [("a", "b", 1, 2.0), ("b", "c", 2, 3.0), ("a", "c", 5, 4.0)]
        network = TemporalFlowNetwork.from_tuples(edges)
        incremental = StreamStats()
        incremental.sync(network)
        rebuilt = StreamStats()
        rebuilt.rebuild(network)
        assert incremental.out_ledgers == rebuilt.out_ledgers
        assert incremental.in_ledgers == rebuilt.in_ledgers
        assert incremental.pair_volume == rebuilt.pair_volume
