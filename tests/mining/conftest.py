"""Shared fixtures for the mining suite: planted-laundering networks.

The planted network is the canonical recall case: a dense
source → mule → sink laundering burst inside a short window, buried in
enough benign background chains that the batch median stays at the
background level (the flagging rule needs a real distribution — with
too few benign entries the planted burst *is* the median and nothing
flags, see ``flag_entries``'s "< 3 positives" guard and the robust-MAD
arithmetic).
"""

from __future__ import annotations

import pytest

from repro.temporal import TemporalFlowNetwork

#: The planted laundering chain endpoints and their dense window.
PLANTED_PAIRS = (("s_star", "mid"), ("mid", "t_star"), ("s_star", "t_star"))
PLANTED_WINDOW = (20, 24)
BACKGROUND_CHAINS = 12
HORIZON = 40


def planted_edges() -> list[tuple[str, str, int, float]]:
    """Deterministic edge list: 12 benign drip chains + one planted burst."""
    edges = []
    for i in range(BACKGROUND_CHAINS):
        for t in range(0, HORIZON, 4):
            # Deterministic "jitter" keeps background capacities unequal
            # without randomness (tests must be reproducible bit-for-bit).
            edges.append((f"u{i}", f"v{i}", t, 1.0 + ((i * 7 + t) % 5) / 10.0))
    for t in range(PLANTED_WINDOW[0], PLANTED_WINDOW[1] + 1):
        edges.append(("s_star", "mid", t, 40.0))
        edges.append(("mid", "t_star", t, 40.0))
    return edges


@pytest.fixture
def planted_network() -> TemporalFlowNetwork:
    return TemporalFlowNetwork.from_tuples(planted_edges())
