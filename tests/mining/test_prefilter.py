"""Pre-filter tests: the planted hit, the documented miss, determinism."""

import pytest

from repro import BurstingFlowQuery, find_bursting_flow
from repro.exceptions import InvalidQueryError
from repro.mining.prefilter import (
    node_intensities,
    rank_candidates,
    rank_candidates_for_network,
    score_nodes,
)
from repro.mining.stats import StreamStats
from repro.temporal import TemporalFlowNetwork

from tests.mining.conftest import PLANTED_WINDOW


class TestScoreNodes:
    def test_planted_source_ranks_first(self, planted_network):
        scores = score_nodes(planted_network, window=4, direction="out")
        assert scores[0].node in ("s_star", "mid")
        top = scores[0]
        lo, hi = top.peak_window
        assert lo >= PLANTED_WINDOW[0] and lo <= PLANTED_WINDOW[1]
        assert top.concentration == pytest.approx(1.0)

    def test_min_volume_screens_small_nodes(self, planted_network):
        scores = score_nodes(
            planted_network, window=4, direction="out", min_volume=50.0
        )
        assert {s.node for s in scores} == {"s_star", "mid"}

    def test_validation(self, planted_network):
        with pytest.raises(InvalidQueryError):
            score_nodes(planted_network, window=0)
        with pytest.raises(InvalidQueryError):
            score_nodes(planted_network, window=4, direction="sideways")


class TestRankCandidates:
    def test_planted_pairs_rank_at_the_top(self, planted_network):
        candidates = rank_candidates_for_network(
            planted_network, window=4, top_sources=6, top_sinks=6
        )
        pairs = [c.pair for c in candidates]
        assert pairs[0] in (("s_star", "t_star"), ("s_star", "mid"),
                            ("mid", "t_star"))
        for planted in (("s_star", "mid"), ("mid", "t_star"),
                        ("s_star", "t_star")):
            assert planted in pairs

    def test_overlap_doubles_the_rank_score(self, planted_network):
        candidates = rank_candidates_for_network(
            planted_network, window=4, top_sources=6, top_sinks=6
        )
        by_pair = {c.pair: c for c in candidates}
        planted = by_pair[("s_star", "t_star")]
        assert planted.windows_overlap
        assert planted.rank_score == pytest.approx(
            planted.source_intensity.intensity
            * planted.sink_intensity.intensity
            * 2.0
        )

    def test_matches_rank_on_synced_stats(self, planted_network):
        stats = StreamStats()
        stats.sync(planted_network)
        direct = rank_candidates(stats, window=4, top_sources=5, top_sinks=5)
        oneshot = rank_candidates_for_network(
            planted_network, window=4, top_sources=5, top_sinks=5
        )
        assert [c.pair for c in direct] == [c.pair for c in oneshot]
        assert [c.rank_score for c in direct] == [
            c.rank_score for c in oneshot
        ]

    def test_validation(self, planted_network):
        stats = StreamStats()
        stats.sync(planted_network)
        with pytest.raises(InvalidQueryError):
            rank_candidates(stats, window=4, top_sources=0)


class TestKnownMiss:
    """The funnel's inherited blind spot, pinned as a test.

    A multi-hop launderer whose endpoints look individually calm: the
    source drips small amounts across the whole horizon, mules forward
    to the sink also spread out.  A real (low-density) delta-BFlow
    exists, but neither endpoint's ledger is concentrated, so the pair
    never enters the candidate set while concentrated benign emitters
    fill the top slots.
    """

    def build(self) -> TemporalFlowNetwork:
        edges = []
        # Concentrated benign actors that soak up the top-k slots.
        for i in range(4):
            for t in (10, 11, 12):
                edges.append((f"burster{i}", f"seller{i}", t, 30.0))
        # Calm laundering: drip out of `quiet_s`, drip into `quiet_t`.
        for t in range(0, 40, 2):
            mule = f"mule{t % 8}"
            edges.append(("quiet_s", mule, t, 1.0))
            edges.append((mule, "quiet_t", t + 1, 1.0))
        return TemporalFlowNetwork.from_tuples(edges)

    def test_calm_endpoints_never_rank_despite_real_flow(self):
        network = self.build()
        result = find_bursting_flow(
            network, BurstingFlowQuery("quiet_s", "quiet_t", 4)
        )
        assert result.density > 0  # the flow is real...
        candidates = rank_candidates_for_network(
            network, window=3, top_sources=4, top_sinks=4
        )
        pairs = [c.pair for c in candidates]
        assert ("quiet_s", "quiet_t") not in pairs  # ...but never ranked


class TestNodeIntensities:
    def test_planted_node_outranks_the_background(self, planted_network):
        stats = StreamStats()
        stats.sync(planted_network)
        profiles = node_intensities(stats.out_ledgers, window=4)
        by_node = {p.node: p for p in profiles}
        planted = by_node["s_star"]
        benign = by_node["u0"]
        # The ranking key is what feeds the funnel: the planted emitter
        # must dwarf every background chain.
        assert planted.intensity > 100 * benign.intensity
        assert profiles[0].node in ("s_star", "mid")
        # Background drips are flat: no burst bins.
        assert benign.burstiness == pytest.approx(0.0)

    def test_spike_and_silence_shell_scores_high_z_and_burstiness(self):
        """The z/burstiness terms need a quiet baseline to deviate from.

        A shell that drips pennies all month and then blasts is the
        smurfing signature; its peak is an outlier against its *own*
        window distribution (unlike ``s_star`` above, whose entire
        ledger IS the burst, so its own baseline is the burst too).
        """
        edges = [("shell", f"m{t % 3}", t, 0.5) for t in range(0, 40, 4)]
        # Smurfing: many small transfers, sustained over a few ticks —
        # the count-based automaton needs sustained elevation, not one
        # big transfer.
        edges += [
            ("shell", f"fence{i}", t, 15.0)
            for t in (20, 21, 22, 23)
            for i in range(3)
        ]
        network = TemporalFlowNetwork.from_tuples(edges)
        stats = StreamStats()
        stats.sync(network)
        profiles = node_intensities(stats.out_ledgers, window=4)
        shell = next(p for p in profiles if p.node == "shell")
        assert shell.z_score > 3.5
        assert shell.burstiness > 0.5
        lo, hi = shell.peak_window
        assert lo >= 19 and hi <= 24
