"""`repro-bfq mine --prune`: the retention policy from the CLI."""

import pytest

from repro.cli import main
from repro.mining.store import PatternStore
from repro.temporal import TemporalFlowNetwork, save_edge_list
from tests.mining.test_store import record_for


@pytest.fixture
def edges_csv(tmp_path):
    network = TemporalFlowNetwork.from_tuples(
        [("s", "a", 1, 4.0), ("a", "t", 2, 3.0)]
    )
    path = tmp_path / "edges.csv"
    save_edge_list(network, path)
    return path


@pytest.fixture
def store_dir(tmp_path):
    directory = tmp_path / "patterns"
    with PatternStore(directory) as store:
        for i in range(5):
            store.add(record_for(i, epoch=i))
    return directory


class TestMinePrune:
    def test_prune_drops_and_reports(self, edges_csv, store_dir, capsys):
        code = main(
            [
                "mine", str(edges_csv), "--store", str(store_dir),
                "--no-scan", "--prune", "--max-patterns", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pruned: 3 pattern(s) dropped, 2 retained" in out
        with PatternStore(store_dir) as store:
            assert {record.epoch for record in store} == {3, 4}

    def test_prune_by_age(self, edges_csv, store_dir, capsys):
        code = main(
            [
                "mine", str(edges_csv), "--store", str(store_dir),
                "--no-scan", "--prune", "--max-age-epochs", "1",
            ]
        )
        assert code == 0
        assert "pruned: 3 pattern(s) dropped" in capsys.readouterr().out

    def test_prune_without_bounds_is_usage_error(
        self, edges_csv, store_dir, capsys
    ):
        code = main(
            [
                "mine", str(edges_csv), "--store", str(store_dir),
                "--no-scan", "--prune",
            ]
        )
        assert code == 2
        assert "--max-age-epochs" in capsys.readouterr().err
        with PatternStore(store_dir) as store:
            assert len(store) == 5  # untouched
