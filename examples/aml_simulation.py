#!/usr/bin/env python
"""Anti-money-laundering analysis on a simulated payment economy.

Builds a full agent-based economy (salaries, shopping peaks, settlements)
with three injected laundering typologies — smurfing, layering and
round-tripping — then demonstrates the library's analyst workflow:

1. choose delta with :func:`repro.core.suggest_delta` (the knee of the
   density-vs-delta curve);
2. sweep suspect and control pairs in parallel with
   :func:`repro.core.answer_many`;
3. separate frauds from controls by density;
4. pull the evidence trail of the worst finding.

Run:  python examples/aml_simulation.py
"""

from repro.core import (
    BurstingFlowQuery,
    answer_many,
    bursting_flow_trails,
    density_profile,
    suggest_delta,
)
from repro.simulation import EconomyConfig, simulate_scenario


def main() -> None:
    config = EconomyConfig(
        num_consumers=40, num_merchants=8, num_corporates=2,
        days=5, ticks_per_day=144,
    )
    scenario = simulate_scenario(config=config, seed=42, with_round_tripping=True)
    network = scenario.network
    print(
        f"economy: {network.num_nodes} accounts, {network.num_edges} transfers, "
        f"{network.num_timestamps} active ticks; "
        f"{len(scenario.frauds)} injected frauds"
    )

    # 1. Choose delta from the first suspect pair's density profile.
    smurfing = scenario.frauds[0]
    profile = density_profile(
        network, smurfing.source, smurfing.sink, deltas=[1, 2, 4, 8, 16, 32]
    )
    knee = suggest_delta(profile, max_drop=0.5)
    delta = knee.delta if knee else 4
    print(f"delta chosen from the density profile: {delta}")

    # 2. Batch-evaluate suspects and controls.
    suspect_queries = [
        BurstingFlowQuery(fraud.source, fraud.sink, delta)
        for fraud in scenario.frauds
    ]
    control_queries = [
        BurstingFlowQuery(s, t, delta)
        for s, t in scenario.benign_pairs(5, seed=7)
    ]
    results = answer_many(network, suspect_queries + control_queries)
    suspects = results[: len(suspect_queries)]
    controls = results[len(suspect_queries):]

    print(f"\n{'pair':<36} {'kind':<16} {'density':>12}")
    for fraud, result in zip(scenario.frauds, suspects):
        print(
            f"{fraud.source + ' -> ' + fraud.sink:<36} "
            f"{fraud.kind:<16} {result.density:>12,.1f}"
        )
    for query, result in zip(control_queries, controls):
        print(
            f"{str(query.source) + ' -> ' + str(query.sink):<36} "
            f"{'(control)':<16} {result.density:>12,.1f}"
        )

    worst_gap = min(r.density for r in suspects) / max(
        max((r.density for r in controls), default=0.0), 0.01
    )
    print(f"\nweakest fraud is still {worst_gap:,.0f}x denser than any control")
    assert worst_gap > 10

    # 3. Evidence trail of the layering scheme.
    layering = scenario.frauds[1]
    report = bursting_flow_trails(
        network, BurstingFlowQuery(layering.source, layering.sink, delta)
    )
    print(f"\nevidence trail for the layering scheme ({report.flow_value:,.0f} units):")
    for trail in report.trails[:4]:
        print(f"  {trail.describe()}")
    if len(report.trails) > 4:
        print(f"  ... and {len(report.trails) - 4} more trails")


if __name__ == "__main__":
    main()
