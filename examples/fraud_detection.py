#!/usr/bin/env python
"""Fraud detection on a transaction network (the paper's Section 6.3).

Builds the case-study replica — a payment network with a *planted*
laundering burst (a large volume moved through mule chains inside a short
window) and a benign heavy-but-slow flow — then sweeps delta-BFlow queries
over suspicious and normal account pairs, exactly as the paper's case study
does, and prints a Table-3-style report.

The contrast with plain temporal Maxflow is also shown: the whole-horizon
maximum flow between the benign pair is just as large as between the
suspects — only the *density* (delta-BFlow) separates them.

Run:  python examples/fraud_detection.py
"""

from repro.anomaly import BurstDetector, format_case_study_table
from repro.baselines import temporal_maxflow
from repro.datasets import make_case_study


def main() -> None:
    dataset = make_case_study(scale=0.5)
    network = dataset.network
    horizon = network.num_timestamps
    deltas = [max(1, round(horizon * f)) for f in (0.03, 0.06, 0.09)]
    print(
        f"transaction network: |V|={network.num_nodes} "
        f"|E_T|={network.num_edges} |T|={horizon}; deltas={deltas}"
    )

    planted = dataset.planted[0]
    print(
        f"ground truth: {planted.volume:.0f} units moved "
        f"{planted.source} -> {planted.sink} inside {planted.interval} "
        f"(density {planted.density:.0f})"
    )

    detector = BurstDetector(network)
    sources = dataset.suspicious_sources + dataset.benign_sources[:3]
    sinks = dataset.suspicious_sinks + dataset.benign_sinks[:3]
    report = detector.scan(sources, sinks, deltas)

    print(f"\nscanned {len(report.findings)} (source, sink, delta) queries")
    print(f"flagged {len(report.flagged)} outliers:")
    for finding in report.flagged:
        print(
            f"  {finding.source} -> {finding.sink}  delta={finding.delta}  "
            f"density={finding.density:,.1f}  interval={finding.interval}"
        )

    suspect = (dataset.suspicious_sources[0], dataset.suspicious_sinks[0])
    benign = (dataset.benign_sources[0], dataset.benign_sinks[0])
    q1 = [report.finding_for(*suspect, d) for d in deltas]
    q2 = [report.finding_for(*benign, d) for d in deltas]
    print("\nTable-3-style report:")
    print(
        format_case_study_table(
            [("Q1 (suspects)", [f for f in q1 if f]),
             ("Q2 (benign)", [f for f in q2 if f])]
        )
    )

    # The evidence trail (the paper's Figure-1 red transfer chains): how
    # the flagged volume actually moved.
    from repro import BurstingFlowQuery
    from repro.core import bursting_flow_trails

    trails = bursting_flow_trails(
        network, BurstingFlowQuery(*suspect, deltas[0])
    )
    print("\nmoney trail of the flagged burst:")
    for trail in trails.trails[:5]:
        print(f"  {trail.describe()}")

    # Why density, not raw flow: whole-horizon Maxflow can't tell them apart.
    mf_suspect = temporal_maxflow(network, *suspect)
    mf_benign = temporal_maxflow(network, *benign)
    print(
        f"\nwhole-horizon temporal Maxflow: suspects={mf_suspect.value:,.0f} "
        f"vs benign={mf_benign.value:,.0f} — nearly identical; only the "
        f"delta-BFlow density exposes the burst."
    )

    assert report.flagged, "expected the planted burst to be flagged"
    top = report.flagged[0]
    assert (top.source, top.sink) == suspect, "suspects should rank first"


if __name__ == "__main__":
    main()
