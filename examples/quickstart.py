#!/usr/bin/env python
"""Quickstart: build a tiny temporal flow network and query its delta-BFlow.

The network models a handful of money transfers.  A burst of transfers
happens between timestamps 10 and 13; a slow drip happens over the rest of
the horizon.  The delta-BFlow query pinpoints the burst.

Run:  python examples/quickstart.py
"""

from repro import BurstingFlowQuery, TemporalFlowNetworkBuilder, find_bursting_flow


def main() -> None:
    network = (
        TemporalFlowNetworkBuilder()
        # --- the burst: alice -> {bob, carol} -> dave within 3 ticks ---
        .edge("alice", "bob", tau=10, capacity=500.0)
        .edge("alice", "carol", tau=10, capacity=400.0)
        .edge("bob", "dave", tau=12, capacity=500.0)
        .edge("carol", "dave", tau=13, capacity=400.0)
        # --- background drip: small transfers spread over the horizon ---
        .edge("alice", "bob", tau=2, capacity=20.0)
        .edge("bob", "dave", tau=5, capacity=20.0)
        .edge("alice", "erin", tau=20, capacity=30.0)
        .edge("erin", "dave", tau=28, capacity=30.0)
        .build()
    )

    query = BurstingFlowQuery(source="alice", sink="dave", delta=2)
    result = find_bursting_flow(network, query)

    print("delta-BFlow query:", query.source, "->", query.sink, "delta =", query.delta)
    print(f"  flow density     : {result.density:.1f} per tick")
    print(f"  bursting interval: {result.interval}")
    print(f"  flow value       : {result.flow_value:.1f}")
    print(f"  candidates tried : {result.stats.candidates_enumerated}")

    # The burst (900 units inside [10, 13]) dominates the slow drip.
    assert result.interval is not None
    lo, hi = result.interval
    assert 10 <= lo and hi <= 13, "expected the burst window to win"

    # Compare the three solutions: identical answers, different work.
    for algorithm in ("bfq", "bfq+", "bfq*"):
        r = find_bursting_flow(network, query, algorithm=algorithm)
        print(
            f"  {algorithm:<5} density={r.density:.1f} "
            f"maxflow_runs={r.stats.maxflow_runs} "
            f"pruned={r.stats.pruned_intervals}"
        )

    # The transform knob: "skeleton" (default) compiles the network once
    # per query and slices candidate windows out of flat arrays;
    # "object" rebuilds a transformed FlowNetwork per window — slower,
    # but the reference the skeleton is differentially tested against.
    # Same answers, different time; PhaseBreakdown shows where it went.
    from repro.core import PhaseBreakdown

    for transform in ("skeleton", "object"):
        r = find_bursting_flow(network, query, algorithm="bfq", transform=transform)
        phases = PhaseBreakdown.from_stats(r.stats)
        print(f"  transform={transform:<9} density={r.density:.1f}  {phases.format()}")

    # BFQ's candidate windows are independent, so they can be sharded
    # across a process pool.  Only pays off when individual windows are
    # expensive (large networks); answers match the sequential run.
    r = find_bursting_flow(network, query, algorithm="bfq", parallel_windows=2)
    print(f"  parallel_windows=2 density={r.density:.1f} interval={r.interval}")


if __name__ == "__main__":
    main()
