#!/usr/bin/env python
"""The paper's full deployment pipeline, end to end.

The paper stores its transaction data in a graph database and answers all
delta-BFlow queries after a *one-off export* ("we have also ported our
implementation on top of a Neo4j backend ... all the evaluated delta-BFlow
queries can be answered by a one-off data export").  This example walks
that exact pipeline on the embedded store:

1. ingest a day of payments into a durable :class:`repro.store.GraphStore`
   (crash-safe append-only log);
2. reopen the store from disk (simulating a separate analysis process);
3. export the most recent slice — the case study analyses "the
   transactions having the largest 1% of timestamps";
4. run a delta-BFlow scan over suspect accounts, reporting intervals in
   original wall-clock times.

Run:  python examples/store_pipeline.py
"""

import random
import tempfile
import time
from pathlib import Path

from repro.anomaly import BurstDetector
from repro.store import GraphStore

SUSPECTS = ("acct_907", "acct_913")
DAY_START = 1_700_000_000  # an epoch morning


def ingest(path: Path) -> None:
    rng = random.Random(11)
    accounts = [f"acct_{i}" for i in range(900, 960)]
    with GraphStore(path) as store:
        for node in accounts:
            store.add_node(node, kind="retail")
        store.add_node(SUSPECTS[0], kind="retail", flagged=True)
        store.add_node(SUSPECTS[1], kind="retail", flagged=True)
        # Background: all-day small payments.
        for _ in range(2500):
            u, v = rng.sample(accounts, 2)
            store.add_relationship(
                u, v,
                tau=DAY_START + rng.randint(0, 86_400),
                amount=round(rng.uniform(5, 80), 2),
            )
        # The burst: 25k moved suspect->mules->suspect in ~8 minutes,
        # placed in the most recent part of the day.
        burst_start = DAY_START + 85_000
        for chain in range(3):
            mule = f"mule_{chain}"
            store.add_relationship(
                SUSPECTS[0], mule, tau=burst_start + chain * 60,
                amount=25_000 / 3, label="suspicious",
            )
            store.add_relationship(
                mule, SUSPECTS[1], tau=burst_start + 240 + chain * 60,
                amount=25_000 / 3, label="suspicious",
            )
        store.flush()


def analyse(path: Path) -> None:
    with GraphStore(path) as store:
        print(
            f"store reopened: {store.num_nodes} accounts, "
            f"{store.num_relationships} transfers"
        )
        # The case-study slice: most recent 10% of transfer timestamps.
        cut = store.timestamp_quantile(0.90)
        started = time.perf_counter()
        network, codec = store.export_network(tau_lo=cut)
        export_seconds = time.perf_counter() - started
        print(
            f"one-off export of the freshest 10%: |E_T|={network.num_edges} "
            f"|T|={network.num_timestamps} in {export_seconds * 1000:.0f}ms "
            f"(the paper's largest export took 396s at 28M edges)"
        )

        delta = max(1, round(network.num_timestamps * 0.03))
        detector = BurstDetector(network)
        sinks = [SUSPECTS[1], "acct_905", "acct_906"]
        sources = [SUSPECTS[0], "acct_910", "acct_911"]
        report = detector.scan(sources, sinks, [delta])
        print(f"scan: {len(report.findings)} queries, {len(report.flagged)} flagged")
        for finding in report.flagged:
            lo, hi = codec.decode_interval(finding.interval)
            print(
                f"  FLAGGED {finding.source} -> {finding.sink}: "
                f"density {finding.density:,.0f} during "
                f"[{time.strftime('%H:%M:%S', time.gmtime(lo))}, "
                f"{time.strftime('%H:%M:%S', time.gmtime(hi))}] UTC"
            )
        assert report.flagged, "the planted burst should be flagged"
        top = report.flagged[0]
        assert (top.source, top.sink) == SUSPECTS


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "payments.log"
        ingest(path)
        size_kb = path.stat().st_size / 1024
        print(f"ingested day into {path.name} ({size_kb:.0f} KiB on disk)")
        analyse(path)


if __name__ == "__main__":
    main()
