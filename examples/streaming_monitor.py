#!/usr/bin/env python
"""Real-time burst monitoring over a transaction stream.

The paper's future work proposes the "delta-BFlow query under a streaming
or dynamic model".  This example replays a day of payment events in
timestamp order through :class:`repro.extensions.StreamingBurstMonitor`
and shows the answer tightening as the stream unfolds — the laundering
burst is flagged the moment its window completes, long before end-of-day
batch analysis would run.

Run:  python examples/streaming_monitor.py
"""

import random

from repro import find_bursting_flow
from repro.extensions import StreamingBurstMonitor
from repro.temporal import TemporalFlowNetwork

SOURCE, SINK = "acct_src", "acct_dst"
DELTA = 3
BURST_WINDOW = (60, 64)


def build_stream() -> list[tuple[str, str, int, float]]:
    rng = random.Random(2024)
    events: list[tuple[str, str, int, float]] = []
    # Background: small transfers all day between random accounts,
    # including a slow drip from SOURCE to SINK.
    accounts = [f"acct_{i}" for i in range(12)] + [SOURCE, SINK]
    for tick in range(1, 100):
        for _ in range(rng.randint(1, 3)):
            u, v = rng.sample(accounts, 2)
            events.append((u, v, tick, round(rng.uniform(5, 40), 2)))
    # The burst: 9000 moved through two mules inside BURST_WINDOW.
    lo = BURST_WINDOW[0]
    for chain, mule in enumerate(("mule_a", "mule_b")):
        events.append((SOURCE, mule, lo + chain, 4500.0))
        events.append((mule, SINK, lo + chain + 2, 4500.0))
    events.sort(key=lambda e: e[2])
    return events


def main() -> None:
    events = build_stream()
    monitor = StreamingBurstMonitor(SOURCE, SINK, DELTA)

    alerted_at = None
    threshold = 500.0  # alert when density exceeds this
    for u, v, tau, amount in events:
        record = monitor.observe(u, v, tau, amount)
        if alerted_at is None and record.density > threshold:
            alerted_at = tau
            print(
                f"ALERT at stream time {tau}: density {record.density:,.0f} "
                f"over {record.interval} "
                f"(flow {record.flow_value:,.0f})"
            )
    final = monitor.finalize()
    print(
        f"end of stream: best density {final.density:,.0f} over "
        f"{final.interval}; monitor stats: {monitor.stats}"
    )

    # Cross-check against the offline algorithm over the full day.
    network = TemporalFlowNetwork.from_tuples(events)
    offline = find_bursting_flow(
        network, source=SOURCE, sink=SINK, delta=DELTA
    )
    print(
        f"offline check : best density {offline.density:,.0f} over "
        f"{offline.interval}"
    )
    assert abs(final.density - offline.density) < 1e-6
    assert alerted_at is not None
    assert alerted_at <= BURST_WINDOW[1] + 3, "alert should fire near the burst"
    print(
        f"the alert fired at time {alerted_at}, "
        f"{events[-1][2] - alerted_at} ticks before end-of-day batch analysis"
    )


if __name__ == "__main__":
    main()
