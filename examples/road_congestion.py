#!/usr/bin/env python
"""Congestion detection on a road network.

The paper's introduction motivates delta-BFlow with "detecting ... the
congestion by the maximum average traffic flow in a road network".  This
example builds a small grid road network where each temporal edge is a road
segment's vehicle throughput during one 5-minute tick, injects a rush-hour
surge from a residential zone towards the business district, and uses a
delta-BFlow query to locate the time window of densest traffic between the
two zones.

Run:  python examples/road_congestion.py
"""

import random

from repro import TemporalFlowNetworkBuilder, find_bursting_flow

GRID = 4  # 4x4 intersections
TICKS = 72  # one simulated day of 5-minute ticks (6 hours shown)
RUSH_START, RUSH_END = 30, 38  # the rush-hour window


def tick_to_clock(tick: int) -> str:
    minutes = 6 * 60 + (tick - 1) * 5  # start the day at 06:00
    return f"{minutes // 60:02d}:{minutes % 60:02d}"


def main() -> None:
    rng = random.Random(42)
    builder = TemporalFlowNetworkBuilder()

    def junction(i: int, j: int) -> str:
        return f"J{i}{j}"

    # Background traffic: every eastbound/southbound segment carries a
    # trickle of vehicles at random ticks.
    for i in range(GRID):
        for j in range(GRID):
            for di, dj in ((0, 1), (1, 0)):
                ni, nj = i + di, j + dj
                if ni >= GRID or nj >= GRID:
                    continue
                for _ in range(6):
                    tick = rng.randint(1, TICKS)
                    builder.edge(
                        junction(i, j),
                        junction(ni, nj),
                        tau=tick,
                        capacity=float(rng.randint(5, 20)),
                    )

    # Rush hour: heavy flows along the two main diagonal corridors from the
    # residential corner J00 to the business corner J33.
    for tick in range(RUSH_START, RUSH_END + 1):
        for path in (
            ["J00", "J01", "J11", "J12", "J22", "J23", "J33"],
            ["J00", "J10", "J11", "J21", "J22", "J32", "J33"],
        ):
            offset = 0
            for u, v in zip(path, path[1:]):
                builder.edge(u, v, tau=min(TICKS, tick + offset), capacity=120.0)
                offset += 1

    network = builder.build()
    delta = 4  # at least 20 minutes of sustained congestion

    result = find_bursting_flow(
        network, source="J00", sink="J33", delta=delta, algorithm="bfq*"
    )
    assert result.interval is not None
    lo, hi = result.interval
    print(
        f"densest traffic J00 -> J33: {result.density:.0f} vehicles/tick "
        f"between {tick_to_clock(lo)} and {tick_to_clock(hi)} "
        f"(ticks {lo}-{hi}, total {result.flow_value:.0f} vehicles)"
    )

    corridor_ticks = 6  # ticks a rush-hour platoon needs to cross the grid
    overlap = not (hi < RUSH_START or lo > RUSH_END + corridor_ticks)
    assert overlap, "the congestion window should overlap the rush hour"

    # Show how the minimum-duration filter changes the picture: a larger
    # delta smooths out short spikes.
    for d in (2, 4, 8, 16):
        r = find_bursting_flow(network, source="J00", sink="J33", delta=d)
        window = "-"
        if r.interval:
            window = f"{tick_to_clock(r.interval[0])}-{tick_to_clock(r.interval[1])}"
        print(f"  delta={d:2d} ticks: density={r.density:7.1f}  window={window}")


if __name__ == "__main__":
    main()
