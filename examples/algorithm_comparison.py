#!/usr/bin/env python
"""Compare BFQ, BFQ+ and BFQ* on a Table-2-style replica dataset.

Runs the same query workload through all three solutions (mirroring the
paper's EXP-1) and prints per-query runtimes plus the instrumentation the
incremental optimisations expose: Maxflow runs, incremental insertions and
deletions, and Observation-2 prunes.

Run:  python examples/algorithm_comparison.py [dataset]
      dataset in {bayc, prosper, ctu13, btc2011}; default prosper.
"""

import sys
import time

from repro import find_bursting_flow
from repro.datasets import generate_queries, make_dataset

ALGORITHMS = ("bfq", "bfq+", "bfq*")


def main(dataset: str = "prosper") -> None:
    network = make_dataset(dataset)
    workload = generate_queries(network, count=6, seed=17)
    delta = workload.delta_for()  # the paper's default: 3% of |T|
    print(
        f"dataset={dataset}: |V|={network.num_nodes} |E_T|={network.num_edges} "
        f"|T|={network.num_timestamps}, delta={delta}"
    )
    header = (
        f"{'query':<18} " + " ".join(f"{a:>9}" for a in ALGORITHMS)
        + "   density  mf-runs(bfq/bfq+/bfq*)  pruned  ins  del"
    )
    print(header)
    totals = dict.fromkeys(ALGORITHMS, 0.0)
    for source, sink in workload:
        times = {}
        results = {}
        for algorithm in ALGORITHMS:
            start = time.perf_counter()
            results[algorithm] = find_bursting_flow(
                network, source=source, sink=sink, delta=delta,
                algorithm=algorithm,
            )
            times[algorithm] = time.perf_counter() - start
            totals[algorithm] += times[algorithm]
        densities = {a: results[a].density for a in ALGORITHMS}
        assert max(densities.values()) - min(densities.values()) < 1e-6, (
            "all three solutions must agree"
        )
        star = results["bfq*"].stats
        plus = results["bfq+"].stats
        base = results["bfq"].stats
        print(
            f"{source}->{sink:<10} "
            + " ".join(f"{times[a]:>8.3f}s" for a in ALGORITHMS)
            + f"  {densities['bfq']:>8.2f}"
            f"  {base.maxflow_runs}/{plus.maxflow_runs}/{star.maxflow_runs}"
            f"{'':<10}{star.pruned_intervals:>6}"
            f"{star.incremental_insertions:>5}{star.incremental_deletions:>5}"
        )
    print(
        "totals: "
        + "  ".join(f"{a}={totals[a]:.2f}s" for a in ALGORITHMS)
        + f"  (speedup bfq->bfq+ {totals['bfq'] / max(totals['bfq+'], 1e-9):.1f}x)"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "prosper")
