"""Setup shim.

Kept so `pip install -e .` works on minimal offline environments where the
`wheel` package (needed for PEP 660 editable installs) is unavailable:
`pip install -e . --no-build-isolation --no-use-pep517` falls back to the
legacy `setup.py develop` path through this file.  All project metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
