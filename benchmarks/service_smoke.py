"""CI smoke test for the delta-BFlow query service.

Boots a :class:`repro.service.BurstingFlowService` on a small Table-2
replica, fires a concurrent burst of TCP clients at it (plus a streaming
append in the middle), diffs every served answer against the sequential
engine, and writes the server's metrics snapshot for upload as a build
artifact.  Exit code 0 means every check held.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py \
        [--snapshot service_metrics.json] [--scale 0.25] [--queries 6]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import threading
from pathlib import Path

from repro.core.engine import find_bursting_flow
from repro.core.query import BurstingFlowQuery
from repro.datasets.queries import generate_queries
from repro.datasets.registry import make_dataset
from repro.service import BurstingFlowService, ServiceClient

QUERY_SEED = 648
DELTA_FRACTION = 0.03


def run_smoke(
    *, dataset: str = "ctu13", scale: float = 0.25, query_count: int = 6
) -> dict:
    """One full smoke pass; returns the server's metrics snapshot."""
    network = make_dataset(dataset, scale=scale)
    workload = generate_queries(network, count=query_count, seed=QUERY_SEED)
    delta = workload.delta_for(DELTA_FRACTION)
    specs = [(s, t, delta) for s, t in workload.pairs]

    async def scenario():
        service = BurstingFlowService(network, default_timeout=600.0,
                                      max_timeout=600.0)
        host, port = await service.start("127.0.0.1", 0)
        loop = asyncio.get_running_loop()
        served: dict[int, tuple] = {}
        served_lock = threading.Lock()

        def one_client(index, spec):
            source, sink, query_delta = spec
            with ServiceClient(host, port, timeout=600.0) as client:
                reply = client.query(source, sink, query_delta)
                with served_lock:
                    served[index] = (
                        reply.density, reply.interval, reply.flow_value
                    )

        try:
            # Concurrent burst: every query in flight at once.
            await asyncio.gather(
                *(
                    loop.run_in_executor(None, one_client, index, spec)
                    for index, spec in enumerate(specs)
                )
            )
            # A streaming append must bump the epoch and invalidate.
            epoch_before = service.network.epoch
            nodes = list(network.nodes)[:2]
            tau = network.t_max

            def do_append():
                with ServiceClient(host, port, timeout=600.0) as client:
                    return client.append([(nodes[0], nodes[1], tau, 1.0)])

            ack = await loop.run_in_executor(None, do_append)
            assert ack.epoch > epoch_before, "append did not bump the epoch"
            return served, service.snapshot()
        finally:
            await service.stop()

    served, snapshot = asyncio.run(scenario())

    failures = []
    for index, (source, sink, query_delta) in enumerate(specs):
        fresh = find_bursting_flow(
            network, BurstingFlowQuery(source, sink, query_delta)
        )
        expected = (fresh.density, fresh.interval, fresh.flow_value)
        if served[index] != expected:
            failures.append(
                {"query": [source, sink, query_delta],
                 "served": list(served[index]), "expected": list(expected)}
            )
    if failures:
        raise AssertionError(
            f"concurrent service diverged from sequential: {failures[:3]}"
        )
    assert snapshot["requests"]["query"] == len(specs)
    assert snapshot["errors"] == {}
    assert snapshot["appended_edges"] >= 1
    return snapshot


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--snapshot",
        type=Path,
        default=Path("service_metrics.json"),
        help="where to write the metrics snapshot artifact",
    )
    parser.add_argument("--dataset", default="ctu13")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--queries", type=int, default=6)
    args = parser.parse_args(argv)

    snapshot = run_smoke(
        dataset=args.dataset, scale=args.scale, query_count=args.queries
    )
    args.snapshot.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(
        f"service smoke OK: {snapshot['requests']['query']} concurrent "
        f"queries == sequential; epoch {snapshot['network']['epoch']}, "
        f"snapshot -> {args.snapshot}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
