"""Ablation — Lemma-2 candidate enumeration vs the naive |T|^2 windows.

Section 4.2's headline: the O(d^2) candidate plan reduces "at least
millions of the |T|^2 possible time intervals to at most thousands".
On small networks (where brute force is feasible) this bench verifies
both the answer equality and the candidate-count reduction, and reports
the wall-clock ratio.
"""

from _harness import emit, format_table, timed

from repro import BurstingFlowQuery, bfq
from repro.baselines import naive_bfq
from repro.datasets import generate_queries, make_dataset


def test_ablation_candidate_enumeration(benchmark):
    network = make_dataset("bayc", scale=0.35)
    workload = generate_queries(network, count=4, seed=5)
    delta = workload.delta_for(0.03)

    def run_all():
        rows = []
        for index, (source, sink) in enumerate(workload, start=1):
            query = BurstingFlowQuery(source, sink, delta)
            smart_seconds, smart = timed(lambda: bfq(network, query))
            naive_seconds, naive = timed(
                lambda: naive_bfq(network, query, max_windows=None)
            )
            assert abs(smart.density - naive.density) < 1e-7
            rows.append(
                (
                    f"Q{index}",
                    smart.stats.candidates_enumerated,
                    naive.stats.candidates_enumerated,
                    f"{smart_seconds * 1000:.0f}ms",
                    f"{naive_seconds * 1000:.0f}ms",
                    f"{naive_seconds / max(smart_seconds, 1e-9):.0f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "Ablation - Lemma 2 candidates vs naive |T|^2 windows",
        format_table(
            ("query", "candidates", "naive windows", "BFQ", "naive", "speedup"),
            rows,
        ),
    )
    for row in rows:
        assert row[1] < row[2] / 10, "expected >=10x fewer candidate intervals"
