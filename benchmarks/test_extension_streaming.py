"""Extension bench — streaming monitor vs offline re-query per event.

The Section-7 streaming extension: for an interactive "alert me the moment
a burst appears" workload, the offline alternative is re-running the full
delta-BFlow query after every batch of events.  The monitor amortises the
Section-5 incremental machinery across the stream; this bench measures the
gap and verifies the answers agree at end of stream.
"""

import random

from _harness import emit, format_table, timed

from repro import find_bursting_flow
from repro.extensions import StreamingBurstMonitor
from repro.temporal import TemporalFlowNetwork


def build_stream(num_events: int, horizon: int, seed: int):
    rng = random.Random(seed)
    accounts = [f"a{i}" for i in range(20)] + ["src", "dst"]
    events = []
    for _ in range(num_events):
        u, v = rng.sample(accounts, 2)
        events.append((u, v, rng.randint(1, horizon), rng.uniform(1, 50)))
    # One planted burst.
    lo = horizon // 2
    events.append(("src", "mule", lo, 5000.0))
    events.append(("mule", "dst", lo + 2, 5000.0))
    events.sort(key=lambda e: e[2])
    return events


def test_streaming_monitor_vs_offline_requery(benchmark):
    events = build_stream(num_events=400, horizon=300, seed=7)
    delta = 5

    def streaming():
        monitor = StreamingBurstMonitor("src", "dst", delta)
        monitor.observe_batch(events)
        return monitor.finalize()

    def offline_requery(period: int):
        """Re-run the full query every ``period`` events (batch analysis)."""
        network = TemporalFlowNetwork()
        last = None
        from repro.temporal import TemporalEdge

        for i, (u, v, tau, cap) in enumerate(events):
            network.add_edge(TemporalEdge(u, v, tau, cap))
            if (i + 1) % period == 0:
                last = find_bursting_flow(
                    network, source="src", sink="dst", delta=delta
                )
        return find_bursting_flow(
            network, source="src", sink="dst", delta=delta
        )

    stream_seconds, record = timed(lambda: benchmark.pedantic(
        streaming, rounds=1, iterations=1
    ))
    requery_seconds, offline = timed(lambda: offline_requery(period=50))

    emit(
        "Extension - streaming monitor vs periodic offline re-query",
        format_table(
            ("strategy", "time", "density", "interval"),
            [
                ("streaming (per event)", f"{stream_seconds * 1000:.1f}ms",
                 f"{record.density:.1f}", str(record.interval)),
                ("offline re-query (every 50 events)",
                 f"{requery_seconds * 1000:.1f}ms",
                 f"{offline.density:.1f}", str(offline.interval)),
            ],
        ),
    )
    assert abs(record.density - offline.density) < 1e-6
