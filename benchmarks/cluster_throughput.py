"""Saturated-QPS scaling for the replicated delta-BFlow cluster.

Boots the same EXP-1-style workload (Table-2 replica dataset +
``generate_queries``) against four topologies — a plain single-process
:class:`repro.service.BurstingFlowService` baseline and a
:class:`repro.cluster.ClusterCoordinator` fronting 1, 2 and 4 replicas
— and writes ``BENCH_PR5.json`` (schema in docs/benchmarks.md).

**What scales, honestly.**  CI (and the container this report was
produced in) pins a single CPU, so event-loop parallelism cannot buy
throughput.  What replication *does* buy on one CPU is aggregate
result-cache capacity: the workload cycles through more unique queries
(default 24) than one replica's LRU holds (default 16), so a single
server thrashes — every request is a full engine solve — while
consistent-hash affinity shards the same key set across replicas until
each shard fits its owner's cache and steady-state requests are hits.
The report records the per-topology hit rates and ``cpu_count`` so the
mechanism is visible, and the 2-replica point typically already fits
(two shards of ~12 keys), which is why the curve plateaus after it.

The harness asserts the PR's acceptance bar itself: 4-replica cluster
QPS must be >= 1.8x the single-process baseline, and every served
answer must equal a fresh sequential solve exactly.

Usage::

    PYTHONPATH=src python benchmarks/cluster_throughput.py \
        --output BENCH_PR5.json [--dataset prosper] [--scale 1.0] \
        [--queries 24] [--cache-capacity 16] [--clients 4] [--passes 4]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.cluster import ClusterCoordinator, InlineReplica, seed_log
from repro.cluster.replication import network_edges
from repro.core.engine import find_bursting_flow
from repro.core.query import BurstingFlowQuery
from repro.datasets.queries import generate_queries
from repro.datasets.registry import make_dataset
from repro.service import BurstingFlowService, ServiceClient
from repro.service.metrics import LatencyHistogram
from repro.store.log import AppendLog

#: Same workload seed and delta fraction as the EXP benchmarks.
QUERY_SEED = 648
DELTA_FRACTION = 0.03
#: The acceptance bar: 4-replica cluster QPS vs the single-process baseline.
REQUIRED_SCALING = 1.8

REPLICA_COUNTS = (1, 2, 4)


def _run_clients(host, port, specs, clients):
    """Closed-loop client threads; returns (replies, histogram, wall_s)."""
    import threading

    histogram = LatencyHistogram()
    histogram_lock = threading.Lock()
    replies: dict[int, tuple] = {}
    shards = [specs[i::clients] for i in range(clients)]

    def one_client(shard):
        with ServiceClient(host, port, timeout=600.0) as client:
            for index, (source, sink, delta) in shard:
                started = time.perf_counter()
                reply = client.query(source, sink, delta)
                elapsed = time.perf_counter() - started
                with histogram_lock:
                    histogram.observe(elapsed)
                    replies[index] = (
                        reply.density, reply.interval, reply.flow_value,
                    )

    threads = [
        threading.Thread(target=one_client, args=(shard,))
        for shard in shards if shard
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    return replies, histogram, wall


def _phase_report(request_count, histogram, wall_s):
    snapshot = histogram.snapshot()
    return {
        "requests": request_count,
        "errors": 0,
        "wall_s": round(wall_s, 6),
        "qps": round(request_count / wall_s, 3) if wall_s else None,
        "latency_ms": {
            "p50": snapshot["p50_ms"],
            "p95": snapshot["p95_ms"],
            "p99": snapshot["p99_ms"],
            "mean": snapshot["mean_ms"],
        },
    }


def _workload(unique_specs, passes):
    """`passes` cyclic sweeps over the unique specs (LRU-adversarial)."""
    return [
        (pass_index * len(unique_specs) + index, spec)
        for pass_index in range(passes)
        for index, spec in unique_specs
    ]


def _measure(host, port, unique_specs, clients, passes):
    """One warmup sweep (unmeasured), then the measured passes."""
    _run_clients(host, port, unique_specs, clients)
    measured = _workload(unique_specs, passes)
    return _run_clients(host, port, measured, clients)


def _cache_stats(aggregate):
    cache = aggregate.get("cache", {})
    hits = cache.get("hits", 0)
    misses = cache.get("misses", 0)
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / total, 4) if total else None,
    }


def run_baseline(network, unique_specs, *, cache_capacity, clients, passes):
    """Single-process BurstingFlowService with the same per-node cache."""

    async def serve():
        service = BurstingFlowService(
            network,
            cache_capacity=cache_capacity,
            max_pending=max(64, clients * 4),
            default_timeout=600.0,
            max_timeout=600.0,
        )
        host, port = await service.start("127.0.0.1", 0)
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                None, _measure, host, port, unique_specs, clients, passes
            )
            return result, service.snapshot()
        finally:
            await service.stop()

    (replies, histogram, wall), snapshot = asyncio.run(serve())
    return replies, histogram, wall, _cache_stats(snapshot)


def run_cluster(
    network, unique_specs, *, replicas, cache_capacity, clients, passes,
    log_dir,
):
    """Coordinator + N inline replicas, each with the same small cache."""
    log_path = Path(log_dir) / f"cluster-{replicas}.log"
    log = AppendLog(log_path)
    try:
        seed_log(log, network_edges(network))
    finally:
        log.close()

    async def serve():
        handles = [
            InlineReplica(
                f"r{i}",
                log_path,
                cache_capacity=cache_capacity,
                max_pending=max(64, clients * 4),
                default_timeout=600.0,
                max_timeout=600.0,
            )
            for i in range(replicas)
        ]
        coordinator = ClusterCoordinator(log_path, handles)
        host, port = await coordinator.start("127.0.0.1", 0)
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                None, _measure, host, port, unique_specs, clients, passes
            )
            return result, await coordinator.snapshot()
        finally:
            await coordinator.stop()

    (replies, histogram, wall), snapshot = asyncio.run(serve())
    return replies, histogram, wall, _cache_stats(snapshot["aggregate"])


def run_benchmark(
    *,
    dataset: str = "prosper",
    scale: float = 1.0,
    query_count: int = 24,
    cache_capacity: int = 16,
    clients: int = 4,
    passes: int = 4,
    log_dir: str | None = None,
) -> dict:
    """Measure all topologies; returns the BENCH_PR5 report."""
    import tempfile

    network = make_dataset(dataset, scale=scale)
    workload = generate_queries(network, count=query_count, seed=QUERY_SEED)
    delta = workload.delta_for(DELTA_FRACTION)
    unique_specs = list(
        enumerate((s, t, delta) for s, t in workload.pairs)
    )

    expected = {}
    for index, (source, sink, query_delta) in unique_specs:
        fresh = find_bursting_flow(
            network, BurstingFlowQuery(source, sink, query_delta)
        )
        expected[index] = (fresh.density, fresh.interval, fresh.flow_value)

    def check(topology, replies):
        request_count = passes * len(unique_specs)
        if len(replies) != request_count:
            raise AssertionError(
                f"{topology}: {len(replies)}/{request_count} replies"
            )
        for index, served in replies.items():
            want = expected[index % len(unique_specs)]
            if served != want:
                raise AssertionError(
                    f"{topology} diverged at request {index}: "
                    f"{served} != {want}"
                )

    topologies = {}

    replies, histogram, wall, cache = run_baseline(
        network, unique_specs,
        cache_capacity=cache_capacity, clients=clients, passes=passes,
    )
    check("baseline", replies)
    topologies["baseline-single-service"] = {
        **_phase_report(len(replies), histogram, wall),
        "cache": cache,
    }

    with tempfile.TemporaryDirectory() as scratch:
        for replicas in REPLICA_COUNTS:
            replies, histogram, wall, cache = run_cluster(
                network, unique_specs,
                replicas=replicas, cache_capacity=cache_capacity,
                clients=clients, passes=passes,
                log_dir=log_dir or scratch,
            )
            check(f"cluster-{replicas}", replies)
            topologies[f"cluster-{replicas}"] = {
                **_phase_report(len(replies), histogram, wall),
                "replicas": replicas,
                "cache": cache,
            }

    baseline_qps = topologies["baseline-single-service"]["qps"]
    scaling = {
        f"cluster-{replicas}_vs_baseline": round(
            topologies[f"cluster-{replicas}"]["qps"] / baseline_qps, 3
        )
        for replicas in REPLICA_COUNTS
    }
    achieved = scaling["cluster-4_vs_baseline"]
    if achieved < REQUIRED_SCALING:
        raise AssertionError(
            f"4-replica cluster QPS scaling {achieved:.2f}x is below the "
            f"required {REQUIRED_SCALING:.1f}x"
        )

    return {
        "benchmark": "cluster-throughput-scaling",
        # Closed loop: clients wait for each reply before sending the
        # next request, so these numbers coordinate-omit queueing under
        # saturation.  Open-loop numbers live in BENCH_PR10.json.
        "loop": "closed",
        "metric": (
            "saturated closed-loop QPS through the cluster coordinator at "
            "1/2/4 replicas vs a single-process service, identical "
            "cyclic workload (one unmeasured warmup sweep per topology)"
        ),
        "mechanism": (
            "single-CPU host: the scaling comes from affinity-sharded "
            "aggregate cache capacity, not core parallelism -- the "
            f"workload's {query_count} unique queries overflow one "
            f"{cache_capacity}-entry LRU (thrash, ~0% hits) but each "
            "replica's consistent-hash shard fits its own cache, so "
            "steady-state requests are hits; the curve plateaus once "
            "shards fit (typically already at 2 replicas)"
        ),
        "config": {
            "dataset": dataset,
            "scale": scale,
            "queries": len(unique_specs),
            "query_seed": QUERY_SEED,
            "delta_fraction": DELTA_FRACTION,
            "delta": delta,
            "cache_capacity_per_replica": cache_capacity,
            "clients": clients,
            "passes": passes,
            "replica_mode": "inline",
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "timestamp_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
        },
        "topologies": topologies,
        "scaling": {
            **scaling,
            "required_cluster_4_vs_baseline": REQUIRED_SCALING,
        },
        "equivalence": {
            "checked": (1 + len(REPLICA_COUNTS)) * passes * len(unique_specs),
            "identical": True,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_PR5.json"),
        help="where to write the JSON report (default: ./BENCH_PR5.json)",
    )
    parser.add_argument("--dataset", default="prosper")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--queries", type=int, default=24)
    parser.add_argument("--cache-capacity", type=int, default=16)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--passes", type=int, default=4)
    args = parser.parse_args(argv)

    report = run_benchmark(
        dataset=args.dataset,
        scale=args.scale,
        query_count=args.queries,
        cache_capacity=args.cache_capacity,
        clients=args.clients,
        passes=args.passes,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    for name, numbers in report["topologies"].items():
        latency = numbers["latency_ms"]
        hit_rate = numbers["cache"]["hit_rate"]
        print(
            f"{name:>24}: {numbers['requests']:4d} requests"
            f"  qps {numbers['qps']:10.1f}"
            f"  p50 {latency['p50']:9.3f}ms"
            f"  hit-rate {hit_rate if hit_rate is not None else 0:.2f}"
        )
    scaling = report["scaling"]
    print(
        f"scaling vs baseline: "
        f"x1 {scaling['cluster-1_vs_baseline']:.2f}"
        f"  x2 {scaling['cluster-2_vs_baseline']:.2f}"
        f"  x4 {scaling['cluster-4_vs_baseline']:.2f}"
        f"  (required {scaling['required_cluster_4_vs_baseline']:.1f}x)"
        f"  -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
