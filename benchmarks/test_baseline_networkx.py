"""Baseline — NetworkX Maxflow backend inside BFQ.

The reproduction-calibration note says "networkx [is] available but slow
for large networks".  This bench runs the same BFQ candidate sweep with
(i) our resumable Dinic and (ii) NetworkX's preflow-push via
``maximum_flow_value``, verifying equal answers and reporting the runtime
ratio per query.
"""

from _harness import emit, format_table, timed

from repro import BurstingFlowQuery, bfq
from repro.baselines import networkx_bfq


def test_baseline_networkx_backend(datasets, workloads, benchmark):
    network = datasets["bayc"]
    workload = workloads["bayc"]
    delta = workload.delta_for(0.03)
    pairs = list(workload)[:4]

    def run_all():
        rows = []
        for index, (source, sink) in enumerate(pairs, start=1):
            query = BurstingFlowQuery(source, sink, delta)
            ours_seconds, ours = timed(lambda: bfq(network, query))
            nx_seconds, theirs = timed(lambda: networkx_bfq(network, query))
            assert abs(ours.density - theirs.density) < 1e-6
            rows.append(
                (
                    f"Q{index}",
                    f"{ours_seconds * 1000:.1f}ms",
                    f"{nx_seconds * 1000:.1f}ms",
                    f"{nx_seconds / max(ours_seconds, 1e-9):.1f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "Baseline - bespoke Dinic vs NetworkX inside BFQ (bayc)",
        format_table(("query", "dinic BFQ", "networkx BFQ", "nx/dinic"), rows),
    )
