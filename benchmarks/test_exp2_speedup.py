"""EXP-2 / Figure 10 — incremental-Maxflow speedup vs amount of
incremental computation.

Following the paper, pruning (Observation 2) is *disabled* here so the
measurement isolates the incremental Maxflow machinery.  For every query
we record:

* the BFQ/BFQ+ runtime ratio against the number of insertion-case
  incremental computations BFQ+ performed (Figure 10(a)); and
* the BFQ+/BFQ* ratio against the number of deletion-case computations
  (Figure 10(b)).

The asserted shape: speedup correlates with the amount of incremental
work — queries with zero incremental computations show ~1x, queries with
many show the largest gains.
"""

import pytest
from _harness import emit, format_table, geometric_mean, timed

from repro import find_bursting_flow

#: Datasets where incremental computation of both cases exists (paper:
#: CTU-13, Prosper, BAYC; Btc2011 queries mostly have |Ti| = 1).
DATASETS = ("ctu13", "prosper", "bayc")


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_exp2_speedup_vs_incremental_computations(
    dataset_name, datasets, workloads, benchmark
):
    network = datasets[dataset_name]
    workload = workloads[dataset_name]
    delta = workload.delta_for(0.03)

    def best_of_two(fn):
        first_seconds, result = timed(fn)
        second_seconds, _ = timed(fn)
        return min(first_seconds, second_seconds), result

    def run_all():
        points = []
        for index, (source, sink) in enumerate(workload, start=1):
            t_bfq, _ = best_of_two(
                lambda: find_bursting_flow(
                    network, source=source, sink=sink, delta=delta,
                    algorithm="bfq",
                )
            )
            t_plus, r_plus = best_of_two(
                lambda: find_bursting_flow(
                    network, source=source, sink=sink, delta=delta,
                    algorithm="bfq+", use_pruning=False,
                )
            )
            t_star, r_star = best_of_two(
                lambda: find_bursting_flow(
                    network, source=source, sink=sink, delta=delta,
                    algorithm="bfq*", use_pruning=False,
                )
            )
            points.append(
                {
                    "label": f"Q{index}",
                    "insertions": r_plus.stats.incremental_insertions,
                    "deletions": r_star.stats.incremental_deletions,
                    "speedup_plus": t_bfq / max(t_plus, 1e-9),
                    "speedup_star": t_plus / max(t_star, 1e-9),
                }
            )
        return points

    points = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (
            p["label"],
            p["insertions"],
            f"{p['speedup_plus']:.2f}x",
            p["deletions"],
            f"{p['speedup_star']:.2f}x",
        )
        for p in sorted(points, key=lambda p: p["insertions"])
    ]
    emit(
        f"EXP-2 Figure 10 ({dataset_name}) - speedup vs #incremental (no pruning)",
        format_table(
            ("query", "#MaxFlow+", "BFQ/BFQ+", "#MaxFlow-", "BFQ+/BFQ*"),
            rows,
        ),
    )

    # Shape: in aggregate, incremental computation pays — the total BFQ
    # time over queries with real incremental work is not beaten by BFQ+.
    heavy = [p for p in points if p["insertions"] >= 5]
    if heavy:
        mean_heavy = geometric_mean([p["speedup_plus"] for p in heavy])
        assert mean_heavy > 0.7, heavy  # never a systematic loss
    if dataset_name == "prosper":
        # The paper's strongest case: dense data, long sweeps.
        assert geometric_mean(
            [p["speedup_plus"] for p in points if p["insertions"] >= 5]
        ) > 1.3
    # With no incremental work at all, runtimes are essentially equal.
    trivial = [p for p in points if p["insertions"] == 0]
    for p in trivial:
        assert 0.3 < p["speedup_plus"] < 3.0, p
