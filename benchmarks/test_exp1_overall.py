"""EXP-1 / Figure 9 — overall runtimes of BFQ, BFQ+, BFQ* per query.

For each replica dataset and each workload query, all three solutions run
at the paper's default delta (3% of |T|).  The per-query runtimes are the
Figure-9 series; the asserted *shape* is the paper's headline: the
incremental solutions never lose badly to BFQ, and win clearly in
aggregate on the dense dataset (Prosper).
"""

import pytest
from _harness import emit, format_table, geometric_mean, timed

from repro import find_bursting_flow

ALGORITHMS = ("bfq", "bfq+", "bfq*")

#: Collected rows: dataset -> list of (query label, {algo: seconds}, density).
_RESULTS: dict[str, list] = {}


@pytest.mark.parametrize("dataset_name", ("bayc", "prosper", "ctu13", "btc2011"))
def test_exp1_runtimes(dataset_name, datasets, workloads, benchmark):
    network = datasets[dataset_name]
    workload = workloads[dataset_name]
    delta = workload.delta_for(0.03)
    rows = []

    def run_all():
        collected = []
        # Warm up interpreter caches so the first measured query is not
        # penalised by one-off import/alloc costs.
        warm_source, warm_sink = next(iter(workload))
        find_bursting_flow(
            network, source=warm_source, sink=warm_sink, delta=delta,
            algorithm="bfq*",
        )
        for index, (source, sink) in enumerate(workload, start=1):
            times = {}
            densities = {}
            for algorithm in ALGORITHMS:
                seconds, result = timed(
                    lambda a=algorithm: find_bursting_flow(
                        network, source=source, sink=sink, delta=delta,
                        algorithm=a,
                    )
                )
                times[algorithm] = seconds
                densities[algorithm] = result.density
            spread = max(densities.values()) - min(densities.values())
            assert spread < 1e-6, "solutions disagree"
            collected.append((f"Q{index}", times, densities["bfq"]))
        return collected

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _RESULTS[dataset_name] = rows

    table_rows = [
        (
            label,
            *(f"{times[a] * 1000:.1f}ms" for a in ALGORITHMS),
            f"{density:.2f}",
        )
        for label, times, density in rows
    ]
    totals = {a: sum(times[a] for _, times, __ in rows) for a in ALGORITHMS}
    table_rows.append(
        ("TOTAL", *(f"{totals[a] * 1000:.1f}ms" for a in ALGORITHMS), "")
    )
    emit(
        f"EXP-1 Figure 9 ({dataset_name}) delta={delta}",
        format_table(("query", *ALGORITHMS, "density"), table_rows),
    )

    # Shape assertions (paper Section 6.2, EXP-1):
    # the incremental solutions never lose badly per query (x3 leaves
    # room for single-run timing noise on sub-millisecond queries)...
    for label, times, _ in rows:
        assert times["bfq+"] <= times["bfq"] * 3.0 + 0.05, (label, times)
    # ...and in aggregate BFQ+ is at worst noise-level slower than BFQ
    # (the queries here run in single-digit milliseconds; the *strong*
    # aggregate claim is asserted on prosper, where the work is real).
    assert totals["bfq+"] <= totals["bfq"] * 1.5 + 0.1
    if dataset_name == "prosper":
        assert totals["bfq+"] * 2 < totals["bfq"], totals


def test_exp1_prosper_speedup_summary(datasets, workloads, benchmark):
    """The dense dataset is where incremental computation pays the most."""
    if "prosper" not in _RESULTS:
        pytest.skip("run after the prosper EXP-1 case")
    rows = _RESULTS["prosper"]
    ratios = [times["bfq"] / max(times["bfq+"], 1e-9) for _, times, __ in rows]
    mean_speedup = benchmark.pedantic(
        lambda: geometric_mean(ratios), rounds=1, iterations=1
    )
    emit(
        "EXP-1 speedup summary (prosper)",
        f"geometric-mean BFQ/BFQ+ speedup over {len(rows)} queries: "
        f"{mean_speedup:.2f}x (paper reports up to 5x)",
    )
    assert mean_speedup > 1.5
