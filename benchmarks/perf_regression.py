"""Perf-regression harness for the engine's kernel and transform choices.

Two experiments, selected with ``--experiment``:

* ``kernel`` (EXP-3 regression, writes ``BENCH_PR2.json`` by default) —
  reruns the incremental-maxflow workload (the per-candidate-interval
  ``maxflow_seconds`` samples of BFQ+/BFQ* sweeps) under both engine
  kernels: ``object`` (Dinic resumed by walking the ``Arc`` object graph)
  vs ``persistent`` (the flat CSR arena kernel).

* ``transform`` (EXP-4 regression, writes ``BENCH_PR4.json`` by default) —
  times full end-to-end queries under both window transforms: ``object``
  (every candidate window rebuilt through ``build_transformed_network`` /
  per-extension reachability sweeps) vs ``skeleton`` (one compiled
  :class:`~repro.core.skeleton.WindowSkeleton` per query, candidates
  materialised as binary-searched array slices into detached residual
  arenas).  BFQ is the headline (it rebuilds every window, so the
  transform dominates); BFQ+/BFQ* are included to show the skeleton is
  never a regression for the incremental solutions.

Configurations are interleaved within each repetition and the
per-configuration minimum across repetitions is kept, which cancels
machine drift without favouring either side.  The JSON written to
``--output`` records the raw numbers (see docs/benchmarks.md for the
schemas); CI's bench-smoke step runs a reduced configuration of this
script and uploads the artifact.

Usage::

    PYTHONPATH=src python benchmarks/perf_regression.py \
        [--experiment kernel|transform] [--output FILE.json] \
        [--scale 1.0] [--queries 6] [--reps 3]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core.bfq import bfq
from repro.core.bfq_plus import bfq_plus
from repro.core.bfq_star import bfq_star
from repro.core.query import BurstingFlowQuery
from repro.datasets.queries import generate_queries
from repro.datasets.registry import make_dataset

#: EXP-3's datasets (bayc's transformed networks are too small to time).
DATASETS = ("btc2011", "ctu13", "prosper")
ALGORITHMS = {"bfq_plus": bfq_plus, "bfq_star": bfq_star}
KERNELS = ("object", "persistent")
#: Same workload seed and delta fraction as the EXP benchmarks.
QUERY_SEED = 648
DELTA_FRACTION = 0.03


def _run_workload(algorithm, network, queries, kernel):
    """One full sweep; returns (maxflow seconds, wall seconds)."""
    maxflow_seconds = 0.0
    wall_start = time.perf_counter()
    for query in queries:
        result = algorithm(network, query, kernel=kernel)
        maxflow_seconds += sum(
            sample.maxflow_seconds for sample in result.stats.samples
        )
    return maxflow_seconds, time.perf_counter() - wall_start


def run_benchmark(
    *,
    datasets=DATASETS,
    scale: float = 1.0,
    query_count: int = 6,
    reps: int = 3,
) -> dict:
    """Compare both kernels on the EXP-3 workload; returns the report."""
    configs = []
    for name in datasets:
        network = make_dataset(name, scale=scale)
        workload = generate_queries(network, count=query_count, seed=QUERY_SEED)
        delta = workload.delta_for(DELTA_FRACTION)
        queries = [
            BurstingFlowQuery(source=s, sink=t, delta=delta)
            for s, t in workload.pairs
        ]
        for algo_name, algorithm in ALGORITHMS.items():
            best = {k: {"maxflow_s": None, "wall_s": None} for k in KERNELS}
            for _ in range(reps):
                for kernel in KERNELS:  # interleaved: drift hits both sides
                    mf, wall = _run_workload(algorithm, network, queries, kernel)
                    slot = best[kernel]
                    if slot["maxflow_s"] is None or mf < slot["maxflow_s"]:
                        slot["maxflow_s"] = mf
                    if slot["wall_s"] is None or wall < slot["wall_s"]:
                        slot["wall_s"] = wall
            configs.append(
                {
                    "dataset": name,
                    "algorithm": algo_name,
                    "delta": delta,
                    "num_queries": len(queries),
                    "kernels": best,
                    "speedup_maxflow": best["object"]["maxflow_s"]
                    / max(best["persistent"]["maxflow_s"], 1e-12),
                    "speedup_wall": best["object"]["wall_s"]
                    / max(best["persistent"]["wall_s"], 1e-12),
                }
            )

    total = {
        kernel: sum(c["kernels"][kernel]["maxflow_s"] for c in configs)
        for kernel in KERNELS
    }
    return {
        "benchmark": "exp3-incremental-maxflow-kernel-regression",
        "metric": (
            "sum of per-candidate-interval maxflow_seconds over the EXP-3 "
            "BFQ+/BFQ* sweeps (min over interleaved repetitions)"
        ),
        "baseline": "object (pre-persistent-arena engine)",
        "candidate": "persistent (flat CSR arena kernel)",
        "config": {
            "datasets": list(datasets),
            "scale": scale,
            "queries_per_dataset": query_count,
            "query_seed": QUERY_SEED,
            "delta_fraction": DELTA_FRACTION,
            "reps": reps,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "timestamp_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
        },
        "configs": configs,
        "aggregate": {
            "object_maxflow_s": total["object"],
            "persistent_maxflow_s": total["persistent"],
            "speedup": total["object"] / max(total["persistent"], 1e-12),
        },
    }


#: EXP-4 transform comparison: skeleton slicing vs object-graph rebuilds.
TRANSFORMS = ("object", "skeleton")
TRANSFORM_ALGORITHMS = {"bfq": bfq, "bfq_plus": bfq_plus, "bfq_star": bfq_star}


def _run_transform_workload(algorithm, network, queries, transform):
    """One full end-to-end sweep; returns wall seconds."""
    wall_start = time.perf_counter()
    for query in queries:
        algorithm(network, query, transform=transform)
    return time.perf_counter() - wall_start


def run_transform_benchmark(
    *,
    datasets=DATASETS,
    scale: float = 1.0,
    query_count: int = 6,
    reps: int = 3,
) -> dict:
    """Compare both window transforms end-to-end; returns the report."""
    configs = []
    for name in datasets:
        network = make_dataset(name, scale=scale)
        workload = generate_queries(network, count=query_count, seed=QUERY_SEED)
        delta = workload.delta_for(DELTA_FRACTION)
        queries = [
            BurstingFlowQuery(source=s, sink=t, delta=delta)
            for s, t in workload.pairs
        ]
        for algo_name, algorithm in TRANSFORM_ALGORITHMS.items():
            best = {t: None for t in TRANSFORMS}
            for _ in range(reps):
                for transform in TRANSFORMS:  # interleaved
                    wall = _run_transform_workload(
                        algorithm, network, queries, transform
                    )
                    if best[transform] is None or wall < best[transform]:
                        best[transform] = wall
            configs.append(
                {
                    "dataset": name,
                    "algorithm": algo_name,
                    "delta": delta,
                    "num_queries": len(queries),
                    "transforms": {
                        t: {"wall_s": best[t]} for t in TRANSFORMS
                    },
                    "speedup_wall": best["object"]
                    / max(best["skeleton"], 1e-12),
                }
            )

    bfq_configs = [c for c in configs if c["algorithm"] == "bfq"]
    total = {
        transform: sum(
            c["transforms"][transform]["wall_s"] for c in bfq_configs
        )
        for transform in TRANSFORMS
    }
    return {
        "benchmark": "exp4-window-transform-regression",
        "metric": (
            "end-to-end wall seconds per query sweep (min over interleaved "
            "repetitions); aggregate speedup is over the BFQ configs, where "
            "the per-window transform dominates"
        ),
        "baseline": "object (per-window object-graph rebuild)",
        "candidate": "skeleton (compiled per-query WindowSkeleton slices)",
        "config": {
            "datasets": list(datasets),
            "scale": scale,
            "queries_per_dataset": query_count,
            "query_seed": QUERY_SEED,
            "delta_fraction": DELTA_FRACTION,
            "reps": reps,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "timestamp_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
        },
        "configs": configs,
        "aggregate": {
            "bfq_object_wall_s": total["object"],
            "bfq_skeleton_wall_s": total["skeleton"],
            "speedup": total["object"] / max(total["skeleton"], 1e-12),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--experiment",
        default="kernel",
        choices=["kernel", "transform"],
        help="kernel: EXP-3 object-vs-persistent; transform: EXP-4 "
        "object-vs-skeleton (default: kernel)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: ./BENCH_PR2.json "
        "for kernel, ./BENCH_PR4.json for transform)",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--queries", type=int, default=6)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=list(DATASETS),
        choices=list(DATASETS),
    )
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = Path(
            "BENCH_PR2.json" if args.experiment == "kernel" else "BENCH_PR4.json"
        )

    if args.experiment == "transform":
        report = run_transform_benchmark(
            datasets=tuple(args.datasets),
            scale=args.scale,
            query_count=args.queries,
            reps=args.reps,
        )
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        for config in report["configs"]:
            transforms = config["transforms"]
            print(
                f"{config['dataset']:>8} {config['algorithm']:<9}"
                f" object {transforms['object']['wall_s'] * 1e3:8.1f}ms"
                f" skeleton {transforms['skeleton']['wall_s'] * 1e3:8.1f}ms"
                f" speedup {config['speedup_wall']:.2f}x"
            )
        aggregate = report["aggregate"]
        print(
            f"aggregate (bfq): {aggregate['bfq_object_wall_s'] * 1e3:.0f}ms ->"
            f" {aggregate['bfq_skeleton_wall_s'] * 1e3:.0f}ms"
            f" = {aggregate['speedup']:.2f}x ({args.output})"
        )
        return 0

    report = run_benchmark(
        datasets=tuple(args.datasets),
        scale=args.scale,
        query_count=args.queries,
        reps=args.reps,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    for config in report["configs"]:
        kernels = config["kernels"]
        print(
            f"{config['dataset']:>8} {config['algorithm']:<9}"
            f" object {kernels['object']['maxflow_s'] * 1e3:8.1f}ms"
            f" persistent {kernels['persistent']['maxflow_s'] * 1e3:8.1f}ms"
            f" speedup {config['speedup_maxflow']:.2f}x"
        )
    aggregate = report["aggregate"]
    print(
        f"aggregate: {aggregate['object_maxflow_s'] * 1e3:.0f}ms ->"
        f" {aggregate['persistent_maxflow_s'] * 1e3:.0f}ms"
        f" = {aggregate['speedup']:.2f}x ({args.output})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
