"""Perf-regression harness for the engine's kernel and transform choices.

Three experiments, selected with ``--experiment``:

* ``kernel`` (EXP-3 regression, writes ``BENCH_PR2.json`` by default) —
  reruns the incremental-maxflow workload (the per-candidate-interval
  ``maxflow_seconds`` samples of BFQ+/BFQ* sweeps) under both engine
  kernels: ``object`` (Dinic resumed by walking the ``Arc`` object graph)
  vs ``persistent`` (the flat CSR arena kernel).

* ``transform`` (EXP-4 regression, writes ``BENCH_PR4.json`` by default) —
  times full end-to-end queries under both window transforms: ``object``
  (every candidate window rebuilt through ``build_transformed_network`` /
  per-extension reachability sweeps) vs ``skeleton`` (one compiled
  :class:`~repro.core.skeleton.WindowSkeleton` per query, candidates
  materialised as binary-searched array slices into detached residual
  arenas).  BFQ is the headline (it rebuilds every window, so the
  transform dominates); BFQ+/BFQ* are included to show the skeleton is
  never a regression for the incremental solutions.

* ``kernels`` (writes ``BENCH_PR9.json`` by default) — the
  specialised-kernel matrix, in three sections: **sweep** (full BFQ*
  query sweeps under every arena kernel, with ``adaptive``'s ratio
  against the best fixed kernel per dataset), **large_window** (cold
  solves on each dataset's widest candidate windows — the regime the
  ``vectorized``/``push_relabel`` kernels were built for), and **shm**
  (an append-heavy service microbench comparing the shared-memory edge
  log against per-epoch pool rebuilds).

Configurations are interleaved within each repetition and the
per-configuration minimum across repetitions is kept, which cancels
machine drift without favouring either side.  The JSON written to
``--output`` records the raw numbers (see docs/benchmarks.md for the
schemas); CI's bench-smoke step runs a reduced configuration of this
script and uploads the artifact.

Usage::

    PYTHONPATH=src python benchmarks/perf_regression.py \
        [--experiment kernel|transform|kernels] [--output FILE.json] \
        [--scale 1.0] [--queries 6] [--reps 3]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core.bfq import bfq
from repro.core.bfq_plus import bfq_plus
from repro.core.bfq_star import bfq_star
from repro.core.query import BurstingFlowQuery
from repro.datasets.queries import generate_queries
from repro.datasets.registry import make_dataset

#: EXP-3's datasets (bayc's transformed networks are too small to time).
DATASETS = ("btc2011", "ctu13", "prosper")
ALGORITHMS = {"bfq_plus": bfq_plus, "bfq_star": bfq_star}
KERNELS = ("object", "persistent")
#: Same workload seed and delta fraction as the EXP benchmarks.
QUERY_SEED = 648
DELTA_FRACTION = 0.03


def _run_workload(algorithm, network, queries, kernel):
    """One full sweep; returns (maxflow seconds, wall seconds)."""
    maxflow_seconds = 0.0
    wall_start = time.perf_counter()
    for query in queries:
        result = algorithm(network, query, kernel=kernel)
        maxflow_seconds += sum(
            sample.maxflow_seconds for sample in result.stats.samples
        )
    return maxflow_seconds, time.perf_counter() - wall_start


def run_benchmark(
    *,
    datasets=DATASETS,
    scale: float = 1.0,
    query_count: int = 6,
    reps: int = 3,
) -> dict:
    """Compare both kernels on the EXP-3 workload; returns the report."""
    configs = []
    for name in datasets:
        network = make_dataset(name, scale=scale)
        workload = generate_queries(network, count=query_count, seed=QUERY_SEED)
        delta = workload.delta_for(DELTA_FRACTION)
        queries = [
            BurstingFlowQuery(source=s, sink=t, delta=delta)
            for s, t in workload.pairs
        ]
        for algo_name, algorithm in ALGORITHMS.items():
            best = {k: {"maxflow_s": None, "wall_s": None} for k in KERNELS}
            for _ in range(reps):
                for kernel in KERNELS:  # interleaved: drift hits both sides
                    mf, wall = _run_workload(algorithm, network, queries, kernel)
                    slot = best[kernel]
                    if slot["maxflow_s"] is None or mf < slot["maxflow_s"]:
                        slot["maxflow_s"] = mf
                    if slot["wall_s"] is None or wall < slot["wall_s"]:
                        slot["wall_s"] = wall
            configs.append(
                {
                    "dataset": name,
                    "algorithm": algo_name,
                    "delta": delta,
                    "num_queries": len(queries),
                    "kernels": best,
                    "speedup_maxflow": best["object"]["maxflow_s"]
                    / max(best["persistent"]["maxflow_s"], 1e-12),
                    "speedup_wall": best["object"]["wall_s"]
                    / max(best["persistent"]["wall_s"], 1e-12),
                }
            )

    total = {
        kernel: sum(c["kernels"][kernel]["maxflow_s"] for c in configs)
        for kernel in KERNELS
    }
    return {
        "benchmark": "exp3-incremental-maxflow-kernel-regression",
        "metric": (
            "sum of per-candidate-interval maxflow_seconds over the EXP-3 "
            "BFQ+/BFQ* sweeps (min over interleaved repetitions)"
        ),
        "baseline": "object (pre-persistent-arena engine)",
        "candidate": "persistent (flat CSR arena kernel)",
        "config": {
            "datasets": list(datasets),
            "scale": scale,
            "queries_per_dataset": query_count,
            "query_seed": QUERY_SEED,
            "delta_fraction": DELTA_FRACTION,
            "reps": reps,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "timestamp_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
        },
        "configs": configs,
        "aggregate": {
            "object_maxflow_s": total["object"],
            "persistent_maxflow_s": total["persistent"],
            "speedup": total["object"] / max(total["persistent"], 1e-12),
        },
    }


#: EXP-4 transform comparison: skeleton slicing vs object-graph rebuilds.
TRANSFORMS = ("object", "skeleton")
TRANSFORM_ALGORITHMS = {"bfq": bfq, "bfq_plus": bfq_plus, "bfq_star": bfq_star}


def _run_transform_workload(algorithm, network, queries, transform):
    """One full end-to-end sweep; returns wall seconds."""
    wall_start = time.perf_counter()
    for query in queries:
        algorithm(network, query, transform=transform)
    return time.perf_counter() - wall_start


def run_transform_benchmark(
    *,
    datasets=DATASETS,
    scale: float = 1.0,
    query_count: int = 6,
    reps: int = 3,
) -> dict:
    """Compare both window transforms end-to-end; returns the report."""
    configs = []
    for name in datasets:
        network = make_dataset(name, scale=scale)
        workload = generate_queries(network, count=query_count, seed=QUERY_SEED)
        delta = workload.delta_for(DELTA_FRACTION)
        queries = [
            BurstingFlowQuery(source=s, sink=t, delta=delta)
            for s, t in workload.pairs
        ]
        for algo_name, algorithm in TRANSFORM_ALGORITHMS.items():
            best = {t: None for t in TRANSFORMS}
            for _ in range(reps):
                for transform in TRANSFORMS:  # interleaved
                    wall = _run_transform_workload(
                        algorithm, network, queries, transform
                    )
                    if best[transform] is None or wall < best[transform]:
                        best[transform] = wall
            configs.append(
                {
                    "dataset": name,
                    "algorithm": algo_name,
                    "delta": delta,
                    "num_queries": len(queries),
                    "transforms": {
                        t: {"wall_s": best[t]} for t in TRANSFORMS
                    },
                    "speedup_wall": best["object"]
                    / max(best["skeleton"], 1e-12),
                }
            )

    bfq_configs = [c for c in configs if c["algorithm"] == "bfq"]
    total = {
        transform: sum(
            c["transforms"][transform]["wall_s"] for c in bfq_configs
        )
        for transform in TRANSFORMS
    }
    return {
        "benchmark": "exp4-window-transform-regression",
        "metric": (
            "end-to-end wall seconds per query sweep (min over interleaved "
            "repetitions); aggregate speedup is over the BFQ configs, where "
            "the per-window transform dominates"
        ),
        "baseline": "object (per-window object-graph rebuild)",
        "candidate": "skeleton (compiled per-query WindowSkeleton slices)",
        "config": {
            "datasets": list(datasets),
            "scale": scale,
            "queries_per_dataset": query_count,
            "query_seed": QUERY_SEED,
            "delta_fraction": DELTA_FRACTION,
            "reps": reps,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "timestamp_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
        },
        "configs": configs,
        "aggregate": {
            "bfq_object_wall_s": total["object"],
            "bfq_skeleton_wall_s": total["skeleton"],
            "speedup": total["object"] / max(total["skeleton"], 1e-12),
        },
    }


# ----------------------------------------------------------------------
# --experiment kernels: the specialised-kernel matrix (BENCH_PR9)
# ----------------------------------------------------------------------
#: Every kernel that runs on the persistent arena (order = report order).
ARENA_KERNEL_MATRIX = ("persistent", "vectorized", "push_relabel", "adaptive")
#: Specialised kernels count as "in regime" on windows at least this big
#: (matches repro.flownet.algorithms.selector.VECTORIZED_ARCS).
FAVORABLE_ARCS = 24_000
#: Windows ranked by span; this many of the widest are timed cold.
LARGE_WINDOWS_PER_DATASET = 4


def _sweep_section(datasets, scale, query_count, reps):
    """Full BFQ* sweeps per kernel; adaptive vs the best fixed kernel."""
    configs = []
    for name in datasets:
        network = make_dataset(name, scale=scale)
        workload = generate_queries(network, count=query_count, seed=QUERY_SEED)
        delta = workload.delta_for(DELTA_FRACTION)
        queries = [
            BurstingFlowQuery(source=s, sink=t, delta=delta)
            for s, t in workload.pairs
        ]
        best: dict = {k: None for k in ARENA_KERNEL_MATRIX}
        for query in queries:  # unmeasured warmup: first-touch costs
            bfq_star(network, query, kernel="persistent")
        for _ in range(reps):
            for kernel in ARENA_KERNEL_MATRIX:  # interleaved
                start = time.perf_counter()
                for query in queries:
                    bfq_star(network, query, kernel=kernel)
                wall = time.perf_counter() - start
                if best[kernel] is None or wall < best[kernel]:
                    best[kernel] = wall
        fixed = {k: best[k] for k in ARENA_KERNEL_MATRIX if k != "adaptive"}
        best_fixed = min(fixed, key=fixed.get)
        configs.append(
            {
                "dataset": name,
                "delta": delta,
                "num_queries": len(queries),
                "wall_s": best,
                "best_fixed": best_fixed,
                "adaptive_vs_best_fixed": fixed[best_fixed]
                / max(best["adaptive"], 1e-12),
            }
        )
    return configs


def _large_window_section(datasets, scale, query_count, reps):
    """Cold per-kernel solves on each dataset's widest candidate windows."""
    from repro.core.incremental import IncrementalTransformedNetwork
    from repro.core.intervals import enumerate_candidates

    fixed_kernels = [k for k in ARENA_KERNEL_MATRIX if k != "adaptive"]
    windows = []
    for name in datasets:
        network = make_dataset(name, scale=scale)
        workload = generate_queries(network, count=query_count, seed=QUERY_SEED)
        delta = workload.delta_for(DELTA_FRACTION)
        candidates = []
        for s, t in workload.pairs:
            plan = enumerate_candidates(network, s, t, delta)
            candidates.extend(
                (te - ts, s, t, ts, te) for (ts, te) in plan.intervals()
            )
        candidates.sort(reverse=True)  # widest span first (arc-count proxy)
        for _, s, t, ts, te in candidates[:LARGE_WINDOWS_PER_DATASET]:
            timings: dict = {k: None for k in fixed_kernels}
            arcs = 0
            for _ in range(reps):
                for kernel in fixed_kernels:  # interleaved
                    state = IncrementalTransformedNetwork(
                        network, s, t, ts, te, kernel=kernel
                    )
                    start = time.perf_counter()
                    state.run_maxflow()
                    wall = time.perf_counter() - start
                    if timings[kernel] is None or wall < timings[kernel]:
                        timings[kernel] = wall
                    if state.network.arena is not None:
                        arcs = len(state.network.arena.heads)
            windows.append(
                {
                    "dataset": name,
                    "interval": [ts, te],
                    "arcs": arcs,
                    "wall_s": timings,
                    "speedup_vs_persistent": {
                        k: timings["persistent"] / max(timings[k], 1e-12)
                        for k in fixed_kernels
                        if k != "persistent"
                    },
                }
            )
    return windows


def _shm_section(shm_cycles: int, shm_scale: float):
    """Append-heavy refresh cost: shared-memory publish vs pool rebuild.

    Each cycle appends a few edges and immediately queries; the per-cycle
    state-refresh overhead is the cycle time minus the warm solve time.
    The shared log should eliminate nearly all of it (no pool teardown,
    no network re-pickle — workers replay only the appended records).
    """
    import asyncio

    from repro.service.workers import ProcessEnginePool
    from repro.temporal.edge import TemporalEdge

    async def measure(shared: bool) -> dict:
        network = make_dataset("ctu13", scale=shm_scale)
        workload = generate_queries(network, count=2, seed=QUERY_SEED)
        source, sink = workload.pairs[0]
        delta = workload.delta_for(DELTA_FRACTION)
        pool = ProcessEnginePool(
            network, processes=2, mp_context="fork", shared=shared
        )
        try:
            await pool.answer(source, sink, delta, "bfq*", None)  # warm
            warm_start = time.perf_counter()
            warm_solves = 3
            for _ in range(warm_solves):
                await pool.answer(source, sink, delta, "bfq*", None)
            warm_s = (time.perf_counter() - warm_start) / warm_solves
            tau = network.t_max
            cycle_start = time.perf_counter()
            for cycle in range(shm_cycles):
                fresh = [
                    TemporalEdge(source, f"shmb{cycle}_{i}", tau + cycle + 1, 1.0)
                    for i in range(4)
                ]
                for edge in fresh:
                    network.add_edge(edge)
                pool.mark_stale(fresh if shared else None)
                await pool.answer(source, sink, delta, "bfq*", None)
            cycles_s = time.perf_counter() - cycle_start
            refresh_s = max(cycles_s - shm_cycles * warm_s, 0.0) / shm_cycles
            return {
                "warm_solve_s": warm_s,
                "cycle_total_s": cycles_s,
                "refresh_per_append_s": refresh_s,
            }
        finally:
            pool.close()

    rebuild = asyncio.run(measure(False))
    shm = asyncio.run(measure(True))
    eliminated = 1.0 - (
        shm["refresh_per_append_s"]
        / max(rebuild["refresh_per_append_s"], 1e-12)
    )
    return {
        "dataset": "ctu13",
        "cycles": shm_cycles,
        "rebuild": rebuild,
        "shared": shm,
        "refresh_eliminated": eliminated,
    }


def run_kernels_benchmark(
    *,
    datasets=DATASETS,
    scale: float = 1.0,
    large_scale: float = 3.0,
    query_count: int = 6,
    reps: int = 3,
    shm_cycles: int = 8,
    shm_scale: float = 1.0,
) -> dict:
    """The specialised-kernel matrix (BENCH_PR9); returns the report.

    ``scale`` sizes the sweep section (the standard EXP-3 workload);
    ``large_scale`` sizes the large-window section separately, because
    the specialised kernels only enter their regime on windows of
    roughly ``FAVORABLE_ARCS`` arcs and the standard datasets never get
    there at scale 1.
    """
    return {
        "benchmark": "pr9-specialised-kernel-matrix",
        "metric": (
            "sweep: end-to-end BFQ* wall seconds per kernel (min over "
            "interleaved reps); large_window: cold run_maxflow wall seconds "
            "on the widest candidate windows; shm: per-append worker "
            "state-refresh seconds, shared-memory log vs pool rebuild"
        ),
        "baseline": "persistent (flat-array Dinic) / pool rebuild per epoch",
        "candidate": (
            "vectorized + push_relabel + adaptive kernels / shared-memory "
            "edge log"
        ),
        "config": {
            "datasets": list(datasets),
            "scale": scale,
            "large_scale": large_scale,
            "queries_per_dataset": query_count,
            "query_seed": QUERY_SEED,
            "delta_fraction": DELTA_FRACTION,
            "reps": reps,
            "favorable_arcs": FAVORABLE_ARCS,
            "shm_cycles": shm_cycles,
            "shm_scale": shm_scale,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "timestamp_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
        },
        "sweep": _sweep_section(datasets, scale, query_count, reps),
        "large_window": _large_window_section(
            datasets, large_scale, query_count, reps
        ),
        "shm": _shm_section(shm_cycles, shm_scale),
    }


def summarise_kernels_report(report: dict) -> dict:
    """Roll the headline numbers out of a kernels report (used by CI too)."""
    favorable = [
        window
        for window in report["large_window"]
        if window["arcs"] >= report["config"]["favorable_arcs"]
    ]
    best_specialised = max(
        (
            max(window["speedup_vs_persistent"].values())
            for window in favorable
        ),
        default=None,
    )
    return {
        "adaptive_vs_best_fixed_min": min(
            config["adaptive_vs_best_fixed"] for config in report["sweep"]
        ),
        "favorable_windows": len(favorable),
        "best_specialised_speedup": best_specialised,
        "shm_refresh_eliminated": report["shm"]["refresh_eliminated"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--experiment",
        default="kernel",
        choices=["kernel", "transform", "kernels"],
        help="kernel: EXP-3 object-vs-persistent; transform: EXP-4 "
        "object-vs-skeleton; kernels: PR-9 specialised-kernel matrix "
        "(default: kernel)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: ./BENCH_PR2.json "
        "for kernel, ./BENCH_PR4.json for transform, ./BENCH_PR9.json "
        "for kernels)",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--large-scale",
        type=float,
        default=3.0,
        help="dataset scale for the kernels experiment's large-window "
        "section (the specialised kernels' regime; default: 3.0)",
    )
    parser.add_argument("--queries", type=int, default=6)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--shm-cycles",
        type=int,
        default=8,
        help="append+query cycles per side in the kernels experiment's "
        "shared-memory section (default: 8)",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=list(DATASETS),
        choices=list(DATASETS),
    )
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = Path(
            {
                "kernel": "BENCH_PR2.json",
                "transform": "BENCH_PR4.json",
                "kernels": "BENCH_PR9.json",
            }[args.experiment]
        )

    if args.experiment == "kernels":
        report = run_kernels_benchmark(
            datasets=tuple(args.datasets),
            scale=args.scale,
            large_scale=args.large_scale,
            query_count=args.queries,
            reps=args.reps,
            shm_cycles=args.shm_cycles,
            shm_scale=args.scale,
        )
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        for config in report["sweep"]:
            cells = " ".join(
                f"{kernel} {config['wall_s'][kernel] * 1e3:8.1f}ms"
                for kernel in ARENA_KERNEL_MATRIX
            )
            print(
                f"{config['dataset']:>8} sweep {cells}"
                f"  adaptive/best-fixed {config['adaptive_vs_best_fixed']:.2f}x"
            )
        for window in report["large_window"]:
            ups = " ".join(
                f"{kernel} {speedup:.2f}x"
                for kernel, speedup in window["speedup_vs_persistent"].items()
            )
            print(
                f"{window['dataset']:>8} window {window['interval']}"
                f" arcs {window['arcs']:>6} {ups}"
            )
        shm = report["shm"]
        print(
            f"     shm refresh/append: rebuild"
            f" {shm['rebuild']['refresh_per_append_s'] * 1e3:.1f}ms ->"
            f" shared {shm['shared']['refresh_per_append_s'] * 1e3:.1f}ms"
            f" ({shm['refresh_eliminated'] * 100:.0f}% eliminated)"
        )
        headline = summarise_kernels_report(report)
        print(f"headline: {json.dumps(headline)} ({args.output})")
        return 0

    if args.experiment == "transform":
        report = run_transform_benchmark(
            datasets=tuple(args.datasets),
            scale=args.scale,
            query_count=args.queries,
            reps=args.reps,
        )
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        for config in report["configs"]:
            transforms = config["transforms"]
            print(
                f"{config['dataset']:>8} {config['algorithm']:<9}"
                f" object {transforms['object']['wall_s'] * 1e3:8.1f}ms"
                f" skeleton {transforms['skeleton']['wall_s'] * 1e3:8.1f}ms"
                f" speedup {config['speedup_wall']:.2f}x"
            )
        aggregate = report["aggregate"]
        print(
            f"aggregate (bfq): {aggregate['bfq_object_wall_s'] * 1e3:.0f}ms ->"
            f" {aggregate['bfq_skeleton_wall_s'] * 1e3:.0f}ms"
            f" = {aggregate['speedup']:.2f}x ({args.output})"
        )
        return 0

    report = run_benchmark(
        datasets=tuple(args.datasets),
        scale=args.scale,
        query_count=args.queries,
        reps=args.reps,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    for config in report["configs"]:
        kernels = config["kernels"]
        print(
            f"{config['dataset']:>8} {config['algorithm']:<9}"
            f" object {kernels['object']['maxflow_s'] * 1e3:8.1f}ms"
            f" persistent {kernels['persistent']['maxflow_s'] * 1e3:8.1f}ms"
            f" speedup {config['speedup_maxflow']:.2f}x"
        )
    aggregate = report["aggregate"]
    print(
        f"aggregate: {aggregate['object_maxflow_s'] * 1e3:.0f}ms ->"
        f" {aggregate['persistent_maxflow_s'] * 1e3:.0f}ms"
        f" = {aggregate['speedup']:.2f}x ({args.output})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
