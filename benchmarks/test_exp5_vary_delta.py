"""EXP-5 / Figures 13-16 — runtimes when varying delta (3%, 6%, 9% of |T|).

For each replica dataset, the workload runs at the paper's three delta
settings.  Asserted shapes (Section 6.2, EXP-5 and Appendix C):

* BFQ's aggregate runtime tends to grow with delta (wider minimal windows
  mean larger transformed networks) — asserted loosely: the 9% run is not
  dramatically *cheaper* than the 3% run;
* the incremental solutions are less sensitive to delta than BFQ;
* answers at all deltas obey the density-antitone law
  (larger delta => optimal density can only drop).
"""

import pytest
from _harness import emit, format_table, timed

from repro import find_bursting_flow

ALGORITHMS = ("bfq", "bfq+", "bfq*")
FRACTIONS = (0.03, 0.06, 0.09)


@pytest.mark.parametrize("dataset_name", ("bayc", "prosper", "ctu13", "btc2011"))
def test_exp5_vary_delta(dataset_name, datasets, workloads, benchmark):
    network = datasets[dataset_name]
    workload = workloads[dataset_name]
    pairs = list(workload)[: max(2, len(workload) // 2)]

    def run_all():
        table = {}
        densities = {}
        for fraction in FRACTIONS:
            delta = workload.delta_for(fraction)
            for algorithm in ALGORITHMS:
                total = 0.0
                best = []
                for source, sink in pairs:
                    seconds, result = timed(
                        lambda: find_bursting_flow(
                            network, source=source, sink=sink, delta=delta,
                            algorithm=algorithm,
                        )
                    )
                    total += seconds
                    best.append(result.density)
                table[(fraction, algorithm)] = total
                densities[(fraction, algorithm)] = best
        return table, densities

    table, densities = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for fraction in FRACTIONS:
        delta = workload.delta_for(fraction)
        rows.append(
            (
                f"{int(fraction * 100)}% (delta={delta})",
                *(f"{table[(fraction, a)] * 1000:.1f}ms" for a in ALGORITHMS),
            )
        )
    emit(
        f"EXP-5 Figures 13-16 ({dataset_name}) - runtimes when varying delta",
        format_table(("delta", *ALGORITHMS), rows),
    )

    # Density is antitone in delta, query by query.
    for algorithm in ALGORITHMS:
        for i in range(len(pairs)):
            d3 = densities[(0.03, algorithm)][i]
            d6 = densities[(0.06, algorithm)][i]
            d9 = densities[(0.09, algorithm)][i]
            assert d9 <= d6 + 1e-9 <= d3 + 2e-9

    # Incremental solutions shouldn't blow up faster than BFQ as delta grows.
    growth_bfq = table[(0.09, "bfq")] / max(table[(0.03, "bfq")], 1e-9)
    growth_star = table[(0.09, "bfq*")] / max(table[(0.03, "bfq*")], 1e-9)
    assert growth_star <= growth_bfq * 2.0 + 1.0
