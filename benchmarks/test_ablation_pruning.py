"""Ablation — Observation-2 capacity pruning on/off.

DESIGN.md calls out the pruning rule as one of BFQ+'s two ingredients;
this ablation quantifies it: same answers, fewer Maxflow runs, and (on
the pruning-friendly dense dataset) lower runtime.
"""

import pytest
from _harness import emit, format_table, timed

from repro import find_bursting_flow


@pytest.mark.parametrize("dataset_name", ("prosper", "ctu13"))
def test_ablation_observation2_pruning(dataset_name, datasets, workloads, benchmark):
    network = datasets[dataset_name]
    workload = workloads[dataset_name]
    delta = workload.delta_for(0.03)

    def run_all():
        rows = []
        for index, (source, sink) in enumerate(workload, start=1):
            on_seconds, on = timed(
                lambda: find_bursting_flow(
                    network, source=source, sink=sink, delta=delta,
                    algorithm="bfq+", use_pruning=True,
                )
            )
            off_seconds, off = timed(
                lambda: find_bursting_flow(
                    network, source=source, sink=sink, delta=delta,
                    algorithm="bfq+", use_pruning=False,
                )
            )
            assert on.density == pytest.approx(off.density)
            rows.append(
                (
                    f"Q{index}",
                    on.stats.pruned_intervals,
                    on.stats.maxflow_runs,
                    off.stats.maxflow_runs,
                    f"{on_seconds * 1000:.1f}ms",
                    f"{off_seconds * 1000:.1f}ms",
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        f"Ablation - Observation 2 pruning ({dataset_name})",
        format_table(
            ("query", "pruned", "mf-runs (on)", "mf-runs (off)", "time on", "time off"),
            rows,
        ),
    )
    # Pruning strictly reduces (or keeps) the number of Maxflow runs.
    for row in rows:
        assert row[2] <= row[3]
    if dataset_name == "prosper":
        # The dense dataset is where Observation 2 reliably fires; on the
        # hub-skewed CTU replica the random workload may never hit a
        # prunable extension (reported, not asserted).
        total_pruned = sum(row[1] for row in rows)
        assert total_pruned >= 1, "expected pruning to fire on prosper"
