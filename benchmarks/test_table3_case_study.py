"""Table 3 / Section 6.3 — the anomaly-detection case study.

Reproduces the paper's case study on the planted-ground-truth transaction
network: sweep delta-BFlow queries over the cross product of (suspicious +
random) sources and sinks at delta = 3%/6%/9% of |T|, then verify:

* the suspicious pair surfaces with a density far above the average case
  and a *short* bursting interval (the paper's Q1);
* the benign heavy-but-slow pair has an unremarkable density over a long
  interval at every delta (the paper's Q2);
* a larger delta leads to a smaller best density (Table 3's trend).
"""

from _harness import emit, format_table

from repro.anomaly import BurstDetector, format_case_study_table


def test_table3_case_study(case_study, benchmark):
    dataset = case_study
    network = dataset.network
    horizon = network.num_timestamps
    deltas = [max(1, round(horizon * f)) for f in (0.03, 0.06, 0.09)]

    detector = BurstDetector(network)
    sources = dataset.suspicious_sources + dataset.benign_sources[:3]
    sinks = dataset.suspicious_sinks + dataset.benign_sinks[:3]
    report = benchmark.pedantic(
        lambda: detector.scan(sources, sinks, deltas), rounds=1, iterations=1
    )

    suspect = (dataset.suspicious_sources[0], dataset.suspicious_sinks[0])
    benign = (dataset.benign_sources[0], dataset.benign_sinks[0])
    q1 = [report.finding_for(*suspect, d) for d in deltas]
    q2 = [report.finding_for(*benign, d) for d in deltas]
    emit(
        "Table 3 - case study densities and bursting intervals",
        format_case_study_table(
            [("Q1 (suspects)", q1), ("Q2 (benign)", q2)]
        )
        + f"\n\nflagged outliers: {len(report.flagged)} "
        f"of {len(report.findings)} findings",
    )

    # Q1: flagged, short interval, densities falling with delta.
    assert report.flagged
    top = report.flagged[0]
    assert (top.source, top.sink) == suspect
    q1_densities = [f.density for f in q1]
    assert q1_densities == sorted(q1_densities, reverse=True)
    assert q1[0].interval_length <= horizon * 0.1

    # Q2: long interval, never flagged, density an order of magnitude lower.
    assert all(
        (f.source, f.sink) != benign for f in report.flagged
    )
    assert q2[0].interval_length >= horizon * 0.5
    assert q1[0].density > 5 * q2[0].density

    # Ground truth: the planted burst's window is recovered.
    planted = dataset.planted[0]
    lo, hi = q1[0].interval
    assert lo <= planted.interval[1] and hi >= planted.interval[0]


def test_table3_density_vs_average(case_study, benchmark):
    """The paper's selection criterion: the interesting queries have
    densities 'significantly larger than the average case'."""
    dataset = case_study
    network = dataset.network
    delta = max(1, round(network.num_timestamps * 0.03))
    detector = BurstDetector(network)
    report = benchmark.pedantic(
        lambda: detector.scan(
            dataset.suspicious_sources + dataset.benign_sources[:3],
            dataset.suspicious_sinks + dataset.benign_sinks[:3],
            [delta],
        ),
        rounds=1,
        iterations=1,
    )
    suspect = report.finding_for(
        dataset.suspicious_sources[0], dataset.suspicious_sinks[0], delta
    )
    others = [
        f.density
        for f in report.findings
        if f.density > 0 and (f.source, f.sink) != (suspect.source, suspect.sink)
    ]
    best_other = max(others, default=0.0)
    emit(
        "Table 3 - suspect density vs the rest of the batch",
        format_table(
            ("metric", "density"),
            [
                ("suspect pair", f"{suspect.density:,.1f}"),
                ("best non-suspect", f"{best_other:,.1f}"),
                ("ratio", f"{suspect.density / max(best_other, 0.01):.1f}x"),
            ],
        ),
    )
    # "Significantly larger than the average case": the suspect pair must
    # stand far above every other pair in the batch.
    assert suspect.density > 5 * best_other
