"""EXP-3 / Figure 11 — per-interval Maxflow runtimes vs |V'|.

Runs BFQ, BFQ+ and BFQ* over the workloads and harvests every
per-candidate-interval sample (mode, transformed-network size |V'|,
Maxflow seconds) from the instrumentation.  Samples are bucketed by |V'|
and the mean runtime of ``dinic`` (from scratch), ``maxflow+``
(insertion case) and ``maxflow-`` (deletion case) is reported per bucket —
the Figure-11 series.

Asserted shape: at comparable |V'|, the incremental modes are not slower
than from-scratch Dinic on average (the paper finds MaxFlow- fastest).
"""

from collections import defaultdict

import pytest
from _harness import emit, format_table

from repro import find_bursting_flow

DATASETS = ("btc2011", "ctu13", "prosper")
MODES = ("dinic", "maxflow+", "maxflow-")


def collect_samples(network, workload, delta):
    samples = []
    for source, sink in workload:
        for algorithm in ("bfq", "bfq+", "bfq*"):
            result = find_bursting_flow(
                network, source=source, sink=sink, delta=delta,
                algorithm=algorithm,
            )
            samples.extend(
                s for s in result.stats.samples if s.mode in MODES
            )
    return samples


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_exp3_maxflow_runtime_vs_network_size(
    dataset_name, datasets, workloads, benchmark
):
    network = datasets[dataset_name]
    workload = workloads[dataset_name]
    delta = workload.delta_for(0.03)
    samples = benchmark.pedantic(
        lambda: collect_samples(network, workload, delta), rounds=1, iterations=1
    )
    assert samples, "instrumentation produced no samples"

    # Bucket |V'| into powers of two.
    buckets: dict[tuple[int, str], list[float]] = defaultdict(list)
    for sample in samples:
        bucket = 1
        while bucket * 2 <= max(1, sample.network_size):
            bucket *= 2
        buckets[(bucket, sample.mode)].append(sample.maxflow_seconds)

    sizes = sorted({size for size, _ in buckets})
    rows = []
    for size in sizes:
        row = [f"|V'|~{size}"]
        for mode in MODES:
            values = buckets.get((size, mode), [])
            row.append(f"{1000 * sum(values) / len(values):.2f}ms" if values else "-")
        row.append(str(sum(len(buckets.get((size, m), [])) for m in MODES)))
        rows.append(row)
    emit(
        f"EXP-3 Figure 11 ({dataset_name}) - maxflow runtime vs |V'|",
        format_table(("bucket", *MODES, "#samples"), rows),
    )

    # Shape: on intervals with *real* work (|V'| >= 256 — below that the
    # per-run fixed cost of a single BFS dominates and normalisation is
    # meaningless), the insertion-case runs beat from-scratch Dinic per
    # unit of |V'|.
    def mean_normalised(mode):
        values = [
            s.maxflow_seconds / s.network_size
            for s in samples
            if s.mode == mode and s.network_size >= 256
        ]
        return sum(values) / len(values) if len(values) >= 5 else None

    scratch = mean_normalised("dinic")
    incremental_plus = mean_normalised("maxflow+")
    if scratch and incremental_plus:
        assert incremental_plus <= scratch * 1.5
