"""Bounded recovery benchmark: genesis replay vs snapshot + suffix.

Builds an append-dominated history — ``--records`` log records cycling
over a ``--keyspace`` of distinct edges, so capacity merges keep the
*state* far smaller than the *history* (the regime the paper's temporal
interaction streams live in) — checkpoints everything but the last
``--suffix`` records, and times the two recovery paths against the same
log:

* **full replay**: stream every record from genesis (the only path
  before snapshots existed);
* **bounded**: restore the snapshot, replay only the suffix.

It then compacts the covered prefix away and proves the bounded path
still recovers the identical state from the compacted artifacts, and
that the log file itself shrank.  Exit code 0 means every durability
assertion held; ``--output`` writes the machine-readable report
(committed as ``BENCH_PR6.json`` at full scale).

Usage::

    PYTHONPATH=src python benchmarks/recovery_bench.py \
        [--records 20000] [--suffix 500] [--keyspace 2000] \
        [--repeats 3] [--output BENCH_PR6.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.cluster.replication import (
    append_record,
    bootstrap_network,
    network_edges,
    network_state_record,
)
from repro.store import AppendLog, SnapshotStore
from repro.temporal.network import TemporalFlowNetwork


def edge_for(index: int, keyspace: int):
    """Record *i*'s edge; cycling the keyspace makes capacities merge."""
    slot = index % keyspace
    return (f"u{slot}", f"v{slot}", slot + 1, 1.0)


def build_history(log_path, snap_dir, *, records: int, suffix: int, keyspace: int):
    """Write the log, checkpoint at ``records - suffix``; returns manifest."""
    mirror = TemporalFlowNetwork()
    snapshots = SnapshotStore(snap_dir)
    manifest = None
    with AppendLog(log_path) as log:
        from repro.cluster.replication import apply_record

        for index in range(records):
            record = append_record([edge_for(index, keyspace)])
            log.append(record)
            apply_record(mirror, record)
            if index + 1 == records - suffix:
                manifest = snapshots.save(
                    network_state_record(mirror),
                    log_offset=log.tail_offset(),
                    records=index + 1,
                    epoch=mirror.epoch,
                )
        log.flush()
    assert manifest is not None, "suffix must be smaller than records"
    return mirror, manifest


def timed_bootstrap(log_path, snapshots, repeats: int):
    """Best-of-``repeats`` wall time for one recovery path."""
    best = None
    boot = None
    for _ in range(repeats):
        log = AppendLog(log_path)
        try:
            start = time.perf_counter()
            boot = bootstrap_network(log, snapshots)
            elapsed = time.perf_counter() - start
        finally:
            log.close()
        best = elapsed if best is None else min(best, elapsed)
    return best, boot


def run_bench(*, records: int, suffix: int, keyspace: int, repeats: int) -> dict:
    with tempfile.TemporaryDirectory() as scratch:
        log_path = Path(scratch) / "recovery.log"
        snap_dir = Path(scratch) / "recovery.log.snapshots"
        mirror, manifest = build_history(
            log_path, snap_dir, records=records, suffix=suffix, keyspace=keyspace
        )
        truth = sorted(network_edges(mirror))
        log_bytes_full = log_path.stat().st_size

        full_s, full_boot = timed_bootstrap(log_path, None, repeats)
        bounded_s, bounded_boot = timed_bootstrap(
            log_path, SnapshotStore(snap_dir), repeats
        )

        # The contract under test: bounded recovery replays *only* the
        # post-snapshot suffix, and both paths land on identical state.
        assert full_boot.replayed_records == records
        assert bounded_boot.from_snapshot
        assert bounded_boot.replayed_records == suffix < records
        assert bounded_boot.total_records == records
        assert sorted(network_edges(full_boot.network)) == truth
        assert sorted(network_edges(bounded_boot.network)) == truth
        assert full_boot.network.epoch == bounded_boot.network.epoch == mirror.epoch

        # Compact the covered prefix: recovery still works, file shrank.
        with AppendLog(log_path) as log:
            compacted_records = log.truncate_prefix(manifest.log_offset)
        log_bytes_compacted = log_path.stat().st_size
        compacted_s, compacted_boot = timed_bootstrap(
            log_path, SnapshotStore(snap_dir), repeats
        )
        assert compacted_records == records - suffix
        assert compacted_boot.replayed_records == suffix
        assert sorted(network_edges(compacted_boot.network)) == truth
        assert log_bytes_compacted < log_bytes_full

        return {
            "benchmark": "bounded-recovery",
            "metric": "wall seconds to rebuild the served network: genesis "
            "replay of the whole log vs snapshot restore + suffix replay "
            f"(best of {repeats})",
            "mechanism": "records cycle a small edge keyspace, so capacity "
            "merges keep state O(keyspace) while history is O(records) -- "
            "the snapshot stores merged state once, and recovery replays "
            "only the records behind the last checkpoint; prefix "
            "compaction then drops the covered bytes from the log itself",
            "config": {
                "records": records,
                "suffix": suffix,
                "keyspace": keyspace,
                "repeats": repeats,
            },
            "environment": {
                "python": platform.python_version(),
                "platform": platform.platform(),
                "timestamp_utc": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
            },
            "results": {
                "full_replay": {
                    "wall_s": round(full_s, 6),
                    "replayed_records": full_boot.replayed_records,
                },
                "bounded": {
                    "wall_s": round(bounded_s, 6),
                    "replayed_records": bounded_boot.replayed_records,
                    "from_snapshot": True,
                },
                "bounded_after_compaction": {
                    "wall_s": round(compacted_s, 6),
                    "replayed_records": compacted_boot.replayed_records,
                    "compacted_records": compacted_records,
                },
                "speedup": round(full_s / bounded_s, 2) if bounded_s else None,
                "log_bytes": {
                    "full": log_bytes_full,
                    "compacted": log_bytes_compacted,
                    "shrink_factor": round(
                        log_bytes_full / log_bytes_compacted, 2
                    ),
                },
                "checks": "all recovery assertions held",
            },
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=20000)
    parser.add_argument("--suffix", type=int, default=500)
    parser.add_argument("--keyspace", type=int, default=2000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)
    if not 0 < args.suffix < args.records:
        parser.error("--suffix must be in (0, --records)")

    report = run_bench(
        records=args.records,
        suffix=args.suffix,
        keyspace=args.keyspace,
        repeats=args.repeats,
    )
    text = json.dumps(report, indent=2)
    print(text)
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    results = report["results"]
    print(
        f"full replay {results['full_replay']['wall_s']}s vs bounded "
        f"{results['bounded']['wall_s']}s "
        f"({results['speedup']}x, suffix {args.suffix}/{args.records})",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
