"""Deployment bench — the one-off store export.

The paper reports "The time for data export of our largest used dataset
was 396 seconds" for the Neo4j port.  This bench measures the embedded
store's export throughput at growing sizes and verifies the exported
network answers queries identically to a network built directly.
"""

import random

from _harness import emit, format_table, timed

from repro import find_bursting_flow
from repro.store import GraphStore
from repro.temporal import TemporalFlowNetwork

SIZES = (1_000, 5_000, 20_000)


def populate(store: GraphStore, num_rels: int, seed: int) -> None:
    rng = random.Random(seed)
    accounts = [f"a{i}" for i in range(max(50, num_rels // 40))]
    for _ in range(num_rels):
        u, v = rng.sample(accounts, 2)
        store.add_relationship(
            u, v, tau=rng.randint(1, num_rels // 2), amount=rng.uniform(1, 500)
        )


def test_store_export_throughput(benchmark, tmp_path):
    def run_all():
        rows = []
        for size in SIZES:
            store = GraphStore()
            populate(store, size, seed=size)
            export_seconds, (network, _codec) = timed(store.export_network)
            rows.append(
                (
                    f"{size:,} rels",
                    f"{export_seconds * 1000:.1f}ms",
                    f"{size / max(export_seconds, 1e-9):,.0f} rels/s",
                    network.num_edges,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "Deployment - one-off store export throughput",
        format_table(("store size", "export time", "throughput", "|E_T|"), rows),
    )


def test_store_backed_queries_match_direct(benchmark, tmp_path):
    """Durability round-trip: ingest -> reopen -> export -> query."""
    rng = random.Random(4)
    edges = []
    accounts = [f"a{i}" for i in range(30)]
    for _ in range(600):
        u, v = rng.sample(accounts, 2)
        edges.append((u, v, rng.randint(1, 200), round(rng.uniform(1, 100), 3)))

    path = tmp_path / "bench_store.log"

    def round_trip():
        with GraphStore(path) as store:
            for u, v, tau, amount in edges:
                store.add_relationship(u, v, tau=tau, amount=amount)
        with GraphStore(path) as revived:
            # Timestamps are already dense-ish integers here; skip the
            # compaction so densities stay comparable with the direct build.
            network, _ = revived.export_network(compact_timestamps=False)
        return network

    network = benchmark.pedantic(round_trip, rounds=1, iterations=1)
    direct = TemporalFlowNetwork.from_tuples(edges)
    source, sink = "a0", "a1"
    delta = max(1, round(network.num_timestamps * 0.03))
    stored_answer = find_bursting_flow(
        network, source=source, sink=sink, delta=delta
    )
    direct_answer = find_bursting_flow(
        direct, source=source, sink=sink, delta=delta
    )
    assert abs(stored_answer.density - direct_answer.density) < 1e-9
    emit(
        "Deployment - store-backed vs direct query answers",
        f"identical densities: {stored_answer.density:.4f}",
    )
