"""Mining funnel benchmark: precision/recall on planted-laundering synthetics.

Builds labelled scenarios (:func:`repro.simulation.scenario
.simulate_scenario` — a retail economy with smurfing, layering and, on
odd seeds, round-tripping injected on top), runs one
:class:`repro.mining.MiningPipeline` scan per scenario, and scores the
persisted patterns against the exact ground truth:

* **recall** — fraction of injected fraud (source, sink) pairs whose
  pattern was persisted (floor: 0.9);
* **precision** — fraction of persisted patterns whose endpoints belong
  to an injected fraud's account set (floor: 0.5);
* **amortization** — exhaustive S×T sweep size per δ-BFlow solve the
  funnel actually ran (floor: 5x), with an *equal-recall check*: the
  first scenario is additionally swept exhaustively (every volume-
  bearing pair as an explicit candidate) and must not catch any fraud
  the funnel missed.

Exit code 0 means every floor held; ``--output`` writes the
machine-readable report (committed as ``BENCH_PR8.json`` at full
scale).  ``--scale`` shrinks the economy for CI smoke runs.

Usage::

    PYTHONPATH=src python benchmarks/mining_bench.py \
        [--seeds 3] [--top 16] [--scale 1.0] [--no-exhaustive] \
        [--output BENCH_PR8.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.mining import MiningConfig, MiningPipeline, PatternStore
from repro.simulation.economy import EconomyConfig
from repro.simulation.scenario import simulate_scenario

RECALL_FLOOR = 0.9
PRECISION_FLOOR = 0.5
AMORTIZATION_FLOOR = 5.0


def scaled_config(scale: float) -> EconomyConfig:
    return EconomyConfig(
        num_consumers=max(8, int(60 * scale)),
        num_merchants=max(3, int(12 * scale)),
        num_corporates=max(1, int(3 * scale)),
    )


def exhaustive_pair_list(pipeline: MiningPipeline) -> list[tuple[str, str]]:
    """Every volume-bearing (emitter, collector) pair — the swept baseline."""
    emitters = sorted(pipeline.stats.out_ledgers, key=str)
    collectors = sorted(pipeline.stats.in_ledgers, key=str)
    return [(u, v) for u in emitters for v in collectors if u != v]


def run_scenario(seed: int, *, top: int, scale: float, exhaustive: bool):
    scenario = simulate_scenario(
        config=scaled_config(scale),
        seed=seed,
        with_round_tripping=seed % 2 == 1,
    )
    network = scenario.network
    delta = max(1, (network.t_max - network.t_min) // 50)
    tainted = {
        node
        for fraud in scenario.frauds
        for node in (fraud.source, fraud.sink, *fraud.accomplices)
    }
    config = MiningConfig(top_sources=top, top_sinks=top)
    with tempfile.TemporaryDirectory(prefix="repro-mining-bench-") as tmp:
        store = PatternStore(tmp, fsync=False)
        try:
            pipeline = MiningPipeline(network, store, config=config)
            started = time.perf_counter()
            outcome = pipeline.scan(delta)
            wall = time.perf_counter() - started
            rescan = pipeline.scan(delta)  # dedupe proof rides along
            persisted = [(r.source, r.sink) for r in outcome.records]

            sweep = None
            if exhaustive:
                sweep_started = time.perf_counter()
                sweep_outcome = pipeline.scan(
                    delta, pairs=exhaustive_pair_list(pipeline)
                )
                sweep = {
                    "solves": sweep_outcome.funnel.solves,
                    "wall_s": round(
                        time.perf_counter() - sweep_started, 6
                    ),
                    "fraud_pairs_found": [
                        list(pair)
                        for pair in scenario.fraud_pairs
                        if pair
                        in {
                            (r.source, r.sink)
                            for r in sweep_outcome.records
                        }
                    ],
                }
        finally:
            store.close()

    hits = [pair for pair in scenario.fraud_pairs if pair in persisted]
    fraud_involved = [
        pair
        for pair in persisted
        if pair[0] in tainted and pair[1] in tainted
    ]
    return {
        "seed": seed,
        "round_tripping": seed % 2 == 1,
        "network": {
            "nodes": network.num_nodes,
            "edges": network.num_edges,
            "timestamps": network.num_timestamps,
        },
        "delta": delta,
        "frauds": len(scenario.fraud_pairs),
        "fraud_pairs": [list(pair) for pair in scenario.fraud_pairs],
        "persisted": [list(pair) for pair in persisted],
        "hits": len(hits),
        "fraud_involved": len(fraud_involved),
        "recall": len(hits) / len(scenario.fraud_pairs),
        "precision": (
            len(fraud_involved) / len(persisted) if persisted else 0.0
        ),
        "funnel": outcome.funnel.as_dict(),
        "rescan": {"new": len(rescan.new_ids), "deduped": rescan.deduped},
        "wall_s": round(wall, 6),
        "exhaustive_sweep": sweep,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--top", type=int, default=16)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--no-exhaustive",
        action="store_true",
        help="skip the equal-recall exhaustive arm (CI smoke)",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    scenarios = []
    for seed in range(args.seeds):
        # The exhaustive arm is O(|S|x|T|) solves; one scenario proves
        # the equal-recall claim without tripling the wall time.
        exhaustive = not args.no_exhaustive and seed == 0
        result = run_scenario(
            seed, top=args.top, scale=args.scale, exhaustive=exhaustive
        )
        scenarios.append(result)
        print(
            f"seed {seed}: recall {result['hits']}/{result['frauds']}, "
            f"precision {result['fraud_involved']}/"
            f"{len(result['persisted'])}, "
            f"amortization {result['funnel']['amortization']:.1f}x, "
            f"{result['wall_s']:.2f}s"
        )

    total_frauds = sum(s["frauds"] for s in scenarios)
    total_hits = sum(s["hits"] for s in scenarios)
    total_persisted = sum(len(s["persisted"]) for s in scenarios)
    total_involved = sum(s["fraud_involved"] for s in scenarios)
    recall = total_hits / total_frauds
    precision = total_involved / total_persisted if total_persisted else 0.0
    amortization = min(s["funnel"]["amortization"] for s in scenarios)
    rescans_clean = all(
        s["rescan"]["new"] == 0
        and s["rescan"]["deduped"] == len(s["persisted"])
        for s in scenarios
    )
    equal_recall = all(
        s["exhaustive_sweep"] is None
        or set(map(tuple, s["exhaustive_sweep"]["fraud_pairs_found"]))
        <= {
            tuple(pair)
            for pair in s["persisted"]
        }
        for s in scenarios
    )

    checks = {
        "recall_cleared": recall >= RECALL_FLOOR,
        "precision_cleared": precision >= PRECISION_FLOOR,
        "amortization_cleared": amortization >= AMORTIZATION_FLOOR,
        "rescans_deduped": rescans_clean,
        "exhaustive_equal_recall": equal_recall,
    }

    report = {
        "benchmark": "mining-funnel",
        "metric": (
            "precision/recall of persisted patterns vs injected-fraud "
            "ground truth, and delta-BFlow solves saved vs the "
            "exhaustive S×T sweep at equal recall"
        ),
        "mechanism": (
            "StreamStats ledgers -> concentration/z/Kleinberg pre-filter "
            "-> top_k_bursts confirmation -> robust-z flagging -> "
            "content-addressed persistence (re-scans dedupe)"
        ),
        "config": {
            "seeds": args.seeds,
            "top": args.top,
            "scale": args.scale,
            "recall_floor": RECALL_FLOOR,
            "precision_floor": PRECISION_FLOOR,
            "amortization_floor": AMORTIZATION_FLOOR,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "timestamp_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
        },
        "results": {
            "recall": round(recall, 4),
            "precision": round(precision, 4),
            "min_amortization": round(amortization, 2),
            "scenarios": scenarios,
        },
        "checks": checks,
    }

    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=1) + "\n")
        print(f"wrote {args.output}")

    print(
        f"recall {recall:.3f} (floor {RECALL_FLOOR}), "
        f"precision {precision:.3f} (floor {PRECISION_FLOOR}), "
        f"min amortization {amortization:.1f}x "
        f"(floor {AMORTIZATION_FLOOR}x)"
    )
    if not all(checks.values()):
        failed = [name for name, ok in checks.items() if not ok]
        print(f"FAILED checks: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("all checks cleared")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
