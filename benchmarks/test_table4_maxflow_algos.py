"""Table 4 / Appendix A — classical Maxflow solver comparison.

The paper summarises solver complexities in Table 4; this bench provides
the empirical counterpart on growing random flow networks, plus the
LP-scaling observation from the related work ([27]: "LP cannot handle
temporal networks with more than 10K edges ... efficiently"): the LP
solver's runtime grows much faster than Dinic's with network size.
"""

import random

import pytest
from _harness import emit, format_table, timed

from repro.flownet import FlowNetwork, SOLVERS

SIZES = (100, 400, 1600, 3200)
EDGE_FACTOR = 4


def random_network(num_nodes: int, seed: int) -> FlowNetwork:
    rng = random.Random(seed)
    net = FlowNetwork()
    for i in range(num_nodes):
        net.add_node(i)
    for _ in range(num_nodes * EDGE_FACTOR):
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u != v:
            net.add_edge(u, v, float(rng.randint(1, 50)))
    return net


def test_table4_solver_comparison(benchmark):
    def run_all():
        grid = {}
        values = {}
        for size in SIZES:
            net = random_network(size, seed=size)
            for name, solver in SOLVERS.items():
                seconds, run = timed(lambda s=solver: s(net.clone(), 0, 1))
                grid[(size, name)] = seconds
                values.setdefault(size, set()).add(round(run.value, 6))
        return grid, values

    grid, values = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # All solvers agree on every size.
    for size, answer_set in values.items():
        assert len(answer_set) == 1, f"solvers disagree at |V|={size}"

    rows = [
        (
            f"|V|={size}, |E|~{size * EDGE_FACTOR}",
            *(f"{grid[(size, name)] * 1000:.1f}ms" for name in SOLVERS),
        )
        for size in SIZES
    ]
    emit(
        "Table 4 - maxflow solver comparison",
        format_table(("network", *SOLVERS), rows),
    )

    # The LP baseline scales far worse than Dinic (the [27] observation).
    lp_growth = grid[(SIZES[-1], "lp")] / max(grid[(SIZES[0], "lp")], 1e-9)
    dinic_growth = grid[(SIZES[-1], "dinic")] / max(grid[(SIZES[0], "dinic")], 1e-9)
    emit(
        "Table 4 - LP vs Dinic scaling",
        f"runtime growth {SIZES[0]} -> {SIZES[-1]} nodes: "
        f"LP {lp_growth:.1f}x vs Dinic {dinic_growth:.1f}x",
    )
    assert grid[(SIZES[-1], "lp")] > grid[(SIZES[-1], "dinic")]


@pytest.mark.parametrize("name", list(SOLVERS))
def test_table4_individual_solver_benchmarks(name, benchmark):
    """Per-solver pytest-benchmark entries (the comparison table rows)."""
    net = random_network(400, seed=400)
    solver = SOLVERS[name]
    value = benchmark.pedantic(
        lambda: solver(net.clone(), 0, 1).value, rounds=3, iterations=1
    )
    assert value >= 0
