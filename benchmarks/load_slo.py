"""The open-loop SLO gate: run the scenario matrix, assert the bounds.

Produces ``BENCH_PR10.json`` — the first *open-loop* BENCH file: every
scenario reports offered vs achieved rate, per-op latency from the
scheduled time (coordinated omission measured, not hidden), the
scheduled-vs-sent lag distribution, and — for the chaos scenario — the
zero-lost-acked-appends proof with measured recovery time.

    PYTHONPATH=src python benchmarks/load_slo.py                  # full scale
    PYTHONPATH=src python benchmarks/load_slo.py --smoke          # CI scale
    PYTHONPATH=src python benchmarks/load_slo.py --check BENCH_PR10.json

``--check`` re-gates a committed report offline (no load is run): the
SLO bounds read only fields the report already carries.  Exit status is
0 only when every scenario passes its gate.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.loadgen import (  # noqa: E402
    FULL_SCALE,
    FULL_SLOS,
    SCENARIOS,
    SMOKE_SCALE,
    SMOKE_SLOS,
    ScenarioReport,
    Slo,
    evaluate_matrix,
    run_scenario,
)


def _print_result(name: str, result) -> None:
    marker = "PASS" if result.passed else "FAIL"
    print(f"  [{marker}] {name}")
    for check in result.checks:
        status = "ok" if check.passed else "VIOLATED"
        print(
            f"      {check.name}: {check.observed!r} "
            f"(bound {check.bound!r}) {status}"
        )


def _gate(reports, slos):
    results = evaluate_matrix(reports, slos)
    print("SLO gate:")
    for name, result in results.items():
        _print_result(name, result)
    return all(result.passed for result in results.values()), results


def check_existing(path: Path) -> int:
    payload = json.loads(path.read_text())
    slos = {
        name: Slo.from_dict(entry) for name, entry in payload["slos"].items()
    }
    reports = {
        name: ScenarioReport.from_dict(entry)
        for name, entry in payload["scenarios"].items()
    }
    passed, _ = _gate(reports, slos)
    print(f"re-gated {path}: {'PASS' if passed else 'FAIL'}")
    return 0 if passed else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_PR10.json"),
        help="where to write the JSON report (default: ./BENCH_PR10.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced scale with relaxed-but-asserted bounds (CI)",
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        help=f"comma-separated subset of: {', '.join(SCENARIOS)}",
    )
    parser.add_argument(
        "--report-dir",
        type=Path,
        default=None,
        help="also write one <scenario>.json per report (CI artifacts)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="re-gate an existing report file; no load is run",
    )
    args = parser.parse_args(argv)

    if args.check is not None:
        return check_existing(args.check)

    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    slos = SMOKE_SLOS if args.smoke else FULL_SLOS
    names = (
        [name.strip() for name in args.scenarios.split(",") if name.strip()]
        if args.scenarios
        else list(SCENARIOS)
    )
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        parser.error(f"unknown scenario(s): {', '.join(unknown)}")

    reports: dict[str, ScenarioReport] = {}
    for name in names:
        print(f"scenario {name} ({'smoke' if args.smoke else 'full'} scale)…")
        report = run_scenario(name, scale=scale)
        reports[name] = report
        rate = report.achieved_rate
        print(
            f"  offered {report.offered_rate:.1f}/s, achieved "
            f"{0.0 if rate is None else rate:.1f}/s, "
            f"errors {report.error_rate:.3%}, "
            f"lag p99 {report.lag_ms.get('p99_ms')}ms"
        )

    passed, results = _gate(reports, {name: slos[name] for name in names})

    payload = {
        "benchmark": "open-loop-load-slo-matrix",
        "loop": "open",
        "metric": (
            "open-loop scenario matrix driven by deterministic bursty "
            "traces; latency measured from the scheduled arrival time "
            "(coordinated omission measured via scheduled-vs-sent lag, "
            "never hidden)"
        ),
        "passed": passed,
        "scale": {"profile": "smoke" if args.smoke else "full", **scale.as_dict()},
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "timestamp_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
        },
        "scenarios": {name: reports[name].as_dict() for name in names},
        "slos": {name: slos[name].as_dict() for name in names},
        "gate": {name: results[name].as_dict() for name in names},
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.report_dir is not None:
        args.report_dir.mkdir(parents=True, exist_ok=True)
        for name in names:
            out = args.report_dir / f"{name}.json"
            out.write_text(
                json.dumps(
                    {
                        "report": reports[name].as_dict(),
                        "slo": slos[name].as_dict(),
                        "gate": results[name].as_dict(),
                    },
                    indent=2,
                )
                + "\n"
            )
        print(f"wrote per-scenario reports to {args.report_dir}/")

    return 0 if passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
