"""Throughput/latency harness for the delta-BFlow query service.

Boots a :class:`repro.service.BurstingFlowService`, fires an EXP-1-style
workload (Table-2 replica dataset + ``generate_queries``, delta = 3 % of
the horizon) from closed-loop TCP clients, and writes ``BENCH_PR3.json``
(see docs/benchmarks.md for the schema).  Two phases over the identical
query list:

* **cold** — the cache is empty; every query is a full engine solve;
* **warm** — the same workload again; every query is a cache hit.

The harness asserts the PR's acceptance bar itself: the warm phase must
be at least 10x faster than cold on median latency, and every served
answer must be exactly equal (density, interval, flow value) to a
sequential :func:`repro.core.engine.find_bursting_flow`.

Usage::

    PYTHONPATH=src python benchmarks/service_throughput.py \
        --output BENCH_PR3.json [--dataset prosper] [--scale 1.0] \
        [--queries 12] [--clients 4] [--warm-passes 3]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core.engine import find_bursting_flow
from repro.core.query import BurstingFlowQuery
from repro.datasets.queries import generate_queries
from repro.datasets.registry import make_dataset
from repro.service import BurstingFlowService, ServiceClient
from repro.service.metrics import LatencyHistogram

#: Same workload seed and delta fraction as the EXP benchmarks.
QUERY_SEED = 648
DELTA_FRACTION = 0.03
#: The acceptance bar: warm-cache median latency vs cold.
REQUIRED_WARM_SPEEDUP = 10.0


def _run_clients(host, port, specs, clients):
    """Closed-loop client threads; returns (replies, histogram, wall_s)."""
    import threading

    histogram = LatencyHistogram()
    histogram_lock = threading.Lock()
    replies: dict[int, tuple] = {}
    shards = [specs[i::clients] for i in range(clients)]

    def one_client(shard):
        with ServiceClient(host, port, timeout=600.0) as client:
            for index, (source, sink, delta) in shard:
                started = time.perf_counter()
                reply = client.query(source, sink, delta)
                elapsed = time.perf_counter() - started
                with histogram_lock:
                    histogram.observe(elapsed)
                    replies[index] = (
                        reply.density, reply.interval, reply.flow_value,
                        reply.cached,
                    )

    threads = [
        threading.Thread(target=one_client, args=(shard,))
        for shard in shards if shard
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    return replies, histogram, wall


def _phase_report(specs, histogram, wall_s):
    snapshot = histogram.snapshot()
    return {
        "requests": len(specs),
        "errors": 0,
        "wall_s": round(wall_s, 6),
        "qps": round(len(specs) / wall_s, 3) if wall_s else None,
        "latency_ms": {
            "p50": snapshot["p50_ms"],
            "p95": snapshot["p95_ms"],
            "p99": snapshot["p99_ms"],
            "mean": snapshot["mean_ms"],
        },
    }


def run_benchmark(
    *,
    dataset: str = "prosper",
    scale: float = 1.0,
    query_count: int = 12,
    clients: int = 4,
    warm_passes: int = 3,
    processes: int | None = None,
) -> dict:
    """Run both phases against a live service; returns the report."""
    network = make_dataset(dataset, scale=scale)
    workload = generate_queries(network, count=query_count, seed=QUERY_SEED)
    delta = workload.delta_for(DELTA_FRACTION)
    unique_specs = list(
        enumerate((s, t, delta) for s, t in workload.pairs)
    )
    warm_specs = [
        (pass_index * len(unique_specs) + index, spec)
        for pass_index in range(warm_passes)
        for index, spec in unique_specs
    ]

    async def serve_and_measure():
        service = BurstingFlowService(
            network,
            processes=processes,
            max_pending=max(64, clients * 4),
            default_timeout=600.0,
            max_timeout=600.0,
        )
        host, port = await service.start("127.0.0.1", 0)
        loop = asyncio.get_running_loop()
        try:
            cold = await loop.run_in_executor(
                None, _run_clients, host, port, unique_specs, clients
            )
            warm = await loop.run_in_executor(
                None, _run_clients, host, port, warm_specs, clients
            )
            return cold, warm, service.snapshot()
        finally:
            await service.stop()

    (cold_replies, cold_hist, cold_wall), (
        warm_replies, warm_hist, warm_wall
    ), snapshot = asyncio.run(serve_and_measure())

    # Every served answer must equal a fresh sequential solve exactly.
    mismatches = []
    for index, (source, sink, query_delta) in unique_specs:
        fresh = find_bursting_flow(
            network, BurstingFlowQuery(source, sink, query_delta)
        )
        expected = (fresh.density, fresh.interval, fresh.flow_value)
        for phase, replies in (("cold", cold_replies), ("warm", warm_replies)):
            served = replies[index][:3]
            if served != expected:
                mismatches.append(
                    {"phase": phase, "query": [source, sink, query_delta],
                     "served": list(served), "expected": list(expected)}
                )
    if mismatches:
        raise AssertionError(
            f"service diverged from the sequential engine: {mismatches[:3]}"
        )
    if any(cached for *_, cached in cold_replies.values()):
        raise AssertionError("cold phase unexpectedly hit the cache")
    if not all(cached for *_, cached in warm_replies.values()):
        raise AssertionError("warm phase unexpectedly missed the cache")

    cold_p50 = cold_hist.quantile(0.5)
    warm_p50 = warm_hist.quantile(0.5)
    p50_ratio = cold_p50 / max(warm_p50, 1e-9)
    qps_ratio = (
        (len(warm_specs) / warm_wall) / max(len(unique_specs) / cold_wall, 1e-9)
    )
    if p50_ratio < REQUIRED_WARM_SPEEDUP:
        raise AssertionError(
            f"warm cache p50 speedup {p50_ratio:.1f}x is below the "
            f"required {REQUIRED_WARM_SPEEDUP:.0f}x"
        )

    return {
        "benchmark": "service-throughput-cold-vs-warm",
        # Closed loop: clients wait for each reply before sending the
        # next request, so these numbers coordinate-omit queueing under
        # saturation.  Open-loop numbers live in BENCH_PR10.json.
        "loop": "closed",
        "metric": (
            "closed-loop client latency and QPS against a live "
            "BurstingFlowService; cold = empty cache, warm = identical "
            "workload repeated (cache hits)"
        ),
        "config": {
            "dataset": dataset,
            "scale": scale,
            "queries": len(unique_specs),
            "query_seed": QUERY_SEED,
            "delta_fraction": DELTA_FRACTION,
            "delta": delta,
            "clients": clients,
            "warm_passes": warm_passes,
            "engine": "inline-threads" if processes in (None, 1)
            else f"process-pool:{processes}",
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "timestamp_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
        },
        "phases": {
            "cold": _phase_report(unique_specs, cold_hist, cold_wall),
            "warm": _phase_report(warm_specs, warm_hist, warm_wall),
        },
        "cache": snapshot["cache"],
        "speedup": {
            "p50_ratio": round(p50_ratio, 3),
            "qps_ratio": round(qps_ratio, 3),
            "required_p50_ratio": REQUIRED_WARM_SPEEDUP,
        },
        "equivalence": {
            "checked": 2 * len(unique_specs),
            "identical": True,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_PR3.json"),
        help="where to write the JSON report (default: ./BENCH_PR3.json)",
    )
    parser.add_argument("--dataset", default="prosper")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--queries", type=int, default=12)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--warm-passes", type=int, default=3)
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="engine worker processes (default: inline threads)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(
        dataset=args.dataset,
        scale=args.scale,
        query_count=args.queries,
        clients=args.clients,
        warm_passes=args.warm_passes,
        processes=args.processes,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    for phase in ("cold", "warm"):
        numbers = report["phases"][phase]
        latency = numbers["latency_ms"]
        print(
            f"{phase:>5}: {numbers['requests']:4d} requests"
            f"  qps {numbers['qps']:10.1f}"
            f"  p50 {latency['p50']:9.3f}ms"
            f"  p95 {latency['p95']:9.3f}ms"
            f"  p99 {latency['p99']:9.3f}ms"
        )
    speedup = report["speedup"]
    print(
        f"warm vs cold: p50 {speedup['p50_ratio']:.1f}x"
        f"  qps {speedup['qps_ratio']:.1f}x"
        f"  (required {speedup['required_p50_ratio']:.0f}x)"
        f"  -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
