"""Multi-query planner benchmark: shared skeletons vs independent solves.

The planner's bet: real batch workloads are *few pairs, many deltas* —
a delta sweep per suspicious (source, sink) pair, with duplicates from
retries and dashboards.  Grouping by pair amortises the Lemma-2 skeleton
compile, and the per-epoch window memo collapses every candidate window
shared by overlapping deltas into one Maxflow.

This benchmark builds exactly that workload — ``--queries`` queries over
at most ``--pairs`` (source, sink) pairs, each pair swept across
overlapping deltas with repeats — then times:

* **independent**: ``answer_many(plan="independent")`` (one full solve
  per query, the only path before the planner);
* **shared**: ``answer_many(plan="shared")`` (the planner).

Answers must be byte-identical; the speedup must clear ``--min-speedup``
(default 1.5x) or the run exits non-zero.  ``--output`` writes the
machine-readable report (committed as ``BENCH_PR7.json`` at full scale).

Usage::

    PYTHONPATH=src python benchmarks/planner_bench.py \
        [--dataset ctu13] [--scale 1.0] [--pairs 8] [--queries 64] \
        [--repeats 3] [--min-speedup 1.5] [--output BENCH_PR7.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core import BurstingFlowQuery, answer_many, answer_planned
from repro.datasets.queries import generate_queries
from repro.datasets.registry import make_dataset

QUERY_SEED = 711
DELTA_FRACTION = 0.03


def build_workload(network, *, pairs: int, queries: int):
    """``queries`` queries over ``pairs`` pairs, overlapping delta sweep.

    Pair *p*'s sweep starts at ``delta + p`` and steps through
    ``delta + p + (i % 4)`` — neighbouring deltas share most of their
    candidate windows, and every fourth query repeats a delta exactly,
    so both amortisation paths (memo hit within a sweep, whole-query
    duplicate) occur at workload frequencies.
    """
    workload = generate_queries(network, count=pairs, seed=QUERY_SEED)
    delta = workload.delta_for(DELTA_FRACTION)
    batch = []
    position = 0
    while len(batch) < queries:
        pair = workload.pairs[position % len(workload.pairs)]
        offset = (position % len(workload.pairs)) + (position // len(workload.pairs)) % 4
        batch.append(BurstingFlowQuery(pair[0], pair[1], delta + offset))
        position += 1
    return batch


def best_of(repeats: int, runner):
    """Best wall time of ``repeats`` runs; returns (seconds, last result)."""
    best = None
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = runner()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, value


def run_bench(
    *,
    dataset: str,
    scale: float,
    pairs: int,
    queries: int,
    repeats: int,
    min_speedup: float,
) -> dict:
    network = make_dataset(dataset, scale=scale)
    batch = build_workload(network, pairs=pairs, queries=queries)
    distinct_pairs = len({(q.source, q.sink) for q in batch})
    assert len(batch) >= queries
    assert distinct_pairs <= pairs

    independent_s, independent = best_of(
        repeats, lambda: answer_many(network, batch, plan="independent")
    )
    shared_s, (planned, report) = best_of(
        repeats, lambda: answer_planned(network, batch)
    )

    mismatches = sum(
        1
        for ours, theirs in zip(planned, independent)
        if (ours.density, ours.interval, ours.flow_value)
        != (theirs.density, theirs.interval, theirs.flow_value)
    )
    speedup = independent_s / shared_s if shared_s else float("inf")

    return {
        "benchmark": "multi-query-planner",
        "metric": (
            "wall seconds to answer one batch: independent per-query solves "
            "vs the planner's shared skeletons + window memo (best of "
            f"{repeats})"
        ),
        "mechanism": (
            "queries grouped by (source, sink) share one Lemma-2 skeleton "
            "compile, and a per-epoch memo keyed on (tau_s, tau_e) solves "
            "each candidate window's Maxflow once per group, however many "
            "overlapping deltas and duplicates fold it into their answers"
        ),
        "config": {
            "dataset": dataset,
            "scale": scale,
            "pairs": distinct_pairs,
            "queries": len(batch),
            "repeats": repeats,
            "min_speedup": min_speedup,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "timestamp_utc": datetime.now(timezone.utc)
            .replace(microsecond=0)
            .isoformat(),
        },
        "results": {
            "independent": {"wall_s": round(independent_s, 6)},
            "shared": {
                "wall_s": round(shared_s, 6),
                "planner": report.as_dict(),
            },
            "speedup": round(speedup, 3),
            "answer_mismatches": mismatches,
        },
        "checks": {
            "answers_identical": mismatches == 0,
            "speedup_cleared": speedup >= min_speedup,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="ctu13")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--pairs", type=int, default=8)
    parser.add_argument("--queries", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    report = run_bench(
        dataset=args.dataset,
        scale=args.scale,
        pairs=args.pairs,
        queries=args.queries,
        repeats=args.repeats,
        min_speedup=args.min_speedup,
    )
    payload = json.dumps(report, indent=2)
    if args.output is not None:
        args.output.write_text(payload + "\n")
    print(payload)

    results = report["results"]
    print(
        f"\nindependent {results['independent']['wall_s']:.3f}s -> shared "
        f"{results['shared']['wall_s']:.3f}s ({results['speedup']:.2f}x, "
        f"amortization {results['shared']['planner']['amortization']:.2f} "
        f"windows/Maxflow)",
        file=sys.stderr,
    )
    if not report["checks"]["answers_identical"]:
        print("FAIL: planner answers diverged from independent solves",
              file=sys.stderr)
        return 1
    if not report["checks"]["speedup_cleared"]:
        print(
            f"FAIL: speedup {results['speedup']:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
