"""CI smoke test for the replicated delta-BFlow cluster.

Boots a 2-replica :class:`repro.cluster.ClusterCoordinator` (process
replicas — the real deployment shape) on a small Table-2 replica, fires
a concurrent burst of TCP clients at the coordinator with a streaming
append in the middle, diffs every served answer against the sequential
engine, and writes the cluster-wide metrics snapshot for upload as a
build artifact.  Exit code 0 means every check held.

Usage::

    PYTHONPATH=src python benchmarks/cluster_smoke.py \
        [--snapshot cluster_metrics.json] [--scale 0.25] [--queries 6] \
        [--replicas 2] [--replica-mode process|inline]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import threading
from pathlib import Path

from repro.cluster import (
    ClusterCoordinator,
    InlineReplica,
    ProcessReplica,
    seed_log,
)
from repro.cluster.replication import network_edges
from repro.core.engine import find_bursting_flow
from repro.core.query import BurstingFlowQuery
from repro.datasets.queries import generate_queries
from repro.datasets.registry import make_dataset
from repro.service import ServiceClient
from repro.store.log import AppendLog

QUERY_SEED = 648
DELTA_FRACTION = 0.03


def run_smoke(
    *,
    dataset: str = "ctu13",
    scale: float = 0.25,
    query_count: int = 6,
    replicas: int = 2,
    replica_mode: str = "process",
) -> dict:
    """One full smoke pass; returns the cluster-wide metrics snapshot."""
    network = make_dataset(dataset, scale=scale)
    workload = generate_queries(network, count=query_count, seed=QUERY_SEED)
    delta = workload.delta_for(DELTA_FRACTION)
    specs = [(s, t, delta) for s, t in workload.pairs]

    async def scenario(log_path):
        replica_cls = (
            ProcessReplica if replica_mode == "process" else InlineReplica
        )
        handles = [
            replica_cls(f"r{i}", log_path) for i in range(replicas)
        ]
        coordinator = ClusterCoordinator(log_path, handles)
        host, port = await coordinator.start("127.0.0.1", 0)
        loop = asyncio.get_running_loop()
        served: dict[int, tuple] = {}
        served_lock = threading.Lock()

        def one_client(index, spec):
            source, sink, query_delta = spec
            with ServiceClient(host, port, timeout=600.0) as client:
                reply = client.query(source, sink, query_delta)
                with served_lock:
                    served[index] = (
                        reply.density, reply.interval, reply.flow_value
                    )

        try:
            # Concurrent burst: every query in flight at once.
            await asyncio.gather(
                *(
                    loop.run_in_executor(None, one_client, index, spec)
                    for index, spec in enumerate(specs)
                )
            )
            # A streaming append must commit cluster-wide and give
            # read-your-writes through the min_epoch fence.
            epoch_before = coordinator.committed_epoch
            nodes = list(network.nodes)[:2]
            tau = network.t_max

            def do_append():
                with ServiceClient(host, port, timeout=600.0) as client:
                    return client.append([(nodes[0], nodes[1], tau, 1.0)])

            ack = await loop.run_in_executor(None, do_append)
            assert ack.epoch > epoch_before, "append did not bump the epoch"
            assert ack.epoch == coordinator.committed_epoch

            def fenced_query():
                source, sink, query_delta = specs[0]
                with ServiceClient(host, port, timeout=600.0) as client:
                    return client.query(
                        source, sink, query_delta, min_epoch=ack.epoch
                    )

            fenced = await loop.run_in_executor(None, fenced_query)
            assert fenced.epoch >= ack.epoch, "fenced query served stale"
            return served, await coordinator.snapshot()
        finally:
            await coordinator.stop()

    with tempfile.TemporaryDirectory() as scratch:
        log_path = Path(scratch) / "cluster.log"
        log = AppendLog(log_path)
        try:
            seed_log(log, network_edges(network))
        finally:
            log.close()
        served, snapshot = asyncio.run(scenario(log_path))

    failures = []
    for index, (source, sink, query_delta) in enumerate(specs):
        fresh = find_bursting_flow(
            network, BurstingFlowQuery(source, sink, query_delta)
        )
        expected = (fresh.density, fresh.interval, fresh.flow_value)
        if served[index] != expected:
            failures.append(
                {"query": [source, sink, query_delta],
                 "served": list(served[index]), "expected": list(expected)}
            )
    if failures:
        raise AssertionError(
            f"cluster diverged from sequential: {failures[:3]}"
        )
    coordinator_view = snapshot["coordinator"]
    assert coordinator_view["counters"]["queries"] >= len(specs)
    assert coordinator_view["counters"]["appends"] == 1
    assert all(
        replica["live"]
        for replica in coordinator_view["replicas"].values()
    )
    assert snapshot["aggregate"]["requests"]["query"] >= len(specs)
    return snapshot


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--snapshot",
        type=Path,
        default=Path("cluster_metrics.json"),
        help="where to write the metrics snapshot artifact",
    )
    parser.add_argument("--dataset", default="ctu13")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--queries", type=int, default=6)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument(
        "--replica-mode", default="process", choices=["process", "inline"]
    )
    args = parser.parse_args(argv)

    snapshot = run_smoke(
        dataset=args.dataset,
        scale=args.scale,
        query_count=args.queries,
        replicas=args.replicas,
        replica_mode=args.replica_mode,
    )
    args.snapshot.write_text(json.dumps(snapshot, indent=2) + "\n")
    coordinator_view = snapshot["coordinator"]
    print(
        f"cluster smoke OK: {coordinator_view['counters']['queries']} "
        f"concurrent queries == sequential across "
        f"{len(coordinator_view['replicas'])} replicas; committed epoch "
        f"{coordinator_view['committed_epoch']}, snapshot -> {args.snapshot}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
