"""Baseline — single-edge dynamic Maxflow ([18]/[28]) vs window-level
incrementality (Lemma 3).

The paper argues the dynamic-network incremental Maxflow algorithms
"cannot be adopted directly" to temporal windows: moving a window boundary
inserts a whole *batch* of edges, and per-edge maintenance pays one
augmentation pass per inserted edge, where Lemma 3 pays one per window.
This bench quantifies the gap on real window extensions: both strategies
reach the same Maxflow, but the per-edge adaptation runs one (mostly
fruitless) Dinic pass per inserted capacity edge — each at least a BFS
over the network — versus a single resumed pass for the batch.
"""

from _harness import emit, format_table, timed

from repro.core.incremental import IncrementalTransformedNetwork
from repro.datasets import generate_queries, make_dataset
from repro.flownet.algorithms.dinic import dinic


def test_dynamic_per_edge_vs_batch_window_extension(benchmark):
    network = make_dataset("prosper", scale=0.5)
    workload = generate_queries(network, count=3, seed=21)
    delta = workload.delta_for(0.06)

    def extension_plan(source, sink):
        starts = network.ti(source, source, sink)
        if not starts:
            return None
        start = starts[0]
        endings = [
            tau for tau in network.ti(sink, source, sink) if tau > start + delta
        ][:6]
        return (start, endings) if endings else None

    def run_all():
        rows = []
        for index, (source, sink) in enumerate(workload, start=1):
            plan = extension_plan(source, sink)
            if plan is None:
                continue
            start, endings = plan

            def batch():
                state = IncrementalTransformedNetwork(
                    network, source, sink, start, start + delta
                )
                state.run_maxflow()
                runs = 1
                for tau in endings:
                    state.extend_end(tau)
                    state.run_maxflow()
                    runs += 1
                return state.flow_value(), runs

            def per_edge():
                state = IncrementalTransformedNetwork(
                    network, source, sink, start, start + delta
                )
                state.run_maxflow()
                runs = 1
                for tau in endings:
                    before = state.network.num_edges
                    state.extend_end(tau)
                    inserted = state.network.num_edges - before
                    # Per-edge maintenance: one augmentation pass per
                    # inserted edge (all but the last find nothing; each
                    # still costs a BFS over the residual network).
                    for _ in range(max(1, inserted)):
                        dinic(
                            state.network,
                            state.source_index,
                            state.sink_index,
                        )
                        runs += 1
                return state.flow_value(), runs

            batch_seconds, (batch_value, batch_runs) = timed(batch)
            edge_seconds, (edge_value, edge_runs) = timed(per_edge)
            assert abs(batch_value - edge_value) < 1e-6
            rows.append(
                (
                    f"Q{index}",
                    len(endings),
                    batch_runs,
                    edge_runs,
                    f"{batch_seconds * 1000:.1f}ms",
                    f"{edge_seconds * 1000:.1f}ms",
                    f"{edge_seconds / max(batch_seconds, 1e-9):.1f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "Baseline - per-edge dynamic maxflow vs Lemma-3 batch insertion",
        format_table(
            (
                "query", "extensions", "batch runs", "per-edge runs",
                "batch", "per-edge", "slowdown",
            ),
            rows,
        ),
    )
    assert rows, "expected at least one query with window extensions"
    # The paper's claim: per-edge maintenance pays many more solver runs.
    for row in rows:
        assert row[3] > row[2]
