"""Session-scoped fixtures shared by the benchmark suite.

Every bench sees the same replica datasets and query workloads, built once
per session, so cross-bench comparisons are apples-to-apples.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _harness import bench_query_count, bench_scale  # noqa: E402

from repro.datasets import (  # noqa: E402
    BENCHMARK_DATASETS,
    QueryWorkload,
    generate_queries,
    make_case_study,
    make_dataset,
)

DATASET_NAMES = tuple(BENCHMARK_DATASETS)  # bayc, prosper, ctu13, btc2011


@pytest.fixture(scope="session")
def datasets():
    """name -> TemporalFlowNetwork at the configured bench scale."""
    scale = bench_scale()
    return {name: make_dataset(name, scale=scale) for name in DATASET_NAMES}


@pytest.fixture(scope="session")
def workloads(datasets) -> dict[str, QueryWorkload]:
    """name -> QueryWorkload of non-trivial (s, t) pairs (paper Section 6.1)."""
    count = bench_query_count()
    return {
        name: generate_queries(network, count=count, seed=648)
        for name, network in datasets.items()
    }


@pytest.fixture(scope="session")
def case_study():
    """The Section-6.3 case-study dataset (planted ground truth)."""
    return make_case_study(scale=min(1.0, bench_scale()))
