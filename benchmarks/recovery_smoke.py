"""CI smoke test for coordinator crash recovery.

Boots a real ``python -m repro.cluster._coordinator_main`` child (its
own process group), acks appends over the NDJSON TCP protocol while
automatic checkpoints run, ``SIGKILL``s the whole group mid-stream, and
then restarts an in-process :class:`~repro.cluster.ClusterCoordinator`
on the same log + snapshot directory.  Exit code 0 means:

* the recovered committed epoch equals the last epoch the dead
  coordinator acked over the wire (zero lost committed appends);
* recovery came from a snapshot and replayed only the log suffix;
* a fenced query at the recovered epoch answers correctly.

Writes the post-recovery cluster metrics snapshot (``--snapshot``) for
upload as a build artifact.

Usage::

    PYTHONPATH=src python benchmarks/recovery_smoke.py \
        [--snapshot recovery_metrics.json] [--appends 12] \
        [--snapshot-every 4] [--replicas 2]
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.cluster import ClusterCoordinator, InlineReplica, seed_log
from repro.service.protocol import (
    AppendRequest,
    QueryRequest,
    encode,
    parse_reply,
    request_payload,
)
from repro.store import AppendLog

SEED_EDGES = [
    ("s", "a", 1, 3.0),
    ("a", "b", 2, 2.0),
    ("b", "t", 3, 2.0),
    ("s", "c", 2, 1.0),
    ("c", "t", 4, 1.0),
]


def spawn_coordinator(log_path, *, replicas: int, snapshot_every: int):
    package_root = str(Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{package_root}{os.pathsep}{existing}" if existing else package_root
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cluster._coordinator_main",
            "--log",
            str(log_path),
            "--replicas",
            str(replicas),
            "--replica-mode",
            "inline",
            "--snapshot-every",
            str(snapshot_every),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
        start_new_session=True,
    )


def run_smoke(*, appends: int, snapshot_every: int, replicas: int) -> dict:
    """One crash + recovery pass; returns the post-recovery metrics."""
    with tempfile.TemporaryDirectory() as scratch:
        log_path = Path(scratch) / "cluster.log"
        log = AppendLog(log_path)
        try:
            seed_log(log, SEED_EDGES)
        finally:
            log.close()

        process = spawn_coordinator(
            log_path, replicas=replicas, snapshot_every=snapshot_every
        )
        acked = []
        try:
            announcement = json.loads(process.stdout.readline())
            assert announcement["event"] == "listening", announcement
            host, port = announcement["host"], announcement["port"]

            async def drive():
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    for i in range(appends):
                        request = AppendRequest(
                            id=f"a{i}",
                            edges=((f"x{i}", f"y{i}", 10 + i, 1.0),),
                        )
                        writer.write(encode(request_payload(request)))
                        await writer.drain()
                        reply = parse_reply(await reader.readline())
                        assert reply.ok, f"append {i} failed: {reply}"
                        acked.append(reply.epoch)
                finally:
                    writer.close()

            asyncio.run(drive())
            os.killpg(process.pid, signal.SIGKILL)
            process.wait(timeout=10.0)
        finally:
            with contextlib.suppress(ProcessLookupError):
                os.killpg(process.pid, signal.SIGKILL)
            process.stdout.close()
            with contextlib.suppress(Exception):
                process.wait(timeout=10.0)

        async def restart():
            coordinator = ClusterCoordinator(
                log_path,
                [InlineReplica(f"r{i}", log_path) for i in range(replicas)],
                snapshot_every=snapshot_every,
            )
            try:
                assert coordinator.committed_epoch == acked[-1], (
                    f"recovered epoch {coordinator.committed_epoch}, "
                    f"last acked {acked[-1]} — committed appends were lost"
                )
                assert coordinator.recovery["from_snapshot"], (
                    "recovery replayed from genesis, not from a snapshot"
                )
                assert (
                    coordinator.recovery["replayed_records"]
                    < coordinator.recovery["total_records"]
                ), "recovery was not bounded by the suffix"
                await coordinator.start("127.0.0.1", 0)
                reply = await coordinator.handle_request(
                    QueryRequest(
                        id="q",
                        source="s",
                        sink="t",
                        delta=3,
                        min_epoch=acked[-1],
                    )
                )
                assert reply.ok, f"post-recovery query failed: {reply}"
                snapshot = await coordinator.snapshot()
                snapshot["smoke"] = {
                    "appends_acked": len(acked),
                    "last_acked_epoch": acked[-1],
                    "recovered_epoch": coordinator.committed_epoch,
                    "recovery": dict(coordinator.recovery),
                    "checks": "zero lost committed appends; bounded replay",
                }
                return snapshot
            finally:
                await coordinator.stop()

        return asyncio.run(restart())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--snapshot", type=Path, default=None)
    parser.add_argument("--appends", type=int, default=12)
    parser.add_argument("--snapshot-every", type=int, default=4)
    parser.add_argument("--replicas", type=int, default=2)
    args = parser.parse_args(argv)

    snapshot = run_smoke(
        appends=args.appends,
        snapshot_every=args.snapshot_every,
        replicas=args.replicas,
    )
    smoke = snapshot["smoke"]
    print(
        f"recovered epoch {smoke['recovered_epoch']} == last acked "
        f"{smoke['last_acked_epoch']}; replayed "
        f"{smoke['recovery']['replayed_records']}/"
        f"{smoke['recovery']['total_records']} records "
        f"(from_snapshot={smoke['recovery']['from_snapshot']})"
    )
    if args.snapshot is not None:
        args.snapshot.write_text(json.dumps(snapshot, indent=2) + "\n")
        print(f"wrote {args.snapshot}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
