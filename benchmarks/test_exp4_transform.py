"""EXP-4 / Figure 12 — network-transformation runtimes.

Separates, per dataset and per solution, the time spent *transforming*
(building/extending transformed flow networks: Trans, Trans+, Trans*) from
the time spent computing Maxflows.  The paper observes that Trans+ and
Trans* show "similar trends of speedup" to the overall runtimes of
Figure 9 — the same ordering is asserted here in aggregate.
"""

import pytest
from _harness import emit, format_table

from repro import find_bursting_flow

ALGORITHMS = ("bfq", "bfq+", "bfq*")
LABELS = {"bfq": "Trans", "bfq+": "Trans+", "bfq*": "Trans*"}


@pytest.mark.parametrize("dataset_name", ("bayc", "prosper", "ctu13", "btc2011"))
def test_exp4_transformation_runtimes(dataset_name, datasets, workloads, benchmark):
    network = datasets[dataset_name]
    workload = workloads[dataset_name]
    delta = workload.delta_for(0.03)

    def run_all():
        per_algorithm = {a: {"transform": 0.0, "maxflow": 0.0} for a in ALGORITHMS}
        for source, sink in workload:
            for algorithm in ALGORITHMS:
                result = find_bursting_flow(
                    network, source=source, sink=sink, delta=delta,
                    algorithm=algorithm,
                )
                per_algorithm[algorithm]["transform"] += (
                    result.stats.transform_seconds
                )
                per_algorithm[algorithm]["maxflow"] += result.stats.maxflow_seconds
        return per_algorithm

    per_algorithm = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (
            LABELS[a],
            f"{per_algorithm[a]['transform'] * 1000:.1f}ms",
            f"{per_algorithm[a]['maxflow'] * 1000:.1f}ms",
        )
        for a in ALGORITHMS
    ]
    emit(
        f"EXP-4 Figure 12 ({dataset_name}) - transformation vs maxflow time",
        format_table(("component", "transform", "maxflow"), rows),
    )

    # Shape: the incremental transformation never costs dramatically more
    # than building every candidate window from scratch.
    scratch = per_algorithm["bfq"]["transform"]
    assert per_algorithm["bfq+"]["transform"] <= scratch * 1.5 + 0.05
