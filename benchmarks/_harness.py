"""Shared helpers for the benchmark suite.

Each ``test_*`` module regenerates one table or figure of the paper's
evaluation section.  Since this reproduction runs on synthetic replicas and
pure Python, absolute numbers differ from the paper; what each bench
reports — and what :mod:`EXPERIMENTS.md` records — is the *shape*: who
wins, by roughly what factor, and where the crossovers fall.

The helpers here render paper-style text tables into the pytest output
(shown with ``-s`` and in the captured-call summary on failure) and append
them to ``benchmarks/results/`` so EXPERIMENTS.md can cite a concrete run.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """Dataset scale factor (env ``REPRO_BENCH_SCALE``, default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_query_count() -> int:
    """Queries per dataset (env ``REPRO_BENCH_QUERIES``, default 6).

    The paper uses 20 per dataset; 6 keeps the default suite inside a few
    minutes of pure-Python runtime.  Set ``REPRO_BENCH_QUERIES=20`` for the
    full workload.
    """
    return int(os.environ.get("REPRO_BENCH_QUERIES", "6"))


def timed(fn: Callable[[], object]) -> tuple[float, object]:
    """Run ``fn`` once, returning (elapsed seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return (time.perf_counter() - start, result)


def format_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table with aligned columns."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    all_rows = [list(header)] + text_rows
    widths = [max(len(r[c]) for r in all_rows) for c in range(len(header))]
    lines = []
    for i, row in enumerate(all_rows):
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def emit(title: str, body: str) -> None:
    """Print a report block and persist it under benchmarks/results/."""
    block = f"\n=== {title} ===\n{body}\n"
    print(block)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = (
        title.lower()
        .replace(" ", "_")
        .replace("/", "-")
        .replace("(", "")
        .replace(")", "")
    )
    path = RESULTS_DIR / f"{slug}.txt"
    path.write_text(block.lstrip("\n"))


def geometric_mean(values: Sequence[float]) -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    product = 1.0
    for value in positives:
        product *= value
    return product ** (1.0 / len(positives))
