"""Table 2 — statistics of the four benchmark datasets.

Regenerates the paper's dataset-statistics table for the synthetic
replicas and checks the shape relations that matter for the algorithms
(prosper densest / fewest timestamps, ctu13 most degree-skewed, btc2011
sparsest).
"""

from _harness import emit

from repro.temporal import format_stats_table, network_stats


def test_table2_dataset_statistics(datasets, benchmark):
    stats = benchmark.pedantic(
        lambda: {name: network_stats(net) for name, net in datasets.items()},
        rounds=1,
        iterations=1,
    )
    emit("Table 2 - dataset statistics", format_stats_table(stats))

    prosper = stats["prosper"]
    for name, other in stats.items():
        if name == "prosper":
            continue
        assert prosper.avg_degree > other.avg_degree
        assert prosper.num_timestamps < other.num_timestamps
    assert stats["ctu13"].stddev_degree == max(s.stddev_degree for s in stats.values())
    assert stats["btc2011"].avg_degree == min(s.avg_degree for s in stats.values())
