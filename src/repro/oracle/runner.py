"""The differential runner: every backend, one query, zero tolerance.

For each :class:`~repro.oracle.cases.FuzzCase` the runner executes every
registered backend (``bfq`` pinned to the object-graph transform,
``bfq-skel`` — BFQ pinned to the compiled-skeleton transform, so every
trial also cross-checks the transform compiler — BFQ+, BFQ*, the
``planner`` backend that answers through a shared-skeleton batch with
duplicate and overlapping-delta companions, the naive ``O(|T|^2)``
oracle, the NetworkX-backed baseline, and the ``service`` backend that
round-trips the query through the full serialize → cache → worker →
deserialize serving path of :mod:`repro.service`, and the opt-in
``cluster`` and ``mining`` backends that route through a live replica
set and the persisted-pattern replay path respectively) on the same
query and diffs the answers:

* **density** — all backends must agree within a relative epsilon;
* **flow value** — must match the density on the reported interval;
* **interval** — the Lemma-2 plan-based backends must report the
  *byte-identical* interval under the canonical tie-break of
  :mod:`repro.core.record`.  The naive oracle enumerates *all* windows, a
  strict superset of the plan, so an equal-density window outside the plan
  can legitimately win its internal tie-break; its interval is therefore
  compared after *normalization* — accepted iff its claimed optimum is
  certified and ties the plan answer exactly;
* **pruning invariance** — BFQ+ and BFQ* must return the same record with
  Observation-2 pruning on and off;
* **certificates** — every claimed optimum is re-proved from first
  principles by :func:`repro.oracle.certificate.check_certificate`.

:func:`fuzz` drives seeded trial loops over the adversarial generators and
(optionally) shrinks every failure to a minimal reproducer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.baselines.naive import naive_bfq
from repro.baselines.networkx_backend import networkx_bfq
from repro.core.bfq import bfq
from repro.core.bfq_plus import bfq_plus
from repro.core.bfq_star import bfq_star
from repro.core.planner import planner_bfq
from repro.core.query import BurstingFlowResult
from repro.oracle.cases import CaseLibrary, FuzzCase
from repro.oracle.certificate import check_certificate
from repro.oracle.generators import CaseGenerator, resolve_generators
from repro.cluster.backend import cluster_bfq
from repro.mining.backend import mining_bfq
from repro.service.backend import service_bfq
from repro.temporal.edge import Timestamp

#: Relative tolerance for cross-backend density/value agreement.  Wider
#: than the tie-break epsilon (backends may sum float flow in different
#: orders) but far below anything an off-by-one bug could produce.
AGREEMENT_EPSILON = 1e-9

def _bfq_object(network, query, **kwargs) -> BurstingFlowResult:
    """BFQ pinned to the per-window object-graph transform."""
    return bfq(network, query, transform="object", **kwargs)


def _bfq_skeleton(network, query, **kwargs) -> BurstingFlowResult:
    """BFQ pinned to the compiled-skeleton transform (arena slicing)."""
    return bfq(network, query, transform="skeleton", **kwargs)


def _bfq_star_vectorized(network, query, **kwargs) -> BurstingFlowResult:
    """BFQ* pinned to the numpy-BFS vectorized Dinic kernel."""
    return bfq_star(network, query, kernel="vectorized", **kwargs)


def _bfq_star_push_relabel(network, query, **kwargs) -> BurstingFlowResult:
    """BFQ* pinned to the flat FIFO push-relabel kernel."""
    return bfq_star(network, query, kernel="push_relabel", **kwargs)


def _bfq_star_adaptive(network, query, **kwargs) -> BurstingFlowResult:
    """BFQ* under the adaptive kernel selector (any concrete kernel mix)."""
    return bfq_star(network, query, kernel="adaptive", **kwargs)


#: All differential backends, in execution order.  ``bfq`` is pinned to
#: the object transform and ``bfq-skel`` to the skeleton transform, so
#: every fuzz case cross-checks the compiled window skeleton against the
#: original per-window rebuild; ``bfq+``/``bfq*`` run the default
#: (skeleton) transform through the incremental engine.
BACKENDS: Mapping[str, Callable[..., BurstingFlowResult]] = {
    "bfq": _bfq_object,
    "bfq-skel": _bfq_skeleton,
    "bfq+": bfq_plus,
    "bfq*": bfq_star,
    # BFQ* pinned to each specialised maxflow kernel, so every fuzz case
    # differential-checks the vectorized Dinic, the flat push-relabel and
    # the adaptive selector against the persistent-kernel answers above.
    "vectorized": _bfq_star_vectorized,
    "push_relabel": _bfq_star_push_relabel,
    "adaptive": _bfq_star_adaptive,
    # The multi-query planner, exercised with a duplicate of the query and
    # overlapping-delta companions in the same batch — every amortised
    # (memoised) answer is differential-checked against the independent
    # backends above.
    "planner": planner_bfq,
    "naive": naive_bfq,
    "networkx": networkx_bfq,
    # The full serve path (protocol encode -> admission -> cache -> engine
    # worker -> protocol decode), run twice so the replay also proves the
    # result cache returns byte-identical answers.
    "service": service_bfq,
    # The full cluster path: the case is seeded into a durable log, two
    # replicas replay it, and the query routes through the coordinator
    # (affinity + epoch fence) cold and warm.
    "cluster": cluster_bfq,
    # The full mining vertical: the pair is pinned into the confirmation
    # stage, persisted to a throwaway pattern store, and the answer is
    # reconstructed from a *replayed* record after close/reopen — so the
    # durable round trip must be byte-identical to a direct solve.  The
    # double scan inside also proves re-scans dedupe instead of duplicate.
    "mining": mining_bfq,
}

#: Backends a default (``backends=None``) run skips.  ``cluster`` boots a
#: live two-replica cluster per trial and ``mining`` persists + replays a
#: pattern store per trial — correct but far heavier than the in-process
#: backends, so both are opted into explicitly (CI's smoke jobs do).
OPT_IN_BACKENDS: frozenset[str] = frozenset({"cluster", "mining"})

#: The backends a default (``backends=None``) run executes.
DEFAULT_BACKENDS: tuple[str, ...] = tuple(
    name for name in BACKENDS if name not in OPT_IN_BACKENDS
)

#: Backends that enumerate exactly the Lemma-2 candidate plan and must
#: therefore agree on the interval byte-for-byte.  The service and
#: cluster backends wrap BFQ*, and the mining backend replays a record
#: confirmed through the planner, so their intervals are canonical too.
PLAN_BACKENDS: tuple[str, ...] = (
    "bfq",
    "bfq-skel",
    "bfq+",
    "bfq*",
    "vectorized",
    "push_relabel",
    "adaptive",
    "planner",
    "networkx",
    "service",
    "cluster",
    "mining",
)

#: Backends supporting ``use_pruning`` (checked on *and* off).
PRUNABLE_BACKENDS: tuple[str, ...] = ("bfq+", "bfq*")


@dataclass(slots=True)
class BackendRecord:
    """One backend's (density, interval, value) claim for a case."""

    name: str
    density: float
    interval: tuple[Timestamp, Timestamp] | None
    flow_value: float
    pruned_intervals: int = 0

    @property
    def record(self) -> tuple[float, tuple[Timestamp, Timestamp] | None]:
        """The paper's binary record ``(density, interval)``."""
        return (self.density, self.interval)


@dataclass(frozen=True, slots=True)
class Disagreement:
    """One detected inconsistency.

    ``kind`` is one of ``"crash"``, ``"density"``, ``"interval"``,
    ``"pruning"`` or ``"certificate"``.
    """

    kind: str
    backend: str
    details: str

    def describe(self) -> str:
        """One-line summary."""
        return f"[{self.kind}] {self.backend}: {self.details}"


@dataclass(slots=True)
class DifferentialOutcome:
    """Everything the runner learned about one case."""

    case: FuzzCase
    records: dict[str, BackendRecord] = field(default_factory=dict)
    disagreements: list[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every backend agreed and every certificate held."""
        return not self.disagreements

    @property
    def kinds(self) -> frozenset[str]:
        """The set of disagreement kinds (used to steer shrinking)."""
        return frozenset(d.kind for d in self.disagreements)

    def describe(self) -> str:
        """Multi-line failure report."""
        lines = [self.case.describe()]
        for name, record in self.records.items():
            lines.append(
                f"  {name:<9} density={record.density!r} "
                f"interval={record.interval!r} value={record.flow_value!r}"
            )
        for disagreement in self.disagreements:
            lines.append(f"  {disagreement.describe()}")
        return "\n".join(lines)


def _close(a: float, b: float, eps: float) -> bool:
    return abs(a - b) <= eps * max(1.0, abs(a), abs(b))


def run_differential(
    case: FuzzCase,
    *,
    backends: Sequence[str] | None = None,
    certify: bool = True,
    check_pruning: bool = True,
    eps: float = AGREEMENT_EPSILON,
) -> DifferentialOutcome:
    """Execute every backend on ``case`` and diff the answers.

    Args:
        case: the network + query to test.
        backends: subset of :data:`BACKENDS` to run (default: all).
        certify: re-prove every claimed optimum from first principles.
        check_pruning: also run BFQ+/BFQ* with pruning disabled and demand
            identical records.
        eps: relative tolerance for density/value agreement.
    """
    outcome = DifferentialOutcome(case=case)
    names = tuple(backends) if backends is not None else DEFAULT_BACKENDS
    network = case.network()
    query = case.query()

    results: dict[str, BurstingFlowResult] = {}
    for name in names:
        try:
            results[name] = BACKENDS[name](network, query)
        except Exception as exc:  # noqa: BLE001 - crashes are findings
            outcome.disagreements.append(
                Disagreement("crash", name, f"{type(exc).__name__}: {exc}")
            )
    for name, result in results.items():
        outcome.records[name] = BackendRecord(
            name=name,
            density=result.density,
            interval=result.interval,
            flow_value=result.flow_value,
            pruned_intervals=result.stats.pruned_intervals,
        )
    if not results:
        return outcome

    _diff_densities(outcome, eps)
    _diff_intervals(outcome, results, eps)
    if check_pruning:
        _check_pruning_invariance(outcome, network, query, names, eps)
    if certify:
        for name, result in results.items():
            report = check_certificate(network, query, result)
            for issue in report.issues:
                outcome.disagreements.append(
                    Disagreement("certificate", name, issue)
                )
    return outcome


def _diff_densities(outcome: DifferentialOutcome, eps: float) -> None:
    reference_name = next(iter(outcome.records))
    reference = outcome.records[reference_name]
    for name, record in outcome.records.items():
        if not _close(record.density, reference.density, eps):
            outcome.disagreements.append(
                Disagreement(
                    "density",
                    name,
                    f"density {record.density!r} != {reference.density!r} "
                    f"({reference_name})",
                )
            )


def _diff_intervals(
    outcome: DifferentialOutcome,
    results: dict[str, BurstingFlowResult],
    eps: float,
) -> None:
    plan_records = [
        outcome.records[name] for name in PLAN_BACKENDS if name in outcome.records
    ]
    if not plan_records:
        return
    canonical = plan_records[0]
    for record in plan_records[1:]:
        if record.interval != canonical.interval:
            outcome.disagreements.append(
                Disagreement(
                    "interval",
                    record.name,
                    f"interval {record.interval!r} != canonical "
                    f"{canonical.interval!r} ({canonical.name})",
                )
            )

    naive_record = outcome.records.get("naive")
    if naive_record is None:
        return
    if naive_record.interval == canonical.interval:
        return
    # Tie-break normalization: the naive oracle enumerates every window, a
    # superset of the Lemma-2 plan, so it may report an equal-density
    # optimum that no plan backend can ever see.  That is acceptable iff
    # the densities tie exactly (checked in _diff_densities) and naive's
    # own claim is independently certified.
    if naive_record.interval is None or canonical.interval is None:
        outcome.disagreements.append(
            Disagreement(
                "interval",
                "naive",
                f"found={naive_record.interval!r} but canonical is "
                f"{canonical.interval!r}",
            )
        )
        return
    if not _close(naive_record.density, canonical.density, eps):
        return  # already reported as a density disagreement
    report = check_certificate(
        outcome.case.network(), outcome.case.query(), results["naive"]
    )
    if not report.ok:
        for issue in report.issues:
            outcome.disagreements.append(
                Disagreement(
                    "interval",
                    "naive",
                    f"off-plan interval {naive_record.interval!r} failed "
                    f"certification: {issue}",
                )
            )


def _check_pruning_invariance(
    outcome: DifferentialOutcome,
    network,
    query,
    names: Sequence[str],
    eps: float,
) -> None:
    for name in PRUNABLE_BACKENDS:
        if name not in names or name not in outcome.records:
            continue
        try:
            unpruned = BACKENDS[name](network, query, use_pruning=False)
        except Exception as exc:  # noqa: BLE001
            outcome.disagreements.append(
                Disagreement(
                    "pruning", name, f"pruning-off crash: {type(exc).__name__}: {exc}"
                )
            )
            continue
        record = outcome.records[name]
        if not _close(unpruned.density, record.density, eps):
            outcome.disagreements.append(
                Disagreement(
                    "pruning",
                    name,
                    f"pruning changed density {record.density!r} -> "
                    f"{unpruned.density!r} (off)",
                )
            )
        if unpruned.interval != record.interval:
            outcome.disagreements.append(
                Disagreement(
                    "pruning",
                    name,
                    f"pruning changed interval {record.interval!r} -> "
                    f"{unpruned.interval!r} (off)",
                )
            )


@dataclass(slots=True)
class FuzzFailure:
    """One failing trial, with its shrunk reproducer when available."""

    trial: int
    outcome: DifferentialOutcome
    shrunk: FuzzCase | None = None
    fixture_path: Path | None = None


@dataclass(slots=True)
class FuzzReport:
    """Aggregate result of one :func:`fuzz` run."""

    trials: int
    seed: int
    backends: tuple[str, ...]
    per_generator: dict[str, int] = field(default_factory=dict)
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no trial produced any disagreement."""
        return not self.failures

    @property
    def disagreements(self) -> int:
        """Total disagreement count across all failing trials."""
        return sum(len(f.outcome.disagreements) for f in self.failures)

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"{self.trials} trials, seed {self.seed}, "
            f"{len(self.backends)} backends ({', '.join(self.backends)})"
        ]
        for name, count in sorted(self.per_generator.items()):
            lines.append(f"  {name:<22} {count} cases")
        if self.ok:
            lines.append("all backends agree; all certificates hold")
        else:
            lines.append(
                f"{len(self.failures)} failing trials, "
                f"{self.disagreements} disagreements"
            )
        return "\n".join(lines)


def fuzz(
    *,
    trials: int = 100,
    seed: int = 0,
    generators: str | Mapping[str, CaseGenerator] | None = None,
    backends: Sequence[str] | None = None,
    certify: bool = True,
    check_pruning: bool = True,
    shrink: bool = True,
    dump_dir: Path | str | None = None,
    on_failure: Callable[[FuzzFailure], None] | None = None,
) -> FuzzReport:
    """Run ``trials`` differential trials; deterministic given ``seed``.

    Generators are cycled round-robin so every adversarial family gets even
    coverage regardless of the trial count.

    Args:
        trials: number of cases to generate and diff.
        seed: master RNG seed (each trial derives from the same stream).
        generators: comma-separated generator names, a mapping, or ``None``
            for the full registry.
        backends: subset of :data:`BACKENDS` names to run.
        certify: check flow certificates for every claim.
        check_pruning: diff pruning on vs off for BFQ+/BFQ*.
        shrink: reduce failing cases to minimal reproducers.
        dump_dir: when set, write (shrunk) reproducers there as JSON.
        on_failure: optional callback invoked per failing trial.
    """
    from repro.oracle.shrink import shrink_case  # local: avoid cycle at import

    if isinstance(generators, str) or generators is None:
        selected = resolve_generators(generators)
    else:
        selected = dict(generators)
    names = list(selected)
    rng = random.Random(seed)
    library = CaseLibrary(Path(dump_dir)) if dump_dir is not None else None

    report = FuzzReport(
        trials=trials,
        seed=seed,
        backends=tuple(backends) if backends is not None else DEFAULT_BACKENDS,
    )
    for trial in range(trials):
        generator_name = names[trial % len(names)]
        case = selected[generator_name](rng)
        case = FuzzCase(
            edges=case.edges,
            source=case.source,
            sink=case.sink,
            delta=case.delta,
            generator=case.generator,
            seed=seed,
        )
        report.per_generator[generator_name] = (
            report.per_generator.get(generator_name, 0) + 1
        )
        outcome = run_differential(
            case,
            backends=backends,
            certify=certify,
            check_pruning=check_pruning,
        )
        if outcome.ok:
            continue
        failure = FuzzFailure(trial=trial, outcome=outcome)
        if shrink:
            kinds = outcome.kinds

            def still_failing(candidate: FuzzCase) -> bool:
                candidate_outcome = run_differential(
                    candidate,
                    backends=backends,
                    certify=certify,
                    check_pruning=check_pruning,
                )
                return bool(candidate_outcome.kinds & kinds)

            failure.shrunk = shrink_case(case, still_failing)
        if library is not None:
            dumped = failure.shrunk if failure.shrunk is not None else case
            failure.fixture_path = library.add(
                dumped, f"trial{trial:04d}-{generator_name}"
            )
        if on_failure is not None:
            on_failure(failure)
        report.failures.append(failure)
    return report
