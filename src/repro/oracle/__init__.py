"""Differential fuzzing oracle and flow-certificate checker.

The correctness substrate every performance PR regresses against:

* :mod:`repro.oracle.generators` — adversarial random-network generators
  (parallel temporal multi-edges, hold-chain-heavy timelines, dense sink
  fan-in, fractional capacities, disconnected phases);
* :mod:`repro.oracle.runner` — the differential runner: BFQ / BFQ+ / BFQ*
  / naive / NetworkX / the full :mod:`repro.service` serve path (and,
  opt-in, the replicated :mod:`repro.cluster` path) on the same query,
  diffing density, flow value and interval (after tie-break
  normalization), with pruning on and off;
* :mod:`repro.oracle.certificate` — flow-certificate checking: re-derive
  the Maxflow, re-validate the temporal flow axioms, confirm maximality
  with a min-cut witness;
* :mod:`repro.oracle.shrink` — minimisation of failing cases into small
  JSON fixtures (:mod:`repro.oracle.cases`).

Entry points: ``repro-bfq fuzz`` on the command line, :func:`fuzz` and
:func:`run_differential` from code, and ``verify.self_check`` which
delegates its oracle-agreement check here.
"""

from repro.oracle.cases import CaseLibrary, FuzzCase, dump_case, load_case
from repro.oracle.certificate import (
    CERTIFICATE_EPSILON,
    CertificateReport,
    check_certificate,
)
from repro.oracle.generators import GENERATORS, resolve_generators
from repro.oracle.runner import (
    AGREEMENT_EPSILON,
    BACKENDS,
    DEFAULT_BACKENDS,
    PLAN_BACKENDS,
    BackendRecord,
    DifferentialOutcome,
    Disagreement,
    FuzzFailure,
    FuzzReport,
    fuzz,
    run_differential,
)
from repro.oracle.shrink import shrink_case

__all__ = [
    "FuzzCase",
    "CaseLibrary",
    "dump_case",
    "load_case",
    "CertificateReport",
    "check_certificate",
    "CERTIFICATE_EPSILON",
    "GENERATORS",
    "resolve_generators",
    "BACKENDS",
    "DEFAULT_BACKENDS",
    "PLAN_BACKENDS",
    "AGREEMENT_EPSILON",
    "BackendRecord",
    "Disagreement",
    "DifferentialOutcome",
    "FuzzFailure",
    "FuzzReport",
    "fuzz",
    "run_differential",
    "shrink_case",
]
