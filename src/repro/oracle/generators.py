"""Adversarial random-case generators for the differential oracle.

Each generator targets a failure mode the plain uniform sampler of
``verify`` almost never exercises:

* :func:`parallel_multiedges` — duplicated ``(u, v, tau)`` triples (the
  capacity-merge path) plus parallel edges at neighbouring timestamps;
* :func:`hold_chains` — long transfer chains where every node carries many
  timeline stamps, stressing hold-edge construction, timestamp injection
  and the Lemma-4/5 boundary withdrawal;
* :func:`sink_fanin` — many emitters converging on the sink inside short
  clusters, stressing ``sink_capacity_in_window`` and Observation-2
  pruning at the density boundary;
* :func:`fractional_capacities` — dyadic fractional capacities (multiples
  of 1/64, exactly representable in binary floating point) so that exact
  density ties *do* occur and the canonical tie-break is really exercised;
* :func:`disconnected_phases` — two activity phases separated by a dead
  gap, frequently yielding zero-flow answers, empty candidate plans and
  the footnote-4 corner window.

All generators keep networks small (|V| <= 8, |T| <= 12) so the naive
``O(|T|^2)`` oracle stays cheap, and draw every random choice from the
supplied ``random.Random`` so a fuzz run is reproducible from its seed.
"""

from __future__ import annotations

import random
from typing import Callable, Mapping

from repro.exceptions import ReproError
from repro.oracle.cases import EdgeTuple, FuzzCase

#: A generator maps an RNG to a fuzz case.
CaseGenerator = Callable[[random.Random], FuzzCase]


def _capacity(rng: random.Random, *, fractional: bool = False) -> float:
    """A well-behaved capacity: small int, or a dyadic fraction (k/64)."""
    if fractional:
        return rng.randint(1, 512) / 64.0
    return float(rng.randint(1, 9))


def uniform(rng: random.Random) -> FuzzCase:
    """Baseline sampler: uniformly random edges (the old verify shape)."""
    nodes = [f"n{i}" for i in range(rng.randint(3, 6))]
    horizon = rng.randint(3, 9)
    edges: list[EdgeTuple] = []
    for _ in range(rng.randint(5, 18)):
        u, v = rng.sample(nodes, 2)
        edges.append((u, v, rng.randint(1, horizon), _capacity(rng)))
    return FuzzCase(
        edges=tuple(edges),
        source="n0",
        sink="n1",
        delta=rng.randint(1, 3),
        generator="uniform",
    )


def parallel_multiedges(rng: random.Random) -> FuzzCase:
    """Duplicate (u, v, tau) triples and tight parallel timestamp bundles."""
    nodes = [f"n{i}" for i in range(rng.randint(3, 5))]
    horizon = rng.randint(4, 8)
    edges: list[EdgeTuple] = []
    for _ in range(rng.randint(4, 9)):
        u, v = rng.sample(nodes, 2)
        tau = rng.randint(1, horizon)
        # The same temporal edge several times: merging must sum capacity.
        for _ in range(rng.randint(2, 4)):
            edges.append((u, v, tau, _capacity(rng)))
        # And a parallel burst at the neighbouring timestamps.
        for offset in (-1, 1):
            if rng.random() < 0.5 and 1 <= tau + offset <= horizon:
                edges.append((u, v, tau + offset, _capacity(rng)))
    rng.shuffle(edges)
    return FuzzCase(
        edges=tuple(edges),
        source="n0",
        sink="n1",
        delta=rng.randint(1, 3),
        generator="parallel_multiedges",
    )


def hold_chains(rng: random.Random) -> FuzzCase:
    """Long chains with hold-heavy timelines (many stamps per node)."""
    length = rng.randint(3, 5)
    chain = ["s"] + [f"c{i}" for i in range(length - 1)] + ["t"]
    horizon = rng.randint(8, 12)
    edges: list[EdgeTuple] = []
    for hop in range(len(chain) - 1):
        u, v = chain[hop], chain[hop + 1]
        # Several transfer opportunities per hop, so every chain node has a
        # long timeline of stamps and value must *wait* between hops.
        for _ in range(rng.randint(2, 4)):
            tau = rng.randint(1 + hop, horizon)
            edges.append((u, v, tau, _capacity(rng)))
    # A few chords that skip ahead in the chain.
    for _ in range(rng.randint(0, 3)):
        i, j = sorted(rng.sample(range(len(chain)), 2))
        if i == j:
            continue
        edges.append(
            (chain[i], chain[j], rng.randint(1, horizon), _capacity(rng))
        )
    return FuzzCase(
        edges=tuple(edges),
        source="s",
        sink="t",
        delta=rng.randint(1, 4),
        generator="hold_chains",
    )


def sink_fanin(rng: random.Random) -> FuzzCase:
    """Dense sink fan-in: many emitters, clustered arrival stamps."""
    emitters = [f"e{i}" for i in range(rng.randint(3, 6))]
    horizon = rng.randint(6, 10)
    cluster_at = rng.randint(2, horizon - 1)
    edges: list[EdgeTuple] = []
    for emitter in emitters:
        # Source feeds every emitter early...
        edges.append(("s", emitter, rng.randint(1, cluster_at), _capacity(rng)))
        # ...and the emitters pile into the sink inside a tight cluster,
        # with stragglers elsewhere on the horizon.
        for _ in range(rng.randint(1, 3)):
            tau = min(horizon, cluster_at + rng.randint(0, 1))
            edges.append((emitter, "t", tau, _capacity(rng)))
        if rng.random() < 0.5:
            edges.append((emitter, "t", rng.randint(1, horizon), _capacity(rng)))
    return FuzzCase(
        edges=tuple(edges),
        source="s",
        sink="t",
        delta=rng.randint(1, 3),
        generator="sink_fanin",
    )


def fractional_capacities(rng: random.Random) -> FuzzCase:
    """Dyadic fractional capacities — exact float sums, real density ties."""
    nodes = [f"n{i}" for i in range(rng.randint(3, 6))]
    horizon = rng.randint(4, 9)
    edges: list[EdgeTuple] = []
    for _ in range(rng.randint(6, 16)):
        u, v = rng.sample(nodes, 2)
        edges.append(
            (u, v, rng.randint(1, horizon), _capacity(rng, fractional=True))
        )
    # Mirror a few edges one delta later with identical capacity: the same
    # flow value then recurs at several intervals, forcing tie-breaks.
    delta = rng.randint(1, 3)
    for u, v, tau, capacity in list(edges)[: rng.randint(1, 4)]:
        if tau + delta <= horizon:
            edges.append((u, v, tau + delta, capacity))
    return FuzzCase(
        edges=tuple(edges),
        source="n0",
        sink="n1",
        delta=delta,
        generator="fractional_capacities",
    )


def disconnected_phases(rng: random.Random) -> FuzzCase:
    """Two activity phases split by a dead gap; often no flow at all."""
    nodes = [f"n{i}" for i in range(rng.randint(4, 6))]
    phase1 = (1, rng.randint(2, 4))
    gap = rng.randint(2, 4)
    phase2_start = phase1[1] + gap
    phase2 = (phase2_start, phase2_start + rng.randint(1, 3))
    edges: list[EdgeTuple] = []
    for lo, hi in (phase1, phase2):
        for _ in range(rng.randint(2, 6)):
            u, v = rng.sample(nodes, 2)
            edges.append((u, v, rng.randint(lo, hi), _capacity(rng)))
    if rng.random() < 0.3:
        # Occasionally a single bridge edge inside the gap.
        u, v = rng.sample(nodes, 2)
        edges.append((u, v, phase1[1] + 1, _capacity(rng)))
    return FuzzCase(
        edges=tuple(edges),
        source="n0",
        sink="n1",
        # Deltas sometimes longer than either phase: the optimum must then
        # span the gap (or not exist), hitting the corner-window logic.
        delta=rng.randint(1, phase2[1] - 1),
        generator="disconnected_phases",
    )


#: Registry of all generators, keyed by the name used on the CLI.
GENERATORS: Mapping[str, CaseGenerator] = {
    "uniform": uniform,
    "parallel_multiedges": parallel_multiedges,
    "hold_chains": hold_chains,
    "sink_fanin": sink_fanin,
    "fractional_capacities": fractional_capacities,
    "disconnected_phases": disconnected_phases,
}


def resolve_generators(names: str | None) -> dict[str, CaseGenerator]:
    """Resolve a comma-separated generator list (``None`` means all).

    Raises:
        ReproError: for unknown generator names.
    """
    if names is None:
        return dict(GENERATORS)
    selected: dict[str, CaseGenerator] = {}
    for name in names.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in GENERATORS:
            known = ", ".join(sorted(GENERATORS))
            raise ReproError(f"unknown generator {name!r}; known: {known}")
        selected[name] = GENERATORS[name]
    if not selected:
        raise ReproError("no generators selected")
    return selected
