"""Flow-certificate checking for claimed delta-BFlow optima.

A backend's answer is a *claim*: "the optimal density is D, achieved by a
flow of value V on the interval [tau_s, tau_e]".  :func:`check_certificate`
re-derives everything from first principles:

1. rebuild the transformed network for the claimed interval from scratch
   and recompute its Maxflow — the claimed value must match;
2. extract the temporal flow (Lemma 1, constructive direction) and
   re-validate the capacity, conservation and Eq.-4 time constraints with
   :func:`repro.temporal.flow.validate_temporal_flow`;
3. confirm *maximality* with a min-cut witness
   (:func:`repro.flownet.mincut.certify_maxflow`): the residual cut must
   separate source from sink and its capacity must equal the flow value.

"No flow exists" claims (``interval is None``) are certified by sweeping
the Lemma-2 candidate plan and checking every window's Maxflow is zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.intervals import enumerate_candidates
from repro.core.query import BurstingFlowQuery, BurstingFlowResult
from repro.core.transform import build_transformed_network, extract_temporal_flow
from repro.exceptions import ReproError
from repro.flownet.algorithms.dinic import dinic
from repro.flownet.mincut import certify_maxflow
from repro.temporal.flow import validate_temporal_flow
from repro.temporal.network import TemporalFlowNetwork

#: Relative tolerance for value/density agreement between a claim and the
#: recomputed ground truth.
CERTIFICATE_EPSILON = 1e-9


@dataclass(slots=True)
class CertificateReport:
    """Outcome of certifying one claimed optimum.

    Attributes:
        issues: human-readable violations (empty means the claim holds).
        recomputed_value: the from-scratch Maxflow of the claimed interval
            (``None`` for no-flow claims).
    """

    issues: list[str] = field(default_factory=list)
    recomputed_value: float | None = None

    @property
    def ok(self) -> bool:
        """Whether the certificate holds."""
        return not self.issues


def check_certificate(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    result: BurstingFlowResult,
    *,
    eps: float = CERTIFICATE_EPSILON,
) -> CertificateReport:
    """Certify one backend's claimed answer against first principles."""
    if result.interval is None:
        return _certify_no_flow(network, query, result, eps)
    return _certify_optimum(network, query, result, eps)


def _close(a: float, b: float, eps: float) -> bool:
    return abs(a - b) <= eps * max(1.0, abs(a), abs(b))


def _certify_optimum(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    result: BurstingFlowResult,
    eps: float,
) -> CertificateReport:
    report = CertificateReport()
    tau_s, tau_e = result.interval
    length = tau_e - tau_s
    if length < query.delta:
        report.issues.append(
            f"claimed interval [{tau_s}, {tau_e}] is shorter than "
            f"delta={query.delta}"
        )
        return report

    transformed = build_transformed_network(
        network, query.source, query.sink, tau_s, tau_e
    )
    run = dinic(
        transformed.flow_network,
        transformed.source_index,
        transformed.sink_index,
    )
    report.recomputed_value = run.value

    if not _close(run.value, result.flow_value, eps):
        report.issues.append(
            f"claimed flow value {result.flow_value!r} != recomputed "
            f"Maxflow {run.value!r} on [{tau_s}, {tau_e}]"
        )
    if not _close(result.density, result.flow_value / length, eps):
        report.issues.append(
            f"claimed density {result.density!r} inconsistent with claimed "
            f"value {result.flow_value!r} over length {length}"
        )

    # Lemma-1 round trip: the classical flow must convert into a valid
    # temporal flow of the same value.
    flow = extract_temporal_flow(transformed)
    try:
        validate_temporal_flow(network, flow)
    except ReproError as exc:
        report.issues.append(f"temporal-flow validation failed: {exc}")
    if not _close(flow.flow_value(), run.value, max(eps, 1e-7)):
        report.issues.append(
            f"extracted temporal flow has value {flow.flow_value()!r}, "
            f"Maxflow was {run.value!r}"
        )

    # Maximality witness: residual min cut.
    report.issues.extend(
        certify_maxflow(
            transformed.flow_network,
            transformed.source_index,
            transformed.sink_index,
            run.value,
        )
    )
    return report


def _certify_no_flow(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    result: BurstingFlowResult,
    eps: float,
) -> CertificateReport:
    report = CertificateReport()
    if result.density > eps or result.flow_value > eps:
        report.issues.append(
            f"no-flow claim carries positive density/value "
            f"({result.density!r}, {result.flow_value!r})"
        )
    plan = enumerate_candidates(network, query.source, query.sink, query.delta)
    for tau_s, tau_e in plan.intervals():
        transformed = build_transformed_network(
            network, query.source, query.sink, tau_s, tau_e
        )
        run = dinic(
            transformed.flow_network,
            transformed.source_index,
            transformed.sink_index,
        )
        if run.value > eps:
            report.issues.append(
                f"no-flow claim refuted: window [{tau_s}, {tau_e}] carries "
                f"flow {run.value!r}"
            )
            break
    return report
