"""Serializable fuzz cases: a temporal network plus one delta-BFlow query.

A :class:`FuzzCase` is the unit the oracle operates on — generators emit
them, the differential runner executes them, the shrinker minimises them,
and failing cases are dumped as JSON fixtures that tests (or a later
debugging session) can reload verbatim with :func:`load_case`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable

from repro.core.query import BurstingFlowQuery
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork

#: One raw temporal edge as stored in a case: (u, v, tau, capacity).
EdgeTuple = tuple[NodeId, NodeId, Timestamp, float]


@dataclass(frozen=True, slots=True)
class FuzzCase:
    """One differential-testing input: edges + (source, sink, delta).

    Attributes:
        edges: the raw temporal edges (duplicates merge by capacity, like
            :meth:`TemporalFlowNetwork.add_edge`).
        source / sink / delta: the query triple.
        generator: name of the generator that produced the case (or
            ``"shrunk"`` / ``"fixture"`` for derived cases).
        seed: the fuzz seed the case came from, when known.
    """

    edges: tuple[EdgeTuple, ...]
    source: NodeId
    sink: NodeId
    delta: int
    generator: str = "manual"
    seed: int | None = None

    def network(self) -> TemporalFlowNetwork:
        """Materialise the temporal flow network (endpoints always present)."""
        network = TemporalFlowNetwork.from_tuples(self.edges)
        network.add_node(self.source)
        network.add_node(self.sink)
        return network

    def query(self) -> BurstingFlowQuery:
        """Materialise the query object."""
        return BurstingFlowQuery(self.source, self.sink, self.delta)

    @property
    def num_edges(self) -> int:
        """Raw (pre-merge) edge count — the shrinker's progress measure."""
        return len(self.edges)

    def with_edges(self, edges: Iterable[EdgeTuple]) -> "FuzzCase":
        """A copy with a different edge multiset (used while shrinking)."""
        return replace(self, edges=tuple(edges))

    def describe(self) -> str:
        """One-line summary for logs and failure reports."""
        return (
            f"{self.generator}: |E|={self.num_edges} "
            f"query=({self.source!r}, {self.sink!r}, delta={self.delta})"
        )

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "edges": [list(edge) for edge in self.edges],
            "source": self.source,
            "sink": self.sink,
            "delta": self.delta,
            "generator": self.generator,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzCase":
        """Inverse of :meth:`to_dict`."""
        return cls(
            edges=tuple(
                (u, v, int(tau), float(capacity))
                for u, v, tau, capacity in payload["edges"]
            ),
            source=payload["source"],
            sink=payload["sink"],
            delta=int(payload["delta"]),
            generator=payload.get("generator", "fixture"),
            seed=payload.get("seed"),
        )


def dump_case(case: FuzzCase, path: Path | str) -> Path:
    """Write a case as a JSON fixture; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(case.to_dict(), indent=2) + "\n")
    return path


def load_case(path: Path | str) -> FuzzCase:
    """Load a JSON fixture written by :func:`dump_case`."""
    return FuzzCase.from_dict(json.loads(Path(path).read_text()))


@dataclass(slots=True)
class CaseLibrary:
    """A directory of dumped reproducers (``repro-bfq fuzz --dump-dir``)."""

    directory: Path
    written: list[Path] = field(default_factory=list)

    def add(self, case: FuzzCase, label: str) -> Path:
        """Dump ``case`` under a stable, collision-free filename."""
        name = f"{label}.json"
        path = self.directory / name
        counter = 1
        while path.exists():
            counter += 1
            path = self.directory / f"{label}-{counter}.json"
        dump_case(case, path)
        self.written.append(path)
        return path

    def load_all(self) -> list[FuzzCase]:
        """Reload every fixture in the directory (sorted for determinism)."""
        return [load_case(p) for p in sorted(self.directory.glob("*.json"))]
