"""Shrinking failing fuzz cases to minimal reproducers.

A failing differential case found on an 18-edge random network is a poor
debugging artifact; the same failure on 3 edges with delta=1 is a fixture.
:func:`shrink_case` applies a delta-debugging-style loop:

1. **ddmin over edges** — try dropping halves, then quarters, ... then
   single edges, keeping any reduction that still fails;
2. **delta reduction** — try successively smaller query deltas;
3. **capacity simplification** — try rounding capacities to small
   integers (1 when possible), which makes reproducers readable.

The failure predicate is supplied by the caller (typically "the
differential runner still reports the same disagreement kind"), so the
shrinker never misattributes a *different* failure mode to the original.
Every candidate evaluation re-runs the full differential, so shrinking is
only attempted on the small networks the generators emit.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence

from repro.oracle.cases import EdgeTuple, FuzzCase

#: Hard cap on predicate evaluations per shrink (differentials are cheap
#: on generator-sized cases but not free).
DEFAULT_BUDGET = 400


def shrink_case(
    case: FuzzCase,
    still_failing: Callable[[FuzzCase], bool],
    *,
    budget: int = DEFAULT_BUDGET,
) -> FuzzCase:
    """Minimise ``case`` while ``still_failing`` keeps returning True.

    Returns the smallest reproducer found (possibly ``case`` itself when
    nothing could be removed).  The result is always a failing case.
    """
    spent = 0

    def check(candidate: FuzzCase) -> bool:
        nonlocal spent
        if spent >= budget:
            return False
        spent += 1
        try:
            return still_failing(candidate)
        except Exception:  # noqa: BLE001 - a crashing candidate is not kept
            return False

    best = case
    best = _shrink_edges(best, check)
    best = _shrink_delta(best, check)
    best = _shrink_capacities(best, check)
    # Capacity simplification sometimes unlocks further edge removal.
    best = _shrink_edges(best, check)
    # Canonical edge order for the dumped fixture — kept only when the
    # reordered case still reproduces (edge order can matter to a bug).
    canonical = replace(best, edges=_sorted_edges(best.edges), generator="shrunk")
    if canonical.edges != best.edges and not check(canonical):
        canonical = replace(best, generator="shrunk")
    return canonical


def _shrink_edges(
    case: FuzzCase, check: Callable[[FuzzCase], bool]
) -> FuzzCase:
    """Classic ddmin: remove ever-smaller chunks of the edge list."""
    edges: list[EdgeTuple] = list(case.edges)
    chunk = max(1, len(edges) // 2)
    while chunk >= 1 and edges:
        removed_any = False
        start = 0
        while start < len(edges):
            candidate_edges = edges[:start] + edges[start + chunk:]
            if not candidate_edges:
                start += chunk
                continue
            candidate = case.with_edges(candidate_edges)
            if check(candidate):
                edges = candidate_edges
                removed_any = True
                # Do not advance: the next chunk slid into this position.
            else:
                start += chunk
        if chunk == 1 and not removed_any:
            break
        if not removed_any:
            chunk //= 2
    return case.with_edges(edges)


def _shrink_delta(
    case: FuzzCase, check: Callable[[FuzzCase], bool]
) -> FuzzCase:
    """Try smaller deltas (greedily down to 1)."""
    best = case
    for delta in range(best.delta - 1, 0, -1):
        candidate = FuzzCase(
            edges=best.edges,
            source=best.source,
            sink=best.sink,
            delta=delta,
            generator=best.generator,
            seed=best.seed,
        )
        if check(candidate):
            best = candidate
        else:
            break
    return best


def _shrink_capacities(
    case: FuzzCase, check: Callable[[FuzzCase], bool]
) -> FuzzCase:
    """Round capacities to small integers edge by edge (1 when possible)."""
    best = case
    for index in range(len(best.edges)):
        u, v, tau, capacity = best.edges[index]
        for simpler in (1.0, float(round(capacity))):
            if simpler == capacity or simpler <= 0:
                continue
            edges = list(best.edges)
            edges[index] = (u, v, tau, simpler)
            candidate = best.with_edges(edges)
            if check(candidate):
                best = candidate
                break
    return best


def _sorted_edges(edges: Sequence[EdgeTuple]) -> tuple[EdgeTuple, ...]:
    """Stable canonical edge order for dumped fixtures."""
    return tuple(sorted(edges, key=lambda e: (e[2], str(e[0]), str(e[1]))))
