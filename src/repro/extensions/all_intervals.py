"""Enumerating *all* bursting intervals of a delta-BFlow.

Algorithm 1 returns one bursting interval, but the paper notes that "all
the bursting intervals can be obtained with minor modifications" and
footnote 13 describes how length-delta optima slide: when the optimal
density is supported by a core interval ``[a, b]`` shorter than delta,
every window ``[tau, tau + delta]`` with ``b - delta <= tau <= a`` attains
the same density.

:func:`find_all_bursting_intervals` implements those modifications: it
evaluates the Lemma-2 candidate set, keeps *every* candidate achieving the
maximum density (within a relative tolerance), and expands each length-
delta winner into its full sliding range by probing how far the window can
shift while preserving the Maxflow value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.intervals import enumerate_candidates
from repro.core.query import BurstingFlowQuery
from repro.core.transform import build_transformed_network
from repro.flownet.algorithms.dinic import dinic
from repro.temporal.edge import Timestamp
from repro.temporal.network import TemporalFlowNetwork

_RELATIVE_TOLERANCE = 1e-9


@dataclass(frozen=True, slots=True)
class AllIntervalsResult:
    """Optimal density plus every bursting interval attaining it."""

    density: float
    intervals: tuple[tuple[Timestamp, Timestamp], ...]
    flow_value: float

    @property
    def found(self) -> bool:
        """Whether any positive-density bursting interval exists."""
        return bool(self.intervals) and self.density > 0


def find_all_bursting_intervals(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
) -> AllIntervalsResult:
    """All bursting intervals of the delta-BFlow for ``query``.

    Intervals are reported in ascending ``(tau_s, tau_e)`` order.  Two
    candidates count as ties when their densities differ by at most a
    relative ``1e-9``.
    """
    query.validate_against(network)
    plan = enumerate_candidates(network, query.source, query.sink, query.delta)

    def window_value(lo: Timestamp, hi: Timestamp) -> float:
        transformed = build_transformed_network(
            network, query.source, query.sink, lo, hi
        )
        return dinic(
            transformed.flow_network,
            transformed.source_index,
            transformed.sink_index,
        ).value

    evaluated: dict[tuple[Timestamp, Timestamp], float] = {}
    best_density = 0.0
    for lo, hi in plan.intervals():
        value = evaluated.setdefault((lo, hi), window_value(lo, hi))
        best_density = max(best_density, value / (hi - lo))
    if best_density <= 0:
        return AllIntervalsResult(0.0, (), 0.0)

    tolerance = best_density * _RELATIVE_TOLERANCE
    winners: set[tuple[Timestamp, Timestamp]] = set()
    best_value = 0.0
    for (lo, hi), value in evaluated.items():
        if value / (hi - lo) >= best_density - tolerance:
            winners.add((lo, hi))
            best_value = value

    # Footnote 13: slide each length-delta winner left/right while its
    # Maxflow value is preserved.
    expanded: set[tuple[Timestamp, Timestamp]] = set(winners)
    t_min, t_max = network.t_min, network.t_max
    for lo, hi in winners:
        if hi - lo != query.delta:
            continue
        target = evaluated[(lo, hi)]
        shift = lo - 1
        while shift >= t_min and _matches(window_value(shift, shift + query.delta), target):
            expanded.add((shift, shift + query.delta))
            shift -= 1
        shift = lo + 1
        while (
            shift + query.delta <= t_max
            and _matches(window_value(shift, shift + query.delta), target)
        ):
            expanded.add((shift, shift + query.delta))
            shift += 1

    ordered = tuple(sorted(expanded))
    return AllIntervalsResult(
        density=best_density, intervals=ordered, flow_value=best_value
    )


def _matches(value: float, target: float) -> bool:
    return abs(value - target) <= max(1.0, abs(target)) * _RELATIVE_TOLERANCE
