"""Streaming delta-BFlow monitoring (the paper's future-work item ii).

Section 7 proposes studying "delta-BFlow query under a streaming or dynamic
model to tackle a more interactive querying on real-time data".  This
extension provides that for the append-only, time-ordered stream setting
(the natural order of transaction logs).

:class:`StreamingBurstMonitor` watches one (source, sink, delta) triple and
maintains the best bursting record with **watermark semantics**: a
timestamp is *complete* once a strictly larger timestamp has been observed
(or :meth:`finalize` is called), and :meth:`best` reflects all complete
timestamps.  This is the standard stream-processing contract and is what
makes incremental evaluation sound — batches at one timestamp are handled
atomically, so no late edge can land inside an already-evaluated window.

The engine underneath is the Section-5 machinery:

* each starting timestamp in ``Ti(s)`` owns one insertion-case incremental
  transformed network, constructed lazily when its minimal window
  ``[start, start + delta]`` completes (at which point the stream
  guarantees every edge of that window has arrived);
* later sink activity extends the window's end (Lemma 3) — exactly the
  candidate endings ``Ti(t)`` of the offline enumeration;
* the Observation-2 bound skips Maxflow runs that cannot beat the best
  density (the skipped sink capacity keeps accumulating, so the bound
  stays exact).

The monitor's answers match the offline ``find_bursting_flow`` on the
edges seen so far — the test-suite asserts exactly that equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.incremental import IncrementalTransformedNetwork
from repro.core.transform import build_transformed_network
from repro.exceptions import InvalidQueryError, InvalidTimestampError
from repro.flownet.algorithms.dinic import dinic
from repro.temporal.edge import NodeId, TemporalEdge, Timestamp
from repro.temporal.network import TemporalFlowNetwork


@dataclass(frozen=True, slots=True)
class BurstRecord:
    """The best bursting record observed so far."""

    density: float
    interval: tuple[Timestamp, Timestamp] | None
    flow_value: float

    @property
    def found(self) -> bool:
        """Whether a positive-density burst has been observed."""
        return self.interval is not None and self.density > 0


class _Window:
    """One starting timestamp's candidate window."""

    __slots__ = ("start", "state", "flow_value", "pending_sink_capacity")

    def __init__(self, start: Timestamp) -> None:
        self.start = start
        self.state: IncrementalTransformedNetwork | None = None
        self.flow_value = 0.0
        self.pending_sink_capacity = 0.0


class StreamingBurstMonitor:
    """Maintains the delta-BFlow answer for one (s, t, delta) over a stream."""

    def __init__(self, source: NodeId, sink: NodeId, delta: int) -> None:
        if source == sink:
            raise InvalidQueryError("source and sink must differ")
        if not isinstance(delta, int) or isinstance(delta, bool) or delta < 1:
            raise InvalidQueryError(f"delta must be a positive int, got {delta!r}")
        self.source = source
        self.sink = sink
        self.delta = delta
        self.network = TemporalFlowNetwork()
        self._windows: dict[Timestamp, _Window] = {}
        self._best = BurstRecord(0.0, None, 0.0)
        self._batch: list[TemporalEdge] = []
        self._batch_tau: Timestamp | None = None
        self._watermark: Timestamp | None = None
        self._finalized = False
        self._maxflow_runs = 0
        self._pruned = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def observe(
        self, u: NodeId, v: NodeId, tau: Timestamp, capacity: float
    ) -> BurstRecord:
        """Ingest one edge (stream must be time-ordered).

        Raises:
            InvalidTimestampError: if ``tau`` precedes the current batch
                timestamp, or the monitor was already finalized.
        """
        if self._finalized:
            raise InvalidTimestampError(tau, "monitor already finalized")
        if self._batch_tau is not None and tau < self._batch_tau:
            raise InvalidTimestampError(
                tau, f"stream went backwards (current batch at {self._batch_tau})"
            )
        if self._batch_tau is not None and tau > self._batch_tau:
            self._close_batch()
        self._batch_tau = tau
        self._batch.append(TemporalEdge(u, v, tau, capacity))
        self.network.add_edge(TemporalEdge(u, v, tau, capacity))
        return self._best

    def observe_batch(
        self, edges: list[tuple[NodeId, NodeId, Timestamp, float]]
    ) -> BurstRecord:
        """Ingest many edges (must be time-ordered)."""
        for u, v, tau, capacity in edges:
            self.observe(u, v, tau, capacity)
        return self._best

    def finalize(self) -> BurstRecord:
        """Mark the stream complete and return the overall answer.

        Processes the trailing timestamp batch and the footnote-4 corner
        window ``[T_max - delta, T_max]`` for starts whose minimal window
        overshoots the horizon.
        """
        if not self._finalized:
            self._close_batch()
            self._finalized = True
            self._evaluate_corner()
        return self._best

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------
    def best(self) -> BurstRecord:
        """Best record over all *complete* timestamps (watermark semantics)."""
        return self._best

    @property
    def watermark(self) -> Timestamp | None:
        """Largest complete timestamp, or None before the first closes."""
        return self._watermark

    @property
    def live_windows(self) -> int:
        """Number of candidate windows currently tracked."""
        return len(self._windows)

    @property
    def epoch(self) -> int:
        """Mutation epoch of the underlying network.

        Every observed edge bumps it, so it is a fingerprint of the
        stream prefix seen so far — the same counter
        :class:`repro.service.BurstingFlowService` keys its result
        cache on, which lets a monitor's answers be correlated with
        (and safely cached alongside) served query results.
        """
        return self.network.epoch

    @property
    def stats(self) -> dict[str, int]:
        """Instrumentation counters (windows, maxflow runs, prunes)."""
        return {
            "live_windows": len(self._windows),
            "epoch": self.network.epoch,
            "maxflow_runs": self._maxflow_runs,
            "pruned_evaluations": self._pruned,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _close_batch(self) -> None:
        if self._batch_tau is None:
            return
        batch, tau = self._batch, self._batch_tau
        self._batch = []
        self._watermark = tau

        sink_capacity_added = 0.0
        source_fired = False
        for edge in batch:
            if edge.v == self.sink:
                sink_capacity_added += edge.capacity
            if edge.u == self.source:
                source_fired = True
        for window in self._windows.values():
            window.pending_sink_capacity += sink_capacity_added
        if source_fired and tau not in self._windows:
            self._windows[tau] = _Window(tau)

        for window in self._windows.values():
            self._advance_window(window, tau, sink_capacity_added > 0)

    def _advance_window(
        self, window: _Window, now: Timestamp, sink_touched: bool
    ) -> None:
        minimal_end = window.start + self.delta
        if now < minimal_end:
            return  # the minimal window has not completed yet
        if window.state is None:
            # All edges of [start, minimal_end] have arrived (now >= end of
            # the minimal window and the stream is time-ordered beyond the
            # open batch), so the state can be built exactly once.
            # The stream keeps mutating the network after this state is
            # built, so the compiled-skeleton transform (a frozen per-query
            # snapshot) cannot serve it; the object transform recomputes
            # reachability against the live network on every extension.
            window.state = IncrementalTransformedNetwork(
                self.network,
                self.source,
                self.sink,
                window.start,
                minimal_end,
                transform="object",
            )
            window.state.run_maxflow()
            self._maxflow_runs += 1
            window.flow_value = window.state.flow_value()
            # The minimal-window solve covers sink capacity up to
            # minimal_end only; capacity that arrived in (minimal_end, now]
            # must stay pending for the Observation-2 bound below.
            window.pending_sink_capacity = (
                self.network.sink_capacity_in_window(
                    self.sink, minimal_end + 1, now
                )
                if now > minimal_end and self.sink in self.network
                else 0.0
            )
            self._offer(window.flow_value, window.start, minimal_end)
            if now == minimal_end:
                return
        if now <= window.state.tau_e:
            return
        if not sink_touched:
            # No new sink capacity: the Maxflow of [start, now] equals the
            # one already known for the shorter window, and the density
            # only drops. Nothing to do (the structural extension happens
            # lazily at the next sink event).
            return
        upper = window.flow_value + window.pending_sink_capacity
        if self._best.found and upper < self._best.density * (now - window.start):
            self._pruned += 1
            return  # Observation 2: provably cannot beat the best
        window.state.extend_end(now)
        window.state.run_maxflow()
        self._maxflow_runs += 1
        window.flow_value = window.state.flow_value()
        window.pending_sink_capacity = 0.0
        self._offer(window.flow_value, window.start, now)

    def _evaluate_corner(self) -> None:
        if self.network.num_edges == 0:
            return
        t_min, t_max = self.network.t_min, self.network.t_max
        if t_max - t_min < self.delta:
            return
        overshoot = any(
            start + self.delta > t_max
            for start in self.network.tistamp_out(self.source)
        ) if self.source in self.network else False
        if not overshoot:
            return
        lo, hi = t_max - self.delta, t_max
        transformed = build_transformed_network(
            self.network, self.source, self.sink, lo, hi
        )
        value = dinic(
            transformed.flow_network,
            transformed.source_index,
            transformed.sink_index,
        ).value
        self._maxflow_runs += 1
        self._offer(value, lo, hi)

    def _offer(self, value: float, lo: Timestamp, hi: Timestamp) -> None:
        density = value / (hi - lo)
        if density > self._best.density:
            self._best = BurstRecord(density, (lo, hi), value)
