"""Multi-source / multi-sink delta-BFlow queries.

The paper's case study issues |S| x |T| pairwise queries over a suspicious
source set and sink set.  When the analyst instead wants the bursting flow
of the *groups* ("how fast can money move from this ring of accounts to
that ring, in aggregate?"), the classical super-node construction applies:
a virtual source feeding every group source and a virtual sink draining
every group sink, with edges sized so they never constrain the flow.

In the temporal setting the virtual edges must exist *at the right
timestamps*: the super-source forwards to each source ``s_i`` at every
timestamp of ``TiStamp_out(s_i)`` (value must be available exactly when
``s_i`` can spend it), and symmetrically for sinks.  Edge capacities equal
the node's total out/in capacity at that timestamp, which upper-bounds any
flow through it — so the construction never binds.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.engine import find_bursting_flow
from repro.core.query import BurstingFlowQuery, BurstingFlowResult
from repro.exceptions import InvalidQueryError
from repro.temporal.edge import NodeId, TemporalEdge
from repro.temporal.network import TemporalFlowNetwork

SUPER_SOURCE: NodeId = "__super_source__"
SUPER_SINK: NodeId = "__super_sink__"


def build_group_network(
    network: TemporalFlowNetwork,
    sources: Sequence[NodeId],
    sinks: Sequence[NodeId],
) -> TemporalFlowNetwork:
    """A copy of ``network`` with super-source/super-sink plumbing added."""
    _validate_groups(network, sources, sinks)
    grouped = TemporalFlowNetwork()
    for edge in network.edges():
        grouped.add_edge(edge)
    for node in network.nodes:
        grouped.add_node(node)
    for source in sources:
        for tau in network.tistamp_out(source):
            capacity = sum(
                network.capacity(source, v, tau)
                for v in network.out_neighbours(source, tau)
            )
            if capacity > 0:
                grouped.add_edge(
                    TemporalEdge(SUPER_SOURCE, source, tau, capacity)
                )
    for sink in sinks:
        for tau in network.tistamp_in(sink):
            capacity = network.sink_capacity_in_window(sink, tau, tau)
            if capacity > 0:
                grouped.add_edge(TemporalEdge(sink, SUPER_SINK, tau, capacity))
    return grouped


def find_group_bursting_flow(
    network: TemporalFlowNetwork,
    sources: Iterable[NodeId],
    sinks: Iterable[NodeId],
    delta: int,
    *,
    algorithm: str = "bfq*",
) -> BurstingFlowResult:
    """The delta-BFlow from a *set* of sources to a *set* of sinks.

    Semantics: the maximum-density temporal flow where any group source
    may emit and any group sink may absorb (value is pooled).  Always at
    least the best pairwise answer — often strictly better, because
    parallel pairs can burst simultaneously.

    Raises:
        InvalidQueryError: for empty/overlapping groups or unknown nodes.
    """
    source_list = list(dict.fromkeys(sources))
    sink_list = list(dict.fromkeys(sinks))
    grouped = build_group_network(network, source_list, sink_list)
    if (
        SUPER_SOURCE not in grouped
        or SUPER_SINK not in grouped
        or not grouped.tistamp_out(SUPER_SOURCE)
        or not grouped.tistamp_in(SUPER_SINK)
    ):
        return BurstingFlowResult(0.0, None, 0.0)
    query = BurstingFlowQuery(SUPER_SOURCE, SUPER_SINK, delta)
    return find_bursting_flow(grouped, query, algorithm=algorithm)


def _validate_groups(
    network: TemporalFlowNetwork,
    sources: Sequence[NodeId],
    sinks: Sequence[NodeId],
) -> None:
    if not sources or not sinks:
        raise InvalidQueryError("source and sink groups must be non-empty")
    overlap = set(sources) & set(sinks)
    if overlap:
        raise InvalidQueryError(f"groups overlap: {sorted(map(str, overlap))}")
    for node in (*sources, *sinks):
        if node not in network:
            raise InvalidQueryError(f"group node {node!r} not in network")
        if node in (SUPER_SOURCE, SUPER_SINK):
            raise InvalidQueryError(f"{node!r} is a reserved node id")
