"""Labeled delta-BFlow queries (the paper's future-work item i).

Section 7 proposes "finding labeled delta-BFlow in temporal flow networks
having keywords on the temporal edges".  This extension implements the
natural semantics: every temporal edge may carry a set of labels
(keywords), and a labeled query restricts the flow to edges whose labels
satisfy a predicate (by default: at least one required label present).

The implementation projects the labeled network onto the admissible edge
set and answers the query with the ordinary BFQ* machinery — the
projection preserves all delta-BFlow semantics because removing edges is
the only difference between the labeled and unlabeled problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.engine import find_bursting_flow
from repro.core.query import BurstingFlowQuery, BurstingFlowResult
from repro.exceptions import InvalidQueryError
from repro.temporal.edge import NodeId, TemporalEdge, Timestamp
from repro.temporal.network import TemporalFlowNetwork

LabelSet = frozenset[str]


@dataclass
class LabeledTemporalFlowNetwork:
    """A temporal flow network whose edges carry keyword labels.

    Thin wrapper: the underlying :class:`TemporalFlowNetwork` holds the
    merged capacities; ``labels`` maps each ``(u, v, tau)`` triple to its
    label set (edges added without labels get the empty set).
    """

    network: TemporalFlowNetwork = field(default_factory=TemporalFlowNetwork)
    labels: dict[tuple[NodeId, NodeId, Timestamp], LabelSet] = field(
        default_factory=dict
    )

    def add_edge(
        self,
        u: NodeId,
        v: NodeId,
        tau: Timestamp,
        capacity: float,
        labels: Iterable[str] = (),
    ) -> None:
        """Insert a labeled temporal edge (labels merge on duplicates)."""
        self.network.add_edge(TemporalEdge(u, v, tau, capacity))
        key = (u, v, tau)
        existing = self.labels.get(key, frozenset())
        self.labels[key] = existing | frozenset(labels)

    def labels_of(self, u: NodeId, v: NodeId, tau: Timestamp) -> LabelSet:
        """The label set of one temporal edge (empty when unlabeled)."""
        return self.labels.get((u, v, tau), frozenset())

    def project(
        self, predicate: Callable[[LabelSet], bool]
    ) -> TemporalFlowNetwork:
        """The sub-network of edges whose label sets satisfy ``predicate``.

        Query endpoints always exist in the projection (isolated if none of
        their edges qualify), so downstream queries fail soft (empty
        result) rather than hard (unknown node).
        """
        projected = TemporalFlowNetwork()
        for edge in self.network.edges():
            if predicate(self.labels_of(edge.u, edge.v, edge.tau)):
                projected.add_edge(edge)
        for node in self.network.nodes:
            projected.add_node(node)
        return projected


def find_labeled_bursting_flow(
    labeled: LabeledTemporalFlowNetwork,
    query: BurstingFlowQuery,
    *,
    required_labels: Iterable[str] = (),
    mode: str = "any",
    algorithm: str = "bfq*",
) -> BurstingFlowResult:
    """Answer a delta-BFlow query restricted to label-admissible edges.

    Args:
        labeled: the labeled temporal flow network.
        query: the delta-BFlow query.
        required_labels: the keyword set the flow may use.
        mode: ``"any"`` — an edge qualifies if it carries at least one
            required label; ``"all"`` — it must carry every required
            label; ``"subset"`` — its labels must all be required ones
            (unlabeled edges qualify).
        algorithm: which delta-BFlow solution answers the projected query.

    Raises:
        InvalidQueryError: for an unknown ``mode``.
    """
    required = frozenset(required_labels)
    if mode == "any":
        predicate = lambda labels: bool(labels & required)  # noqa: E731
    elif mode == "all":
        predicate = lambda labels: required <= labels  # noqa: E731
    elif mode == "subset":
        predicate = lambda labels: labels <= required  # noqa: E731
    else:
        raise InvalidQueryError(
            f"unknown label mode {mode!r}; use 'any', 'all' or 'subset'"
        )
    if not required and mode in ("any", "all"):
        # "any of nothing" admits nothing; "all of nothing" admits all.
        if mode == "any":
            return BurstingFlowResult(0.0, None, 0.0)
        predicate = lambda labels: True  # noqa: E731
    projected = labeled.project(predicate)
    if projected.num_edges == 0:
        return BurstingFlowResult(0.0, None, 0.0)
    return find_bursting_flow(projected, query, algorithm=algorithm)
