"""Extensions beyond the paper's core: its Section-7 future-work items.

* :mod:`repro.extensions.labeled` — keyword-labeled delta-BFlow queries
  (future work i);
* :mod:`repro.extensions.streaming` — delta-BFlow monitoring over
  time-ordered edge streams (future work ii);
* :mod:`repro.extensions.all_intervals` — enumerate *all* bursting
  intervals (the "minor modification" noted under Algorithm 1).
"""

from repro.extensions.all_intervals import (
    AllIntervalsResult,
    find_all_bursting_intervals,
)
from repro.extensions.multi import (
    SUPER_SINK,
    SUPER_SOURCE,
    build_group_network,
    find_group_bursting_flow,
)
from repro.extensions.labeled import (
    LabeledTemporalFlowNetwork,
    find_labeled_bursting_flow,
)
from repro.extensions.streaming import BurstRecord, StreamingBurstMonitor

__all__ = [
    "LabeledTemporalFlowNetwork",
    "find_group_bursting_flow",
    "build_group_network",
    "SUPER_SOURCE",
    "SUPER_SINK",
    "find_labeled_bursting_flow",
    "StreamingBurstMonitor",
    "BurstRecord",
    "AllIntervalsResult",
    "find_all_bursting_intervals",
]
