"""Deterministic open-loop arrival traces derived from the datasets.

The serving benches so far are *closed-loop*: four clients issue the
next request when the previous one returns, which means a slow server
quietly slows the workload down and the latency numbers flatter it
(coordinated omission).  Real traffic does not wait.  This module builds
the other kind of workload: a schedule of :class:`ArrivalEvent`\\ s at
absolute offsets from the run start, fired by the open-loop driver
regardless of completions.

Three properties are load-bearing:

* **Bursty arrivals.**  Inter-arrival times come from a two-state
  process in the spirit of Kleinberg's burst automaton (the same model
  :func:`repro.mining.stats.kleinberg_states` *decodes*; here we run it
  generatively): a quiet state emitting at ``base_rate`` and a burst
  state emitting at ``burst_rate``, with exponentially distributed
  sojourn times.  The decoded burst intervals are recorded on the trace
  so reports can segment by regime.
* **Zipfian popularity.**  (source, sink) pairs are drawn from the
  dataset's own query workload (:func:`repro.datasets.queries
  .generate_queries`) with Zipf(``zipf_s``) popularity — a handful of
  hot pairs dominates, the tail keeps caches honest.
* **Reproducibility.**  Everything derives from ``TraceConfig.seed``
  through one ``random.Random``; the same (network, config) builds a
  byte-identical trace, and traces round-trip through JSONL so a run
  can be replayed elsewhere.

The op mix covers the whole wire surface: ``query``, ``append`` (fresh
edges between workload nodes at fresh timestamps), ``batch``, ``topk``
and ``scan``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.datasets.queries import generate_queries
from repro.exceptions import DatasetError, InvalidQueryError
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork

#: The ops a trace can schedule, in wire-protocol vocabulary.
TRACE_OPS = ("query", "append", "batch", "topk", "scan")


@dataclass(frozen=True, slots=True)
class OpMix:
    """Relative weights of the request kinds in a trace (>= 0 each).

    Weights are normalised at build time; at least one must be positive.
    """

    query: float = 1.0
    append: float = 0.0
    batch: float = 0.0
    topk: float = 0.0
    scan: float = 0.0

    def __post_init__(self) -> None:
        weights = self.as_dict()
        if any(weight < 0 for weight in weights.values()):
            raise InvalidQueryError(f"op-mix weights must be >= 0, got {weights}")
        if sum(weights.values()) <= 0:
            raise InvalidQueryError("op mix needs at least one positive weight")

    def as_dict(self) -> dict[str, float]:
        return {op: float(getattr(self, op)) for op in TRACE_OPS}


@dataclass(frozen=True, slots=True)
class TraceConfig:
    """Everything that determines a trace, hashable and JSON-able.

    Args:
        seed: master seed; the only randomness source.
        duration_s: schedule horizon in seconds.
        base_rate: arrivals/second in the quiet state.
        burst_rate: arrivals/second inside a burst (>= base_rate).
        mean_quiet_s / mean_burst_s: expected sojourn per state
            (exponentially distributed, like the Kleinberg automaton's
            memoryless transitions).
        zipf_s: pair-popularity exponent (1.0 = classic Zipf; higher
            concentrates more mass on the hot pairs).
        pairs: distinct (source, sink) pairs drawn from the workload.
        delta_fraction: delta as a fraction of the network horizon.
        mix: relative op weights.
        append_edges: edges per append request.
        batch_size: queries per batch request.
        topk_pairs / topk_k: candidate pairs and k per topk request.
        scan_top: pre-filter width per scan request.
    """

    seed: int = 0
    duration_s: float = 10.0
    base_rate: float = 50.0
    burst_rate: float = 250.0
    mean_quiet_s: float = 2.0
    mean_burst_s: float = 0.5
    zipf_s: float = 1.1
    pairs: int = 12
    delta_fraction: float = 0.03
    mix: OpMix = field(default_factory=OpMix)
    append_edges: int = 1
    batch_size: int = 4
    topk_pairs: int = 4
    topk_k: int = 5
    scan_top: int = 4

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise InvalidQueryError(f"duration_s must be > 0, got {self.duration_s}")
        if self.base_rate <= 0:
            raise InvalidQueryError(f"base_rate must be > 0, got {self.base_rate}")
        if self.burst_rate < self.base_rate:
            raise InvalidQueryError(
                f"burst_rate {self.burst_rate} must be >= base_rate "
                f"{self.base_rate}"
            )
        if self.mean_quiet_s <= 0 or self.mean_burst_s <= 0:
            raise InvalidQueryError("state sojourn means must be > 0 seconds")
        if self.pairs < 1:
            raise InvalidQueryError(f"pairs must be >= 1, got {self.pairs}")
        if min(self.append_edges, self.batch_size, self.topk_pairs,
               self.topk_k, self.scan_top) < 1:
            raise InvalidQueryError("per-op sizing knobs must be >= 1")

    def as_dict(self) -> dict[str, Any]:
        payload = {
            name: getattr(self, name)
            for name in (
                "seed", "duration_s", "base_rate", "burst_rate",
                "mean_quiet_s", "mean_burst_s", "zipf_s", "pairs",
                "delta_fraction", "append_edges", "batch_size",
                "topk_pairs", "topk_k", "scan_top",
            )
        }
        payload["mix"] = self.mix.as_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceConfig":
        data = dict(payload)
        mix = data.pop("mix", None)
        return cls(
            mix=OpMix(**mix) if mix is not None else OpMix(), **data
        )


@dataclass(frozen=True, slots=True)
class ArrivalEvent:
    """One scheduled request: fire ``op`` at ``at`` seconds from start.

    Exactly the fields the op needs are set; the rest stay ``None``.
    """

    at: float
    op: str
    source: NodeId | None = None
    sink: NodeId | None = None
    delta: int | None = None
    edges: tuple[tuple[NodeId, NodeId, Timestamp, float], ...] | None = None
    queries: tuple[tuple[NodeId, NodeId, int], ...] | None = None
    pairs: tuple[tuple[NodeId, NodeId], ...] | None = None
    k: int | None = None
    top: int | None = None

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"at": self.at, "op": self.op}
        for name in ("source", "sink", "delta", "k", "top"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.edges is not None:
            payload["edges"] = [list(edge) for edge in self.edges]
        if self.queries is not None:
            payload["queries"] = [list(query) for query in self.queries]
        if self.pairs is not None:
            payload["pairs"] = [list(pair) for pair in self.pairs]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ArrivalEvent":
        return cls(
            at=float(payload["at"]),
            op=str(payload["op"]),
            source=payload.get("source"),
            sink=payload.get("sink"),
            delta=payload.get("delta"),
            edges=(
                tuple((e[0], e[1], e[2], float(e[3])) for e in payload["edges"])
                if "edges" in payload else None
            ),
            queries=(
                tuple((q[0], q[1], int(q[2])) for q in payload["queries"])
                if "queries" in payload else None
            ),
            pairs=(
                tuple((p[0], p[1]) for p in payload["pairs"])
                if "pairs" in payload else None
            ),
            k=payload.get("k"),
            top=payload.get("top"),
        )


@dataclass(frozen=True, slots=True)
class Trace:
    """A built schedule plus the provenance needed to reason about it."""

    config: TraceConfig
    events: tuple[ArrivalEvent, ...]
    #: (start_s, end_s) intervals the arrival process spent in the burst
    #: state — reports segment achieved rate / latency by these.
    bursts: tuple[tuple[float, float], ...]
    #: The Zipf-ranked (source, sink) universe the events draw from
    #: (rank 0 is the hottest pair).
    pair_universe: tuple[tuple[NodeId, NodeId], ...]
    delta: int

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ArrivalEvent]:
        return iter(self.events)

    @property
    def offered_rate(self) -> float:
        """Scheduled arrivals per second over the whole horizon."""
        return len(self.events) / self.config.duration_s

    @property
    def op_counts(self) -> dict[str, int]:
        counts = {op: 0 for op in TRACE_OPS}
        for event in self.events:
            counts[event.op] += 1
        return {op: count for op, count in counts.items() if count}

    def scaled(self, rate_scale: float) -> "Trace":
        """The same trace with all arrival times stretched by
        ``1 / rate_scale`` (0.5 = half the offered rate, double the
        duration). Burst segmentation stretches with it."""
        if rate_scale <= 0:
            raise InvalidQueryError(f"rate_scale must be > 0, got {rate_scale}")
        if rate_scale == 1.0:
            return self
        stretch = 1.0 / rate_scale
        return Trace(
            config=self.config,
            events=tuple(
                ArrivalEvent(**{**_event_kwargs(e), "at": e.at * stretch})
                for e in self.events
            ),
            bursts=tuple((lo * stretch, hi * stretch) for lo, hi in self.bursts),
            pair_universe=self.pair_universe,
            delta=self.delta,
        )

    # ------------------------------------------------------------------
    # Serialization (one JSON line per event; header line carries the
    # config/provenance — documented in docs/loadtest.md)
    # ------------------------------------------------------------------
    def to_jsonl(self, path: str | Path) -> None:
        with Path(path).open("w", encoding="utf-8") as handle:
            header = {
                "trace_version": 1,
                "config": self.config.as_dict(),
                "bursts": [list(interval) for interval in self.bursts],
                "pair_universe": [list(pair) for pair in self.pair_universe],
                "delta": self.delta,
            }
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for event in self.events:
                handle.write(
                    json.dumps(event.as_dict(), sort_keys=True) + "\n"
                )

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "Trace":
        with Path(path).open("r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
            if header.get("trace_version") != 1:
                raise DatasetError(
                    f"unsupported trace version {header.get('trace_version')!r}"
                )
            events = tuple(
                ArrivalEvent.from_dict(json.loads(line))
                for line in handle
                if line.strip()
            )
        return cls(
            config=TraceConfig.from_dict(header["config"]),
            events=events,
            bursts=tuple((lo, hi) for lo, hi in header["bursts"]),
            pair_universe=tuple((p[0], p[1]) for p in header["pair_universe"]),
            delta=int(header["delta"]),
        )


def _event_kwargs(event: ArrivalEvent) -> dict[str, Any]:
    return {
        name: getattr(event, name)
        for name in (
            "at", "op", "source", "sink", "delta", "edges", "queries",
            "pairs", "k", "top",
        )
    }


def derive_pairs(
    network: TemporalFlowNetwork, *, count: int, seed: int
) -> tuple[tuple[NodeId, NodeId], ...]:
    """The trace's (source, sink) universe, from the dataset itself.

    Uses the paper's own workload selector (time-respecting path of >= 3
    hops) and degrades gracefully on small networks: relax the hop bound
    before giving up, so the harness also runs against test fixtures.
    """
    for min_hops in (3, 2, 1):
        try:
            workload = generate_queries(
                network, count=count, seed=seed, min_hops=min_hops
            )
            return workload.pairs
        except DatasetError:
            continue
    raise DatasetError(
        f"could not derive {count} (source, sink) pairs from the network "
        f"even at min_hops=1 — too small or too disconnected"
    )


def _arrival_times(
    rng: random.Random, config: TraceConfig
) -> tuple[list[float], list[tuple[float, float]]]:
    """Two-state bursty arrivals: (times, burst intervals)."""
    times: list[float] = []
    bursts: list[tuple[float, float]] = []
    now = 0.0
    bursting = False
    while now < config.duration_s:
        mean = config.mean_burst_s if bursting else config.mean_quiet_s
        rate = config.burst_rate if bursting else config.base_rate
        sojourn = rng.expovariate(1.0 / mean)
        end = min(now + sojourn, config.duration_s)
        if bursting and end > now:
            bursts.append((now, end))
        t = now
        while True:
            t += rng.expovariate(rate)
            if t >= end:
                break
            times.append(t)
        now = end
        bursting = not bursting
    return times, bursts


def _zipf_weights(count: int, s: float) -> list[float]:
    return [1.0 / (rank + 1) ** s for rank in range(count)]


class _AppendFactory:
    """Fresh, valid edges for append events.

    Edges connect nodes drawn from the pair universe (so appends
    actually perturb the hot queries' networks) at strictly increasing
    timestamps beyond the dataset horizon — each generated edge is new,
    never a capacity merge, which keeps replicated epoch accounting
    byte-deterministic.
    """

    def __init__(
        self,
        rng: random.Random,
        pairs: Sequence[tuple[NodeId, NodeId]],
        horizon: int,
    ) -> None:
        self._rng = rng
        nodes = sorted({str(node) for pair in pairs for node in pair})
        self._nodes = nodes
        self._next_tau = horizon + 1

    def make(self, count: int) -> tuple[tuple[NodeId, NodeId, Timestamp, float], ...]:
        edges = []
        for _ in range(count):
            u = self._rng.choice(self._nodes)
            v = self._rng.choice(self._nodes)
            while v == u and len(self._nodes) > 1:
                v = self._rng.choice(self._nodes)
            tau = self._next_tau
            self._next_tau += 1
            capacity = round(self._rng.uniform(0.5, 5.0), 3)
            edges.append((u, v, tau, capacity))
        return tuple(edges)


def build_trace(
    network: TemporalFlowNetwork,
    config: TraceConfig,
    *,
    pairs: Sequence[tuple[NodeId, NodeId]] | None = None,
) -> Trace:
    """Build the full deterministic schedule for one network + config.

    Args:
        pairs: override the derived pair universe (tests and tiny
            fixtures); defaults to :func:`derive_pairs`.
    """
    rng = random.Random(config.seed)
    if pairs is None:
        universe = derive_pairs(network, count=config.pairs, seed=config.seed)
    else:
        universe = tuple((s, t) for s, t in pairs)[: config.pairs]
        if not universe:
            raise InvalidQueryError("explicit pair universe is empty")
    delta = max(1, int(round(network.num_timestamps * config.delta_fraction)))
    times, bursts = _arrival_times(rng, config)

    weights = _zipf_weights(len(universe), config.zipf_s)
    mix = config.mix.as_dict()
    ops = [op for op in TRACE_OPS if mix[op] > 0]
    op_weights = [mix[op] for op in ops]
    appends = _AppendFactory(rng, universe, network.num_timestamps)

    def pick_pair() -> tuple[NodeId, NodeId]:
        return rng.choices(universe, weights=weights, k=1)[0]

    events = []
    for at in times:
        op = rng.choices(ops, weights=op_weights, k=1)[0]
        if op == "query":
            source, sink = pick_pair()
            events.append(
                ArrivalEvent(at=at, op=op, source=source, sink=sink, delta=delta)
            )
        elif op == "append":
            events.append(
                ArrivalEvent(at=at, op=op, edges=appends.make(config.append_edges))
            )
        elif op == "batch":
            queries = tuple(
                (*pick_pair(), delta) for _ in range(config.batch_size)
            )
            events.append(ArrivalEvent(at=at, op=op, queries=queries))
        elif op == "topk":
            # Sample distinct pairs, hot-biased, preserving rank order.
            chosen = {pick_pair() for _ in range(config.topk_pairs)}
            pairs_tuple = tuple(
                pair for pair in universe if pair in chosen
            )
            events.append(
                ArrivalEvent(
                    at=at, op=op, pairs=pairs_tuple, delta=delta,
                    k=config.topk_k,
                )
            )
        else:  # scan
            events.append(
                ArrivalEvent(at=at, op=op, delta=delta, top=config.scan_top)
            )
    return Trace(
        config=config,
        events=tuple(events),
        bursts=tuple(bursts),
        pair_universe=universe,
        delta=delta,
    )
