"""`repro.loadgen` — open-loop load generation against the serving tier.

The measurement backbone for the serving claims: deterministic bursty
arrival traces (:mod:`~repro.loadgen.trace`), an asyncio open-loop
driver that measures coordinated omission instead of hiding it
(:mod:`~repro.loadgen.driver`), a five-scenario matrix including
kill-9 failover chaos (:mod:`~repro.loadgen.scenarios`), and a
declarative SLO gate (:mod:`~repro.loadgen.slo`).

    from repro.loadgen import SMOKE_SCALE, SMOKE_SLOS, run_matrix, evaluate_matrix

    reports = run_matrix(["query_heavy", "failover_chaos"], scale=SMOKE_SCALE)
    results = evaluate_matrix(reports, SMOKE_SLOS)
    assert all(result.passed for result in results.values())

See ``docs/loadtest.md`` for the trace format, scenario matrix and SLO
schema.
"""

from repro.loadgen.driver import (
    ERROR_KINDS,
    LoadResult,
    OpenLoopDriver,
    OpStats,
    classify_error,
)
from repro.loadgen.scenarios import (
    FULL_SCALE,
    FULL_SLOS,
    SCENARIOS,
    SMOKE_SCALE,
    SMOKE_SLOS,
    ScenarioScale,
    run_matrix,
    run_scenario,
    scale_from_overrides,
)
from repro.loadgen.slo import (
    ScenarioReport,
    Slo,
    SloCheck,
    SloResult,
    evaluate_matrix,
    quantiles_ms,
    report_from_result,
)
from repro.loadgen.trace import (
    TRACE_OPS,
    ArrivalEvent,
    OpMix,
    Trace,
    TraceConfig,
    build_trace,
    derive_pairs,
)

__all__ = [
    "ERROR_KINDS",
    "FULL_SCALE",
    "FULL_SLOS",
    "SCENARIOS",
    "SMOKE_SCALE",
    "SMOKE_SLOS",
    "TRACE_OPS",
    "ArrivalEvent",
    "LoadResult",
    "OpMix",
    "OpStats",
    "OpenLoopDriver",
    "ScenarioReport",
    "ScenarioScale",
    "Slo",
    "SloCheck",
    "SloResult",
    "Trace",
    "TraceConfig",
    "build_trace",
    "classify_error",
    "derive_pairs",
    "evaluate_matrix",
    "quantiles_ms",
    "report_from_result",
    "run_matrix",
    "run_scenario",
    "scale_from_overrides",
]
