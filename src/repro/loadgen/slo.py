"""Scenario reports and the declarative SLO gate.

A :class:`ScenarioReport` is the JSON-able record of one load scenario:
offered vs achieved rate, per-op latency quantiles from both the user's
view (scheduled→completed) and the server's view (sent→completed), the
scheduled-vs-sent lag distribution (the open-loop honesty metric),
error/retry budgets, and — for the chaos and restart scenarios —
recovery time and lost-acked-append accounting.

An :class:`Slo` is a set of declarative bounds over one report.  The
gate never computes anything new: every bound reads a field the report
already carries, so a committed ``BENCH_PR10.json`` can be re-gated
offline (``benchmarks/load_slo.py --check``) without re-running load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import ReproError
from repro.service.metrics import LatencyHistogram

#: Quantiles every latency block reports.  p999 is the reason the
#: coarse-histogram metrics path exists: exact windows clip it.
QUANTILES = ((0.50, "p50_ms"), (0.95, "p95_ms"), (0.99, "p99_ms"), (0.999, "p999_ms"))


def quantiles_ms(histogram: LatencyHistogram) -> dict[str, Any]:
    """The standard quantile block for one histogram."""
    block: dict[str, Any] = {"count": histogram.count}
    for q, name in QUANTILES:
        value = histogram.quantile(q)
        block[name] = None if value is None else round(value * 1000.0, 4)
    block["max_ms"] = round(histogram.max_seconds * 1000.0, 4)
    return block


@dataclass(frozen=True, slots=True)
class ScenarioReport:
    """One scenario's measured outcome, fully JSON-able."""

    scenario: str
    target: str  # "service" | "cluster"
    offered_rate: float
    achieved_rate: float | None
    duration_s: float
    offered: int
    ok: int
    error_rate: float
    errors: dict[str, int]
    retries: int
    #: op -> {scheduled, ok, errors, total_ms: {...}, service_ms: {...}}
    per_op: dict[str, dict[str, Any]]
    #: scheduled-vs-sent lag quantiles (coordinated-omission honesty).
    lag_ms: dict[str, Any]
    #: burst intervals the arrival process scheduled (provenance).
    bursts: tuple[tuple[float, float], ...] = ()
    #: restart / failover scenarios only.
    recovery_s: float | None = None
    lost_acked_appends: int | None = None
    acked_appends: int | None = None
    #: appends whose outcome the client could not determine (timeout or
    #: connection cut after send) — exact answer verification is only
    #: claimed when this is zero.
    ambiguous_appends: int | None = None
    answers_verified: bool | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "scenario": self.scenario,
            "target": self.target,
            "loop": "open",  # self-describing, next to the closed-loop BENCH_* files
            "offered_rate": round(self.offered_rate, 3),
            "achieved_rate": (
                None if self.achieved_rate is None
                else round(self.achieved_rate, 3)
            ),
            "duration_s": round(self.duration_s, 3),
            "offered": self.offered,
            "ok": self.ok,
            "error_rate": round(self.error_rate, 6),
            "errors": dict(self.errors),
            "retries": self.retries,
            "per_op": self.per_op,
            "lag_ms": self.lag_ms,
            "bursts": [list(interval) for interval in self.bursts],
        }
        for name in (
            "recovery_s", "lost_acked_appends", "acked_appends",
            "ambiguous_appends", "answers_verified",
        ):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.extra:
            payload["extra"] = self.extra
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioReport":
        return cls(
            scenario=payload["scenario"],
            target=payload["target"],
            offered_rate=payload["offered_rate"],
            achieved_rate=payload.get("achieved_rate"),
            duration_s=payload["duration_s"],
            offered=payload["offered"],
            ok=payload["ok"],
            error_rate=payload["error_rate"],
            errors=dict(payload.get("errors", {})),
            retries=payload.get("retries", 0),
            per_op=dict(payload.get("per_op", {})),
            lag_ms=dict(payload.get("lag_ms", {})),
            bursts=tuple(
                (lo, hi) for lo, hi in payload.get("bursts", ())
            ),
            recovery_s=payload.get("recovery_s"),
            lost_acked_appends=payload.get("lost_acked_appends"),
            acked_appends=payload.get("acked_appends"),
            ambiguous_appends=payload.get("ambiguous_appends"),
            answers_verified=payload.get("answers_verified"),
            extra=dict(payload.get("extra", {})),
        )

    def worst(self, field_name: str, view: str = "total_ms") -> float | None:
        """The worst per-op value of one quantile field (e.g. p99_ms)."""
        values = [
            block[view][field_name]
            for block in self.per_op.values()
            if block.get(view, {}).get(field_name) is not None
        ]
        return max(values) if values else None


def report_from_result(
    scenario: str,
    target: str,
    trace,
    result,
    **overrides: Any,
) -> ScenarioReport:
    """Fold an :class:`~repro.loadgen.driver.LoadResult` into a report."""
    per_op = {}
    for op, stats in sorted(result.per_op.items()):
        per_op[op] = {
            "scheduled": stats.scheduled,
            "ok": stats.ok,
            "errors": dict(stats.errors),
            "total_ms": quantiles_ms(stats.total_latency),
            "service_ms": quantiles_ms(stats.service_latency),
        }
    return ScenarioReport(
        scenario=scenario,
        target=target,
        offered_rate=trace.offered_rate,
        achieved_rate=result.achieved_rate,
        duration_s=result.wall_s,
        offered=result.offered,
        ok=result.ok,
        error_rate=result.error_rate,
        errors=result.errors,
        retries=result.retries,
        per_op=per_op,
        lag_ms=quantiles_ms(result.lag),
        bursts=trace.bursts,
        **overrides,
    )


@dataclass(frozen=True, slots=True)
class SloCheck:
    """One evaluated assertion."""

    name: str
    passed: bool
    observed: Any
    bound: Any

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "passed": self.passed,
            "observed": self.observed,
            "bound": self.bound,
        }


@dataclass(frozen=True, slots=True)
class Slo:
    """Declarative bounds over one scenario report.

    ``None`` disables a bound.  ``max_p99_ms`` / ``max_p999_ms`` bound
    the *worst per-op total latency* — the user's view, including send
    lag, so a driver that falls behind its own schedule fails the gate
    instead of hiding it.
    """

    min_achieved_fraction: float | None = None  # achieved / offered rate
    max_error_rate: float | None = None
    max_p99_ms: float | None = None
    max_p999_ms: float | None = None
    max_lag_p99_ms: float | None = None
    max_recovery_s: float | None = None
    require_zero_lost_acked: bool = False
    require_lag_reported: bool = True

    def as_dict(self) -> dict[str, Any]:
        return {
            name: getattr(self, name)
            for name in (
                "min_achieved_fraction", "max_error_rate", "max_p99_ms",
                "max_p999_ms", "max_lag_p99_ms", "max_recovery_s",
                "require_zero_lost_acked", "require_lag_reported",
            )
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Slo":
        return cls(**dict(payload))

    def evaluate(self, report: ScenarioReport) -> "SloResult":
        checks: list[SloCheck] = []

        def check(name: str, passed: bool, observed: Any, bound: Any) -> None:
            checks.append(SloCheck(name, bool(passed), observed, bound))

        if self.min_achieved_fraction is not None:
            fraction = (
                (report.achieved_rate or 0.0) / report.offered_rate
                if report.offered_rate else 0.0
            )
            check(
                "achieved_fraction",
                fraction >= self.min_achieved_fraction,
                round(fraction, 4),
                self.min_achieved_fraction,
            )
        if self.max_error_rate is not None:
            check(
                "error_rate",
                report.error_rate <= self.max_error_rate,
                report.error_rate,
                self.max_error_rate,
            )
        if self.max_p99_ms is not None:
            worst = report.worst("p99_ms")
            check(
                "p99_ms",
                worst is not None and worst <= self.max_p99_ms,
                worst,
                self.max_p99_ms,
            )
        if self.max_p999_ms is not None:
            worst = report.worst("p999_ms")
            check(
                "p999_ms",
                worst is not None and worst <= self.max_p999_ms,
                worst,
                self.max_p999_ms,
            )
        if self.max_lag_p99_ms is not None:
            lag = report.lag_ms.get("p99_ms")
            check(
                "lag_p99_ms",
                lag is not None and lag <= self.max_lag_p99_ms,
                lag,
                self.max_lag_p99_ms,
            )
        if self.max_recovery_s is not None:
            check(
                "recovery_s",
                report.recovery_s is not None
                and report.recovery_s <= self.max_recovery_s,
                report.recovery_s,
                self.max_recovery_s,
            )
        if self.require_zero_lost_acked:
            check(
                "lost_acked_appends",
                report.lost_acked_appends == 0,
                report.lost_acked_appends,
                0,
            )
        if self.require_lag_reported:
            check(
                "lag_reported",
                report.lag_ms.get("count", 0) > 0
                and report.lag_ms.get("p99_ms") is not None,
                report.lag_ms.get("count", 0),
                ">0 observations",
            )
        return SloResult(scenario=report.scenario, checks=tuple(checks))


@dataclass(frozen=True, slots=True)
class SloResult:
    """All checks for one scenario."""

    scenario: str
    checks: tuple[SloCheck, ...]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> tuple[SloCheck, ...]:
        return tuple(check for check in self.checks if not check.passed)

    def as_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "passed": self.passed,
            "checks": [check.as_dict() for check in self.checks],
        }


def evaluate_matrix(
    reports: Mapping[str, ScenarioReport],
    slos: Mapping[str, Slo],
) -> dict[str, SloResult]:
    """Gate every scenario; a missing SLO entry is an error, not a skip."""
    missing = set(reports) - set(slos)
    if missing:
        raise ReproError(
            f"no SLO declared for scenario(s) {sorted(missing)} — every "
            f"scenario in the matrix must be gated"
        )
    return {
        name: slos[name].evaluate(report)
        for name, report in sorted(reports.items())
    }
