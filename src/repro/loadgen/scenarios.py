"""The scenario matrix: five load shapes, one report schema.

Each scenario boots its own target (a :class:`~repro.service.server
.BurstingFlowService` or a :class:`~repro.cluster.ClusterCoordinator`),
replays a deterministic open-loop trace against it, and folds the
result into a :class:`~repro.loadgen.slo.ScenarioReport`:

* ``query_heavy`` — read-dominated mix against a single service; the
  cache and solver under bursty read pressure.
* ``append_heavy`` — write-dominated mix; epoch bumps and cache
  invalidation under load.
* ``mixed`` — full op mix against a 2-replica inline cluster through
  the coordinator (routing, fences, replication on the hot path).
* ``cache_cold_restart`` — warm a service, stop it, boot a cold one
  and replay the second phase against it; ``recovery_s`` measures
  restart-to-first-successful-reply and the report shows the cold-cache
  latency cliff honestly.
* ``failover_chaos`` — 2 process replicas behind a coordinator,
  ``kill -9`` one mid-burst while appends are in flight; afterwards the
  victim must rejoin at the committed epoch, a fenced query at the
  highest acked epoch must succeed, and (when no append outcome was
  ambiguous) the fenced answer must equal a fresh sequential solve over
  seed + acked edges — zero lost acked appends, proven not asserted.

Scenarios come in two scales: :data:`SMOKE_SCALE` (seconds, tiny
dataset replica — CI and tests) and :data:`FULL_SCALE` (the committed
``BENCH_PR10.json``).  SLO bounds are declared next to each scale.
"""

from __future__ import annotations

import asyncio
import os
import signal
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro import BurstingFlowQuery, find_bursting_flow
from repro.cluster import (
    ClusterCoordinator,
    InlineReplica,
    ProcessReplica,
    seed_log,
)
from repro.cluster.replication import network_edges
from repro.datasets.registry import make_dataset
from repro.exceptions import ReproError
from repro.loadgen.driver import OpenLoopDriver
from repro.loadgen.slo import ScenarioReport, Slo, report_from_result
from repro.loadgen.trace import OpMix, Trace, TraceConfig, build_trace
from repro.mining.pipeline import MiningPipeline
from repro.mining.store import PatternStore
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.server import BurstingFlowService
from repro.store.log import AppendLog
from repro.temporal.network import TemporalFlowNetwork

#: Matrix order; also the order reports appear in BENCH_PR10.json.
SCENARIOS = (
    "query_heavy",
    "append_heavy",
    "mixed",
    "cache_cold_restart",
    "failover_chaos",
)

_MIXES = {
    "query_heavy": OpMix(query=0.85, batch=0.06, topk=0.05, scan=0.04),
    "append_heavy": OpMix(query=0.35, append=0.60, scan=0.05),
    "mixed": OpMix(query=0.50, append=0.20, batch=0.15, topk=0.10, scan=0.05),
    "cache_cold_restart": OpMix(query=0.90, batch=0.10),
    "failover_chaos": OpMix(query=0.50, append=0.40, batch=0.10),
}

#: Per-scenario multiplier on the scale's offered rates.  Appends
#: serialize through the epoch bump and invalidate the result cache, so
#: a write-dominated mix saturates well below the read rate; the
#: append-heavy scenario offers at half the read-path rate (the usual
#: read/write capacity asymmetry), and the gate then holds it to the
#: same achieved-fraction and latency bounds as the read scenarios.
_RATE_FACTORS = {
    "append_heavy": 0.5,
}


@dataclass(frozen=True, slots=True)
class ScenarioScale:
    """Everything that sizes a matrix run (dataset, rates, budgets)."""

    dataset: str = "bayc"
    dataset_scale: float = 0.25
    duration_s: float = 8.0
    base_rate: float = 40.0
    burst_rate: float = 160.0
    connections: int = 16
    pairs: int = 12
    seed: int = 7
    timeout_s: float = 30.0
    max_pending: int = 256
    kill_at_fraction: float = 0.4
    rejoin_timeout_s: float = 30.0

    def as_dict(self) -> dict[str, Any]:
        return {
            name: getattr(self, name)
            for name in (
                "dataset", "dataset_scale", "duration_s", "base_rate",
                "burst_rate", "connections", "pairs", "seed", "timeout_s",
                "max_pending", "kill_at_fraction", "rejoin_timeout_s",
            )
        }


#: CI / test scale: small dataset replica, short horizon, modest rates.
SMOKE_SCALE = ScenarioScale(
    dataset_scale=0.05,
    duration_s=2.5,
    base_rate=12.0,
    burst_rate=48.0,
    connections=8,
    pairs=6,
    max_pending=64,
)

#: The committed-benchmark scale.
FULL_SCALE = ScenarioScale()

#: Relaxed-but-asserted bounds for CI smoke runs: generous latency
#: ceilings (shared runners), but the structural guarantees — lag
#: reported, zero lost acked appends, bounded recovery — stay strict.
SMOKE_SLOS: dict[str, Slo] = {
    "query_heavy": Slo(
        min_achieved_fraction=0.70, max_error_rate=0.30,
        max_p99_ms=10_000.0, max_lag_p99_ms=10_000.0,
    ),
    "append_heavy": Slo(
        min_achieved_fraction=0.70, max_error_rate=0.30,
        max_p99_ms=10_000.0, max_lag_p99_ms=10_000.0,
    ),
    "mixed": Slo(
        min_achieved_fraction=0.70, max_error_rate=0.30,
        max_p99_ms=15_000.0, max_lag_p99_ms=15_000.0,
    ),
    "cache_cold_restart": Slo(
        min_achieved_fraction=0.70, max_error_rate=0.30,
        max_p99_ms=15_000.0, max_recovery_s=30.0,
    ),
    "failover_chaos": Slo(
        max_error_rate=0.40, max_recovery_s=60.0,
        require_zero_lost_acked=True,
    ),
}

#: Full-scale gates for the committed BENCH_PR10.json.
FULL_SLOS: dict[str, Slo] = {
    "query_heavy": Slo(
        min_achieved_fraction=0.95, max_error_rate=0.02,
        max_p99_ms=2_000.0, max_p999_ms=5_000.0, max_lag_p99_ms=1_000.0,
    ),
    "append_heavy": Slo(
        min_achieved_fraction=0.95, max_error_rate=0.02,
        max_p99_ms=2_000.0, max_p999_ms=5_000.0, max_lag_p99_ms=1_000.0,
    ),
    "mixed": Slo(
        min_achieved_fraction=0.90, max_error_rate=0.05,
        max_p99_ms=5_000.0, max_lag_p99_ms=2_000.0,
    ),
    "cache_cold_restart": Slo(
        min_achieved_fraction=0.90, max_error_rate=0.05,
        max_p99_ms=5_000.0, max_recovery_s=10.0,
    ),
    "failover_chaos": Slo(
        max_error_rate=0.20, max_recovery_s=30.0,
        require_zero_lost_acked=True,
    ),
}


def _trace_for(
    network: TemporalFlowNetwork,
    scale: ScenarioScale,
    scenario: str,
    *,
    seed_offset: int = 0,
    duration_s: float | None = None,
) -> Trace:
    factor = _RATE_FACTORS.get(scenario, 1.0)
    config = TraceConfig(
        seed=scale.seed + seed_offset,
        duration_s=duration_s if duration_s is not None else scale.duration_s,
        base_rate=scale.base_rate * factor,
        burst_rate=scale.burst_rate * factor,
        pairs=scale.pairs,
        mix=_MIXES[scenario],
    )
    return build_trace(network, config)


def _driver(host: str, port: int, scale: ScenarioScale) -> OpenLoopDriver:
    return OpenLoopDriver(
        host,
        port,
        connections=scale.connections,
        timeout=scale.timeout_s,
        retry=RetryPolicy(),
    )


async def _wait_for(
    predicate: Callable[[], bool], timeout: float, interval: float = 0.05
) -> bool:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


def _service_for(
    network: TemporalFlowNetwork, scale: ScenarioScale, patterns_dir: Path
) -> BurstingFlowService:
    # Mining rides along so the trace's `scan` ops land on a real
    # pipeline instead of an unsupported-op error.
    mining = MiningPipeline(network, PatternStore(patterns_dir))
    return BurstingFlowService(
        network, max_pending=scale.max_pending, mining=mining
    )


async def _service_scenario(
    scenario: str,
    network: TemporalFlowNetwork,
    scale: ScenarioScale,
    workdir: Path,
) -> ScenarioReport:
    service = _service_for(network, scale, workdir / f"{scenario}-patterns")
    host, port = await service.start("127.0.0.1", 0)
    driver = _driver(host, port, scale)
    try:
        trace = _trace_for(network, scale, scenario)
        result = await driver.run(trace)
        return report_from_result(scenario, "service", trace, result)
    finally:
        await driver.close()
        await service.stop()


async def _query_heavy(network, scale, workdir):
    return await _service_scenario("query_heavy", network, scale, workdir)


async def _append_heavy(network, scale, workdir):
    return await _service_scenario("append_heavy", network, scale, workdir)


async def _mixed(
    network: TemporalFlowNetwork, scale: ScenarioScale, workdir: Path
) -> ScenarioReport:
    log_path = workdir / "mixed-cluster.log"
    log = AppendLog(log_path)
    try:
        seed_log(log, network_edges(network))
    finally:
        log.close()
    replicas = [
        InlineReplica(f"r{i}", log_path, max_pending=scale.max_pending)
        for i in range(2)
    ]
    coordinator = ClusterCoordinator(
        log_path,
        replicas,
        health_interval=0.2,
        patterns_dir=workdir / "mixed-patterns",
    )
    host, port = await coordinator.start("127.0.0.1", 0)
    driver = _driver(host, port, scale)
    try:
        trace = _trace_for(network, scale, "mixed")
        result = await driver.run(trace)
        return report_from_result("mixed", "cluster", trace, result)
    finally:
        await driver.close()
        await coordinator.stop()


async def _cache_cold_restart(
    network: TemporalFlowNetwork, scale: ScenarioScale, workdir: Path
) -> ScenarioReport:
    """Warm phase → hard stop → cold boot → cold phase.

    ``recovery_s`` spans from initiating the restart to the first
    successful reply out of the cold server, as a user would see it.
    """
    half = scale.duration_s / 2.0
    warm_service = _service_for(network, scale, workdir / "warm-patterns")
    host, port = await warm_service.start("127.0.0.1", 0)
    warm_driver = _driver(host, port, scale)
    warm_trace = _trace_for(
        network, scale, "cache_cold_restart", duration_s=half
    )
    try:
        warm_result = await warm_driver.run(warm_trace)
    finally:
        await warm_driver.close()

    restart_begin = time.perf_counter()
    await warm_service.stop()
    cold_service = _service_for(network, scale, workdir / "cold-patterns")
    cold_host, cold_port = await cold_service.start("127.0.0.1", 0)
    boot_elapsed = time.perf_counter() - restart_begin

    cold_driver = _driver(cold_host, cold_port, scale)
    # Same popularity structure, fresh arrival draw: the cold server
    # faces the hot pairs again with an empty cache.
    cold_trace = _trace_for(
        network, scale, "cache_cold_restart", seed_offset=1, duration_s=half
    )
    try:
        cold_result = await cold_driver.run(cold_trace)
    finally:
        await cold_driver.close()
        await cold_service.stop()

    recovery = (
        None
        if cold_result.first_ok_at is None
        else boot_elapsed + cold_result.first_ok_at
    )
    warm_report = report_from_result(
        "cache_cold_restart", "service", warm_trace, warm_result
    )
    return report_from_result(
        "cache_cold_restart",
        "service",
        cold_trace,
        cold_result,
        recovery_s=recovery,
        extra={
            "boot_elapsed_s": round(boot_elapsed, 4),
            "warm_phase": {
                "achieved_rate": warm_report.achieved_rate,
                "error_rate": warm_report.error_rate,
                "p99_ms": warm_report.worst("p99_ms"),
            },
        },
    )


async def _failover_chaos(
    network: TemporalFlowNetwork, scale: ScenarioScale, workdir: Path
) -> ScenarioReport:
    log_path = workdir / "chaos-cluster.log"
    log = AppendLog(log_path)
    try:
        seed_edges = network_edges(network)
        seed_log(log, seed_edges)
    finally:
        log.close()
    handles = [ProcessReplica(f"r{i}", log_path) for i in range(2)]
    coordinator = ClusterCoordinator(log_path, handles, health_interval=0.1)
    host, port = await coordinator.start("127.0.0.1", 0)
    driver = _driver(host, port, scale)
    trace = _trace_for(network, scale, "failover_chaos")

    killed_at: float | None = None
    rejoined_at: float | None = None
    victim_state = coordinator._replicas["r0"]
    restarts_before = victim_state.restarts

    def rejoined() -> bool:
        # A genuine rejoin, not the pre-crash steady state: the
        # coordinator must have restarted the victim at least once and
        # readmitted it at exactly the committed epoch.
        return (
            victim_state.restarts > restarts_before
            and victim_state.live
            and victim_state.acked_epoch == coordinator.committed_epoch
        )

    async def chaos_monkey() -> None:
        nonlocal killed_at, rejoined_at
        await asyncio.sleep(scale.kill_at_fraction * trace.config.duration_s)
        victim = handles[0]
        if victim.process is None:  # pragma: no cover - defensive
            return
        killed_at = time.perf_counter()
        os.kill(victim.process.pid, signal.SIGKILL)
        if await _wait_for(rejoined, timeout=scale.rejoin_timeout_s):
            rejoined_at = time.perf_counter()

    try:
        monkey = asyncio.create_task(chaos_monkey())
        result = await driver.run(trace)
        await monkey

        acked = sorted(result.acked_appends)
        append_errors = (
            result.per_op["append"].errors if "append" in result.per_op else {}
        )
        # Outcomes the client could not determine: the request may or
        # may not have committed server-side.  Exact answer verification
        # is only claimed when there are none.
        ambiguous = append_errors.get("timeout", 0) + append_errors.get(
            "connection", 0
        )
        committed = coordinator.committed_epoch
        lost = sum(1 for epoch, _ in acked if epoch > committed)
        monotone = [epoch for epoch, _ in acked] == sorted(
            {epoch for epoch, _ in acked}
        )

        verified: bool | None = None
        if acked and lost == 0:
            # Zero-lost proof, part 2: a fenced query at the highest
            # acked epoch must succeed, and (unambiguous runs) its
            # answer must equal a fresh sequential solve over
            # seed + every acked edge.
            max_epoch = acked[-1][0]
            source, sink = trace.pair_universe[0]
            loop = asyncio.get_running_loop()

            def fenced_query():
                client = ServiceClient(
                    host, port, timeout=scale.timeout_s, retry=RetryPolicy()
                )
                try:
                    return client.query(
                        source, sink, trace.delta, min_epoch=max_epoch
                    )
                finally:
                    client.close()

            reply = await loop.run_in_executor(None, fenced_query)
            if ambiguous == 0:
                shadow = list(seed_edges)
                for _, edges in acked:
                    shadow.extend(edges)
                expected = find_bursting_flow(
                    TemporalFlowNetwork.from_tuples(shadow),
                    BurstingFlowQuery(source, sink, trace.delta),
                )
                served_interval = (
                    None if reply.interval is None else tuple(reply.interval)
                )
                verified = (
                    reply.density,
                    served_interval,
                    reply.flow_value,
                ) == (
                    expected.density,
                    expected.interval,
                    expected.flow_value,
                )
                if not verified:
                    lost = -1  # wrong answer ⇒ fail the zero-lost gate

        recovery = (
            rejoined_at - killed_at
            if killed_at is not None and rejoined_at is not None
            else None
        )
        return report_from_result(
            "failover_chaos",
            "cluster",
            trace,
            result,
            recovery_s=None if recovery is None else round(recovery, 4),
            lost_acked_appends=lost,
            acked_appends=len(acked),
            ambiguous_appends=ambiguous,
            answers_verified=verified,
            extra={
                "committed_epoch": committed,
                "acked_epochs_monotone": monotone,
                "victim": "r0",
                "killed": killed_at is not None,
            },
        )
    finally:
        await driver.close()
        await coordinator.stop()


_SCENARIO_FNS: dict[str, Callable[..., Any]] = {
    "query_heavy": _query_heavy,
    "append_heavy": _append_heavy,
    "mixed": _mixed,
    "cache_cold_restart": _cache_cold_restart,
    "failover_chaos": _failover_chaos,
}


def run_scenario(
    name: str,
    *,
    scale: ScenarioScale = SMOKE_SCALE,
    network: TemporalFlowNetwork | None = None,
    workdir: str | Path | None = None,
) -> ScenarioReport:
    """Run one scenario end to end (boots its own target)."""
    if name not in _SCENARIO_FNS:
        raise ReproError(
            f"unknown scenario {name!r}; known: {', '.join(SCENARIOS)}"
        )
    if network is None:
        network = make_dataset(scale.dataset, scale=scale.dataset_scale)
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="loadgen-") as tmp:
            return asyncio.run(
                _SCENARIO_FNS[name](network, scale, Path(tmp))
            )
    return asyncio.run(_SCENARIO_FNS[name](network, scale, Path(workdir)))


def run_matrix(
    names: Sequence[str] = SCENARIOS,
    *,
    scale: ScenarioScale = SMOKE_SCALE,
    network: TemporalFlowNetwork | None = None,
    workdir: str | Path | None = None,
) -> dict[str, ScenarioReport]:
    """Run several scenarios against one shared dataset replica."""
    if network is None:
        network = make_dataset(scale.dataset, scale=scale.dataset_scale)
    return {
        name: run_scenario(
            name, scale=scale, network=network, workdir=workdir
        )
        for name in names
    }


def scale_from_overrides(
    base: ScenarioScale, overrides: Mapping[str, Any]
) -> ScenarioScale:
    """A copy of ``base`` with any :class:`ScenarioScale` field replaced."""
    return replace(base, **dict(overrides))
