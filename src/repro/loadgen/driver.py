"""The open-loop driver: fire at scheduled times, measure honestly.

A closed-loop client measures a server that is allowed to pace it.  An
open-loop driver does not grant that favour: every
:class:`~repro.loadgen.trace.ArrivalEvent` fires at its scheduled
wall-clock offset whether or not earlier requests completed.  When the
server (or the driver's own connection pool) falls behind, the schedule
does not slip — instead the gap shows up as **send lag** (``sent_at -
scheduled_at``), recorded per request.  Coordinated omission is thereby
*measured*, never hidden: total latency is reported from the scheduled
time (what a user arriving then would experience), service latency from
the send time (what the server alone took), and the lag distribution is
first-class output.

Mechanics: the asyncio loop walks the schedule and spawns one task per
event; each task borrows a blocking :class:`~repro.service.client
.ServiceClient` from a bounded pool (each client runs on its own
executor thread — the NDJSON protocol is one-request-per-connection)
and classifies the outcome by typed error kind.  Acked appends are
remembered (epoch + edges) so chaos scenarios can prove zero loss
afterwards.  Retries, when a :class:`~repro.service.client.RetryPolicy`
is supplied, are counted by intercepting the policy's sleep.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import ReproError
from repro.loadgen.trace import Trace
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.metrics import EXACT_WINDOW_LIMIT, LatencyHistogram
from repro.service.protocol import (
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    RemoteServiceError,
    StaleEpochError,
)

#: Histogram sizing for load runs: million-observation windows select
#: the bounded-memory coarse path automatically.
_LOAD_WINDOW = max(EXACT_WINDOW_LIMIT + 1, 1_000_000)

#: Error-kind vocabulary the driver classifies into.
ERROR_KINDS = (
    "overloaded", "stale", "timeout", "invalid", "internal", "connection",
)


@dataclass(slots=True)
class OpStats:
    """Aggregated outcomes for one op kind."""

    scheduled: int = 0
    sent: int = 0
    ok: int = 0
    errors: dict[str, int] = field(default_factory=dict)
    #: completed_at - scheduled_at (the user's view; includes send lag).
    total_latency: LatencyHistogram = field(
        default_factory=lambda: LatencyHistogram(window=_LOAD_WINDOW)
    )
    #: completed_at - sent_at (the server's view).
    service_latency: LatencyHistogram = field(
        default_factory=lambda: LatencyHistogram(window=_LOAD_WINDOW)
    )

    @property
    def error_count(self) -> int:
        return sum(self.errors.values())


@dataclass(slots=True)
class LoadResult:
    """Everything one driver run measured.

    ``lag`` is the scheduled-vs-sent distribution across *all* ops —
    the open-loop honesty metric: a driver that cannot keep up with its
    own schedule must say so here rather than by silently slowing the
    offered rate.
    """

    per_op: dict[str, OpStats]
    lag: LatencyHistogram
    wall_s: float
    offered: int
    completed: int
    retries: int
    #: Acked appends in completion order: (epoch, edges).
    acked_appends: list[tuple[int, tuple]]
    #: Wall-clock (monotonic offsets from run start) of the first and
    #: last successful reply — scenario phases use these.
    first_ok_at: float | None
    last_ok_at: float | None

    @property
    def ok(self) -> int:
        return sum(stats.ok for stats in self.per_op.values())

    @property
    def error_count(self) -> int:
        return sum(stats.error_count for stats in self.per_op.values())

    @property
    def errors(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for stats in self.per_op.values():
            for kind, count in stats.errors.items():
                merged[kind] = merged.get(kind, 0) + count
        return merged

    @property
    def achieved_rate(self) -> float | None:
        if self.wall_s <= 0:
            return None
        return self.ok / self.wall_s

    @property
    def error_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return 1.0 - self.ok / self.offered


def classify_error(exc: BaseException) -> str:
    """Map a client exception to the driver's error-kind vocabulary."""
    if isinstance(exc, OverloadedError):
        return "overloaded"
    if isinstance(exc, StaleEpochError):
        return "stale"
    if isinstance(exc, DeadlineExceededError):
        return "timeout"
    if isinstance(exc, ProtocolError):
        return "invalid"
    if isinstance(exc, RemoteServiceError):
        return "internal"
    return "connection"


class _ClientPool:
    """A bounded pool of blocking clients, one per executor thread.

    Clients connect lazily on first borrow (so a driver pointed at a
    server that boots later still works) and a client that saw a
    connection-level failure is discarded — the next borrow redials.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        size: int,
        timeout: float,
        retry: RetryPolicy | None,
        sleep: Callable[[float], None],
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry = retry
        self._sleep = sleep
        self._slots: asyncio.Queue = asyncio.Queue()
        for _ in range(size):
            self._slots.put_nowait(None)  # lazy-connect slots

    async def borrow(self) -> ServiceClient | None:
        return await self._slots.get()

    def give_back(self, client: ServiceClient | None) -> None:
        self._slots.put_nowait(client)

    def connect(self) -> ServiceClient:
        """Blocking: dial a fresh client (runs on an executor thread)."""
        return ServiceClient(
            self._host,
            self._port,
            timeout=self._timeout,
            retry=self._retry,
            sleep=self._sleep,
        )

    def retarget(self, host: str, port: int) -> None:
        """Point future (re)connects at a new address; live clients are
        drained naturally as connection errors discard them.  Used by
        the cold-restart scenario when the reborn server binds a fresh
        ephemeral port."""
        self._host = host
        self._port = port

    async def close(self) -> None:
        while not self._slots.empty():
            client = self._slots.get_nowait()
            if client is not None:
                try:
                    client.close()
                except OSError:  # pragma: no cover - best-effort
                    pass


def _issue(client: ServiceClient, event) -> Any:
    """Blocking: perform one event's request on a borrowed client."""
    if event.op == "query":
        return client.query(event.source, event.sink, event.delta)
    if event.op == "append":
        return client.append(event.edges)
    if event.op == "batch":
        return client.batch(event.queries)
    if event.op == "topk":
        return client.topk(event.pairs, event.delta, k=event.k)
    if event.op == "scan":
        return client.scan(event.delta, top=event.top)
    raise ReproError(f"unknown trace op {event.op!r}")


class OpenLoopDriver:
    """Replay a :class:`~repro.loadgen.trace.Trace` against one target.

    Args:
        host / port: the service or cluster-coordinator address.
        connections: client-pool size — the driver's own concurrency
            ceiling.  When all connections are busy at an event's fire
            time the event still fires on schedule and the wait is
            recorded as send lag.
        timeout: per-request socket timeout (seconds).
        retry: optional shared retry policy (overloaded/stale replies);
            retries are counted per run.
        time_source: injectable monotonic clock (tests pin it).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connections: int = 32,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        time_source: Callable[[], float] = time.perf_counter,
    ) -> None:
        if connections < 1:
            raise ReproError(f"connections must be >= 1, got {connections}")
        self._retries = 0
        self._retry_lock = threading.Lock()

        def counting_sleep(seconds: float) -> None:
            with self._retry_lock:
                self._retries += 1
            time.sleep(seconds)

        self._pool = _ClientPool(
            host,
            port,
            size=connections,
            timeout=timeout,
            retry=retry,
            sleep=counting_sleep,
        )
        self._connections = connections
        self._clock = time_source
        self._executor: ThreadPoolExecutor | None = None

    def retarget(self, host: str, port: int) -> None:
        """Redirect future connections (cold-restart scenarios)."""
        self._pool.retarget(host, port)

    async def run(self, trace: Trace) -> LoadResult:
        """Fire the whole schedule; returns once every request resolved.

        The schedule is absolute: event ``i`` fires at ``start +
        trace.events[i].at`` even when earlier requests are still in
        flight or erroring.
        """
        self._executor = ThreadPoolExecutor(
            max_workers=self._connections,
            thread_name_prefix="loadgen",
        )
        self._retries = 0
        per_op: dict[str, OpStats] = {}
        lag = LatencyHistogram(window=_LOAD_WINDOW)
        acked: list[tuple[int, tuple]] = []
        first_ok: list[float | None] = [None]
        last_ok: list[float | None] = [None]
        record_lock = threading.Lock()
        loop = asyncio.get_running_loop()
        start = self._clock()

        async def fire(event) -> None:
            stats = per_op.setdefault(event.op, OpStats())
            stats.scheduled += 1
            scheduled_at = start + event.at
            client = await self._pool.borrow()
            sent_at = self._clock()
            ok = True
            error_kind = None
            try:
                if client is None:
                    client = await loop.run_in_executor(
                        self._executor, self._pool.connect
                    )
                reply = await loop.run_in_executor(
                    self._executor, _issue, client, event
                )
            except Exception as exc:  # typed kinds + connection failures
                ok = False
                error_kind = classify_error(exc)
                if error_kind == "connection":
                    if client is not None:
                        try:
                            client.close()
                        except OSError:
                            pass
                    client = None
            completed_at = self._clock()
            self._pool.give_back(client)
            with record_lock:
                stats.sent += 1
                lag.observe(max(0.0, sent_at - scheduled_at))
                if ok:
                    stats.ok += 1
                    stats.total_latency.observe(completed_at - scheduled_at)
                    stats.service_latency.observe(completed_at - sent_at)
                    offset = completed_at - start
                    if first_ok[0] is None:
                        first_ok[0] = offset
                    last_ok[0] = offset
                    if event.op == "append":
                        acked.append((reply.epoch, event.edges))
                else:
                    stats.errors[error_kind] = (
                        stats.errors.get(error_kind, 0) + 1
                    )

        tasks = []
        try:
            for event in trace.events:
                delay = (start + event.at) - self._clock()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(asyncio.create_task(fire(event)))
            if tasks:
                await asyncio.gather(*tasks)
        finally:
            wall = self._clock() - start
            self._executor.shutdown(wait=True)
            self._executor = None
        return LoadResult(
            per_op=per_op,
            lag=lag,
            wall_s=wall,
            offered=len(trace.events),
            completed=sum(stats.sent for stats in per_op.values()),
            retries=self._retries,
            acked_appends=acked,
            first_ok_at=first_ok[0],
            last_ok_at=last_ok[0],
        )

    async def close(self) -> None:
        await self._pool.close()
        # Give a co-located server's event loop a beat to observe the
        # FINs before a scenario stops it, so shutdown stays quiet.
        await asyncio.sleep(0.05)
