"""Blocking NDJSON-over-TCP client for the delta-BFlow query service.

:class:`ServiceClient` is the reference client: one socket, one request
in flight at a time, typed exceptions for typed errors.  It is what the
throughput benchmark's closed-loop workers, the CI smoke job and the CLI
examples use; anything that can speak newline-delimited JSON (netcat
included) interoperates.

    with ServiceClient(host, port) as client:
        reply = client.query("alice", "mallory", delta=5)
        print(reply.density, reply.interval, reply.cached)
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Iterable

from repro.service.protocol import (
    AppendReply,
    AppendRequest,
    MetricsRequest,
    PingRequest,
    ProtocolError,
    QueryReply,
    QueryRequest,
    Reply,
    Request,
    encode,
    parse_reply,
    raise_for_error,
    request_payload,
)
from repro.temporal.edge import NodeId, Timestamp


class ServiceClient:
    """A blocking client for one service connection.

    Args:
        host / port: the service address.
        timeout: socket timeout (seconds) for connect and replies.

    Raises (from the request methods):
        OverloadedError: the server shed the request.
        DeadlineExceededError: the server timed the request out.
        ProtocolError: the request was rejected as invalid.
        RemoteServiceError: the server reported an internal failure.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def request(self, request: Request) -> Reply:
        """Send one request and block for its reply (errors raised typed)."""
        self._file.write(encode(request_payload(request)))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ProtocolError("connection closed by server")
        return raise_for_error(parse_reply(line))

    def query(
        self,
        source: NodeId,
        sink: NodeId,
        delta: int,
        *,
        algorithm: str | None = None,
        kernel: str | None = None,
        timeout: float | None = None,
    ) -> QueryReply:
        """Answer one delta-BFlow query."""
        reply = self.request(
            QueryRequest(
                id=f"q{next(self._ids)}",
                source=source,
                sink=sink,
                delta=delta,
                algorithm=algorithm,
                kernel=kernel,
                timeout=timeout,
            )
        )
        assert isinstance(reply, QueryReply)
        return reply

    def append(
        self, edges: Iterable[tuple[NodeId, NodeId, Timestamp, float]]
    ) -> AppendReply:
        """Stream new edges into the served network."""
        reply = self.request(
            AppendRequest(id=f"a{next(self._ids)}", edges=tuple(edges))
        )
        assert isinstance(reply, AppendReply)
        return reply

    def metrics(self) -> dict[str, Any]:
        """The server's metrics snapshot."""
        reply = self.request(MetricsRequest(id=f"m{next(self._ids)}"))
        return dict(reply.snapshot)  # type: ignore[union-attr]

    def ping(self) -> int:
        """Liveness probe; returns the current network epoch."""
        reply = self.request(PingRequest(id=f"p{next(self._ids)}"))
        return reply.epoch  # type: ignore[union-attr]

    def close(self) -> None:
        """Close the connection."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
