"""Blocking NDJSON-over-TCP client for the delta-BFlow query service.

:class:`ServiceClient` is the reference client: one socket, one request
in flight at a time, typed exceptions for typed errors.  It is what the
throughput benchmark's closed-loop workers, the CI smoke job and the CLI
examples use; anything that can speak newline-delimited JSON (netcat
included) interoperates.

    with ServiceClient(host, port) as client:
        reply = client.query("alice", "mallory", delta=5)
        print(reply.density, reply.interval, reply.cached)

Opt-in retry: pass a :class:`RetryPolicy` and the retryable typed
errors — ``overloaded`` (the server shed the request) and ``stale``
(the server has not yet replicated up to the query's ``min_epoch``) —
are retried with jittered exponential backoff, never sleeping less than
the server's ``retry_after_ms`` hint.  The cluster coordinator's router
and health monitor reuse the same policy for their own backoff
arithmetic.
"""

from __future__ import annotations

import itertools
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.service.protocol import (
    AppendReply,
    AppendRequest,
    BatchReply,
    BatchRequest,
    DrainRequest,
    MetricsRequest,
    OverloadedError,
    PatternsReply,
    PatternsRequest,
    PingRequest,
    ProtocolError,
    QueryReply,
    QueryRequest,
    Reply,
    Request,
    ScanReply,
    ScanRequest,
    StaleEpochError,
    TopKReply,
    TopKRequest,
    encode,
    parse_reply,
    raise_for_error,
    request_payload,
)
from repro.temporal.edge import NodeId, Timestamp


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for retryable errors
    (``overloaded`` and ``stale``).

    The delay before retry attempt ``attempt`` (0-based) is::

        max(base_delay * multiplier**attempt  (capped at max_delay),
            retry_after_ms / 1000)            * (1 ± jitter)

    so the server's ``retry_after_ms`` congestion hint is always
    honoured as a floor, the exponential curve dominates once the hint
    is stale, and the jitter decorrelates clients that were shed by the
    same overload spike.

    Args:
        max_attempts: total tries (the first attempt included); at least 1.
        base_delay: first backoff step in seconds.
        multiplier: exponential growth factor per attempt.
        max_delay: cap on the exponential term (the ``retry_after_ms``
            floor may still exceed it).
        jitter: symmetric relative jitter (0.2 = ±20%).
        rng: injectable randomness source (tests pin it).
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.2
    rng: random.Random = field(
        default_factory=random.Random, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay <= 0 or self.max_delay <= 0:
            raise ValueError("delays must be positive seconds")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay_for(self, attempt: int, retry_after_ms: int | None = None) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based).

        Jitter swings the exponential term symmetrically; the server's
        ``retry_after_ms`` hint is then applied as a *hard floor*, so a
        jittered delay can never undercut what the server asked for —
        a shedding server is never hammered earlier than it allowed.
        """
        backoff = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        swing = self.jitter * (2.0 * self.rng.random() - 1.0)
        delay = backoff * (1.0 + swing)
        if retry_after_ms is not None:
            delay = max(delay, retry_after_ms / 1000.0)
        return delay


class ServiceClient:
    """A blocking client for one service connection.

    Args:
        host / port: the service address.
        timeout: socket timeout (seconds) for connect and replies.
        retry: opt-in :class:`RetryPolicy` for typed ``overloaded`` and
            ``stale`` errors (``None`` — the default — surfaces them
            immediately).
        sleep: injectable sleep function (tests use a fake clock).

    Raises (from the request methods):
        OverloadedError: the server shed the request (after the retry
            budget, when a policy is configured).
        DeadlineExceededError: the server timed the request out.
        StaleEpochError: the server is behind the query's ``min_epoch``
            (after the retry budget, when a policy is configured).
        ProtocolError: the request was rejected as invalid.
        RemoteServiceError: the server reported an internal failure.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)
        self._retry = retry
        self._sleep = sleep

    # ------------------------------------------------------------------
    def request(self, request: Request) -> Reply:
        """Send one request and block for its reply (errors raised typed).

        With a :class:`RetryPolicy` configured, ``overloaded`` and
        ``stale`` replies are retried (same request, same id) with
        jittered backoff honouring the server's ``retry_after_ms``
        hint; any other error raises immediately.
        """
        attempts = self._retry.max_attempts if self._retry is not None else 1
        for attempt in range(attempts):
            try:
                return self._request_once(request)
            except (OverloadedError, StaleEpochError) as exc:
                if attempt + 1 >= attempts:
                    raise
                assert self._retry is not None
                self._sleep(self._retry.delay_for(attempt, exc.retry_after_ms))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(self, request: Request) -> Reply:
        self._file.write(encode(request_payload(request)))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ProtocolError("connection closed by server")
        return raise_for_error(parse_reply(line))

    def query(
        self,
        source: NodeId,
        sink: NodeId,
        delta: int,
        *,
        algorithm: str | None = None,
        kernel: str | None = None,
        transform: str | None = None,
        timeout: float | None = None,
        min_epoch: int | None = None,
    ) -> QueryReply:
        """Answer one delta-BFlow query."""
        reply = self.request(
            QueryRequest(
                id=f"q{next(self._ids)}",
                source=source,
                sink=sink,
                delta=delta,
                algorithm=algorithm,
                kernel=kernel,
                transform=transform,
                timeout=timeout,
                min_epoch=min_epoch,
            )
        )
        assert isinstance(reply, QueryReply)
        return reply

    def batch(
        self,
        queries: Iterable[tuple[NodeId, NodeId, int]],
        *,
        plan: str = "shared",
        timeout: float | None = None,
        min_epoch: int | None = None,
    ) -> BatchReply:
        """Answer a batch of ``(source, sink, delta)`` queries in one
        round trip; ``plan="shared"`` lets the server's planner share one
        window skeleton and the Maxflow memo per (source, sink) group."""
        reply = self.request(
            BatchRequest(
                id=f"b{next(self._ids)}",
                queries=tuple(tuple(query) for query in queries),
                plan=plan,
                timeout=timeout,
                min_epoch=min_epoch,
            )
        )
        assert isinstance(reply, BatchReply)
        return reply

    def topk(
        self,
        pairs: Iterable[tuple[NodeId, NodeId]],
        delta: int,
        *,
        k: int = 10,
        timeout: float | None = None,
        min_epoch: int | None = None,
    ) -> TopKReply:
        """Rank the k densest bursts among candidate (source, sink) pairs."""
        reply = self.request(
            TopKRequest(
                id=f"t{next(self._ids)}",
                pairs=tuple(tuple(pair) for pair in pairs),
                delta=delta,
                k=k,
                timeout=timeout,
                min_epoch=min_epoch,
            )
        )
        assert isinstance(reply, TopKReply)
        return reply

    def append(
        self, edges: Iterable[tuple[NodeId, NodeId, Timestamp, float]]
    ) -> AppendReply:
        """Stream new edges into the served network."""
        reply = self.request(
            AppendRequest(id=f"a{next(self._ids)}", edges=tuple(edges))
        )
        assert isinstance(reply, AppendReply)
        return reply

    def scan(
        self,
        delta: int,
        *,
        pairs: Iterable[tuple[NodeId, NodeId]] | None = None,
        top: int | None = None,
        min_volume: float | None = None,
        persist: str = "flagged",
        timeout: float | None = None,
        min_epoch: int | None = None,
    ) -> ScanReply:
        """Run one mining-funnel scan on the server's pattern store."""
        reply = self.request(
            ScanRequest(
                id=f"s{next(self._ids)}",
                delta=delta,
                pairs=(
                    tuple(tuple(pair) for pair in pairs)
                    if pairs is not None
                    else None
                ),
                top=top,
                min_volume=min_volume,
                persist=persist,
                timeout=timeout,
                min_epoch=min_epoch,
            )
        )
        assert isinstance(reply, ScanReply)
        return reply

    def patterns(
        self,
        *,
        source: NodeId | None = None,
        sink: NodeId | None = None,
        since: Timestamp | None = None,
        until: Timestamp | None = None,
        min_density: float | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Query the server's durable pattern store (dict records)."""
        reply = self.request(
            PatternsRequest(
                id=f"g{next(self._ids)}",
                source=source,
                sink=sink,
                since=since,
                until=until,
                min_density=min_density,
                limit=limit,
            )
        )
        assert isinstance(reply, PatternsReply)
        return [dict(record) for record in reply.patterns]

    def metrics(self) -> dict[str, Any]:
        """The server's metrics snapshot."""
        reply = self.request(MetricsRequest(id=f"m{next(self._ids)}"))
        return dict(reply.snapshot)  # type: ignore[union-attr]

    def ping(self) -> int:
        """Liveness probe; returns the current network epoch."""
        reply = self.request(PingRequest(id=f"p{next(self._ids)}"))
        return reply.epoch  # type: ignore[union-attr]

    def drain(self) -> int:
        """Ask the server to drain; returns its in-flight request count."""
        reply = self.request(DrainRequest(id=f"d{next(self._ids)}"))
        return reply.inflight  # type: ignore[union-attr]

    def close(self) -> None:
        """Close the connection."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
