"""Versioned JSON wire protocol of the delta-BFlow query service.

One request or reply per message.  Over raw TCP, messages are
newline-delimited JSON objects (NDJSON); over HTTP, the same objects
travel as request/response bodies (see :mod:`repro.service.server` for
the endpoint map).  Every message carries the protocol version ``v`` and
an opaque correlation ``id`` that the server echoes back, so clients may
pipeline requests on one connection.

Requests (``op`` selects the type)::

    {"v": 1, "id": "q1", "op": "query", "source": "s", "sink": "t",
     "delta": 3, "algorithm": "bfq*", "kernel": "persistent",
     "transform": "skeleton", "timeout": 5.0}
    {"v": 1, "id": "b1", "op": "batch", "plan": "shared",
     "queries": [["s", "t", 3], ["s", "t", 4], ...]}
    {"v": 1, "id": "k1", "op": "topk", "delta": 3, "k": 10,
     "pairs": [["s", "t"], ["s", "u"], ...]}
    {"v": 1, "id": "a1", "op": "append",
     "edges": [["s", "t", 7, 2.5], ...]}
    {"v": 1, "id": "s1", "op": "scan", "delta": 3, "top": 8,
     "persist": "flagged"}
    {"v": 1, "id": "g1", "op": "patterns", "source": "s",
     "min_density": 1.0, "limit": 50}
    {"v": 1, "id": "m1", "op": "metrics"}
    {"v": 1, "id": "p1", "op": "ping"}
    {"v": 1, "id": "d1", "op": "drain"}

``op: "batch"`` answers many delta-BFlow queries in one round trip;
``plan: "shared"`` (the default) routes the batch through the multi-query
planner — queries grouped by (source, sink) share one window skeleton and
a per-epoch candidate-window Maxflow memo — while ``"independent"``
solves each entry on its own.  ``op: "topk"`` is the first-class top-k
densest-bursts query over a candidate (source, sink) list.  Both carry
the same ``min_epoch`` fence as single queries.

A query may carry ``min_epoch``, the read-your-writes fence: a server
whose epoch is behind it answers with a typed ``stale`` error (carrying
its current ``epoch``) instead of a possibly stale result.  The cluster
coordinator (:mod:`repro.cluster`) stamps every routed query with the
cluster's committed epoch, and per-replica ``AppendReply.epoch`` values
double as the replication acknowledgements.

Replies are either ``{"ok": true, ...}`` payloads or typed errors
``{"ok": false, "error": {"kind": ..., "message": ...}}``.  The error
kinds are a closed set (:data:`ERROR_KINDS`); ``"overloaded"`` is the
load-shedding response required by admission control and carries a
``retry_after_ms`` hint.

Densities and flow values round-trip exactly: Python's ``json`` emits
``repr``-exact doubles, so a served answer compares equal (``==``) to the
in-process :func:`repro.core.engine.find_bursting_flow` answer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.exceptions import ReproError
from repro.temporal.edge import NodeId, Timestamp

#: The one protocol version this build speaks.
PROTOCOL_VERSION = 1

#: Closed set of typed error kinds.
ERROR_OVERLOADED = "overloaded"
ERROR_TIMEOUT = "timeout"
ERROR_INVALID = "invalid"
ERROR_UNSUPPORTED_VERSION = "unsupported_version"
ERROR_INTERNAL = "internal"
#: The server's network epoch is behind the ``min_epoch`` the query
#: demanded (read-your-writes).  Retryable: the cluster coordinator
#: re-routes, a direct client waits for replication to catch up.
ERROR_STALE = "stale"
ERROR_KINDS = frozenset(
    {
        ERROR_OVERLOADED,
        ERROR_TIMEOUT,
        ERROR_INVALID,
        ERROR_UNSUPPORTED_VERSION,
        ERROR_INTERNAL,
        ERROR_STALE,
    }
)


class ProtocolError(ReproError):
    """A malformed or unsupported message.

    Attributes:
        kind: the typed error kind to report back
            (``"invalid"`` or ``"unsupported_version"``).
    """

    def __init__(self, message: str, *, kind: str = ERROR_INVALID) -> None:
        super().__init__(message)
        self.kind = kind


class OverloadedError(ReproError):
    """The server shed this request (admission queue full)."""

    def __init__(self, message: str, *, retry_after_ms: int = 100) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class DeadlineExceededError(ReproError):
    """The request's deadline expired before an answer was produced."""


class RemoteServiceError(ReproError):
    """Client-side surfacing of a server-reported ``internal`` error."""


class StaleEpochError(ReproError):
    """The replica's epoch is behind the query's ``min_epoch``.

    Attributes:
        epoch: the replica's current epoch (``-1`` when unknown).
        retry_after_ms: the server's suggested wait before retrying
            (``None`` when the reply carried no hint).
    """

    def __init__(
        self,
        message: str,
        *,
        epoch: int = -1,
        retry_after_ms: int | None = None,
    ) -> None:
        super().__init__(message)
        self.epoch = epoch
        self.retry_after_ms = retry_after_ms


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class QueryRequest:
    """One delta-BFlow query: ``op: "query"``.

    ``min_epoch`` is the read-your-writes fence: a server whose network
    epoch is below it answers with a typed ``stale`` error instead of a
    potentially stale result.  The cluster coordinator stamps it with the
    cluster's committed epoch before routing to a replica.
    """

    id: str
    source: NodeId
    sink: NodeId
    delta: int
    algorithm: str | None = None
    kernel: str | None = None
    transform: str | None = None
    timeout: float | None = None
    min_epoch: int | None = None

    op = "query"


#: Wire-level ``plan`` choices for ``op: "batch"``.
BATCH_PLANS = ("shared", "independent")


@dataclass(frozen=True, slots=True)
class BatchRequest:
    """Many delta-BFlow queries in one round trip: ``op: "batch"``.

    ``queries`` are ``(source, sink, delta)`` triples; the reply's
    ``results`` align with them.  ``plan="shared"`` (default) amortises
    the batch through the planner; ``"independent"`` solves each entry on
    its own.  ``min_epoch`` fences the whole batch at one epoch.
    """

    id: str
    queries: tuple[tuple[NodeId, NodeId, int], ...]
    plan: str = "shared"
    timeout: float | None = None
    min_epoch: int | None = None

    op = "batch"


@dataclass(frozen=True, slots=True)
class TopKRequest:
    """Top-k densest bursts over candidate pairs: ``op: "topk"``.

    Each ``(source, sink)`` pair contributes its delta-BFlow answer;
    entries are ranked by the canonical tie-break (density desc, earlier
    ``tau_s``, shorter interval, input order) and the best ``k`` return.
    """

    id: str
    pairs: tuple[tuple[NodeId, NodeId], ...]
    delta: int
    k: int = 10
    timeout: float | None = None
    min_epoch: int | None = None

    op = "topk"


@dataclass(frozen=True, slots=True)
class AppendRequest:
    """A streaming edge append: ``op: "append"``."""

    id: str
    edges: tuple[tuple[NodeId, NodeId, Timestamp, float], ...]

    op = "append"


#: Wire-level ``persist`` choices for ``op: "scan"`` (mirrors
#: :data:`repro.mining.PERSIST_MODES`).
SCAN_PERSIST_MODES = ("flagged", "all")


@dataclass(frozen=True, slots=True)
class ScanRequest:
    """One mining-funnel scan: ``op: "scan"``.

    Runs the server's :class:`repro.mining.MiningPipeline` — pre-filter,
    confirm through the planner, persist flagged patterns to the durable
    store.  ``pairs`` pins the candidate set explicitly; omitted, the
    pre-filter ranks candidates itself (``top`` emitters x ``top``
    collectors above ``min_volume``).  ``persist="all"`` keeps every
    positive-density confirmation instead of only the flagged outliers.
    """

    id: str
    delta: int
    pairs: tuple[tuple[NodeId, NodeId], ...] | None = None
    top: int | None = None
    min_volume: float | None = None
    persist: str = "flagged"
    timeout: float | None = None
    min_epoch: int | None = None

    op = "scan"


@dataclass(frozen=True, slots=True)
class PatternsRequest:
    """A pattern-store query: ``op: "patterns"``.

    All filters are optional and conjunctive; ``since``/``until`` select
    patterns whose bursting interval intersects ``[since, until]``.
    """

    id: str
    source: NodeId | None = None
    sink: NodeId | None = None
    since: Timestamp | None = None
    until: Timestamp | None = None
    min_density: float | None = None
    limit: int | None = None

    op = "patterns"


@dataclass(frozen=True, slots=True)
class MetricsRequest:
    """A metrics-snapshot request: ``op: "metrics"``."""

    id: str

    op = "metrics"


@dataclass(frozen=True, slots=True)
class PingRequest:
    """A liveness/epoch probe: ``op: "ping"``."""

    id: str

    op = "ping"


@dataclass(frozen=True, slots=True)
class DrainRequest:
    """Begin a graceful drain: ``op: "drain"``.

    The server stops admitting new queries/appends (they get typed
    ``overloaded`` errors) while in-flight work finishes; ``/healthz``
    reports ``draining`` so load balancers take the instance out of
    rotation.  The cluster supervisor sends this before SIGTERM.
    """

    id: str

    op = "drain"


Request = (
    QueryRequest
    | BatchRequest
    | TopKRequest
    | AppendRequest
    | ScanRequest
    | PatternsRequest
    | MetricsRequest
    | PingRequest
    | DrainRequest
)


# ----------------------------------------------------------------------
# Replies
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class QueryReply:
    """A served delta-BFlow answer."""

    id: str
    density: float
    interval: tuple[Timestamp, Timestamp] | None
    flow_value: float
    cached: bool
    epoch: int
    elapsed_ms: float

    ok = True

    @property
    def found(self) -> bool:
        """Whether a positive-density bursting flow exists."""
        return self.interval is not None and self.density > 0


@dataclass(frozen=True, slots=True)
class BatchAnswer:
    """One entry of a :class:`BatchReply` (aligned with the request)."""

    density: float
    interval: tuple[Timestamp, Timestamp] | None
    flow_value: float
    cached: bool


@dataclass(frozen=True, slots=True)
class BatchReply:
    """Served answers for one batch, plus what the planner amortised."""

    id: str
    results: tuple[BatchAnswer, ...]
    epoch: int
    elapsed_ms: float
    planner: Mapping[str, Any]

    ok = True


@dataclass(frozen=True, slots=True)
class TopKBurst:
    """One ranked entry of a :class:`TopKReply`."""

    source: NodeId
    sink: NodeId
    delta: int
    density: float
    interval: tuple[Timestamp, Timestamp]
    flow_value: float


@dataclass(frozen=True, slots=True)
class TopKReply:
    """The k densest bursts over the requested candidate pairs."""

    id: str
    entries: tuple[TopKBurst, ...]
    epoch: int
    elapsed_ms: float
    cached: bool

    ok = True


@dataclass(frozen=True, slots=True)
class AppendReply:
    """Acknowledgement of a streaming append."""

    id: str
    appended: int
    epoch: int
    invalidated: int

    ok = True


@dataclass(frozen=True, slots=True)
class ScanReply:
    """The outcome of one mining-funnel scan."""

    id: str
    new_ids: tuple[str, ...]
    deduped: int
    funnel: Mapping[str, Any]
    epoch: int
    elapsed_ms: float

    ok = True

    @property
    def new(self) -> int:
        """How many previously-unseen patterns this scan persisted."""
        return len(self.new_ids)


@dataclass(frozen=True, slots=True)
class PatternsReply:
    """Matching pattern records (dict form, density-descending)."""

    id: str
    patterns: tuple[Mapping[str, Any], ...]

    ok = True


@dataclass(frozen=True, slots=True)
class MetricsReply:
    """A point-in-time metrics snapshot."""

    id: str
    snapshot: Mapping[str, Any]

    ok = True


@dataclass(frozen=True, slots=True)
class PongReply:
    """Liveness acknowledgement with the current network epoch."""

    id: str
    epoch: int

    ok = True


@dataclass(frozen=True, slots=True)
class DrainReply:
    """Acknowledgement that the server entered (or is in) drain mode."""

    id: str
    draining: bool
    inflight: int

    ok = True


@dataclass(frozen=True, slots=True)
class ErrorReply:
    """A typed failure (:data:`ERROR_KINDS`)."""

    id: str
    kind: str
    message: str
    retry_after_ms: int | None = None
    epoch: int | None = None

    ok = False


Reply = (
    QueryReply
    | BatchReply
    | TopKReply
    | AppendReply
    | ScanReply
    | PatternsReply
    | MetricsReply
    | PongReply
    | DrainReply
    | ErrorReply
)


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def _require(payload: Mapping[str, Any], key: str) -> Any:
    try:
        return payload[key]
    except KeyError:
        raise ProtocolError(f"missing required field {key!r}") from None


def _check_node(value: Any, key: str) -> NodeId:
    if not isinstance(value, (str, int)) or isinstance(value, bool):
        raise ProtocolError(
            f"{key} must be a string or integer node id, got {value!r}"
        )
    return value


def _check_delta(value: Any, key: str = "delta") -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ProtocolError(f"{key} must be a positive int, got {value!r}")
    return value


def _parse_timeout(payload: Mapping[str, Any]) -> float | None:
    timeout = payload.get("timeout")
    if timeout is None:
        return None
    if not isinstance(timeout, (int, float)) or isinstance(timeout, bool) or timeout <= 0:
        raise ProtocolError(
            f"timeout must be a positive number of seconds, got {timeout!r}"
        )
    return float(timeout)


def _parse_min_epoch(payload: Mapping[str, Any]) -> int | None:
    min_epoch = payload.get("min_epoch")
    if min_epoch is not None and (
        not isinstance(min_epoch, int)
        or isinstance(min_epoch, bool)
        or min_epoch < 0
    ):
        raise ProtocolError(
            f"min_epoch must be a non-negative int, got {min_epoch!r}"
        )
    return min_epoch


def parse_request(raw: bytes | str | Mapping[str, Any]) -> Request:
    """Decode one request message (bytes/str line or a parsed mapping).

    Raises:
        ProtocolError: malformed JSON, wrong version, unknown op, bad
            field types — with ``kind`` set for the typed error reply.
    """
    if isinstance(raw, (bytes, bytearray, str)):
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"malformed JSON: {exc}") from None
    else:
        payload = raw
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"request must be a JSON object, got {payload!r}")

    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this server speaks v{PROTOCOL_VERSION})",
            kind=ERROR_UNSUPPORTED_VERSION,
        )
    request_id = payload.get("id", "")
    if not isinstance(request_id, str):
        raise ProtocolError(f"id must be a string, got {request_id!r}")
    op = _require(payload, "op")

    if op == "query":
        delta = _check_delta(_require(payload, "delta"))
        algorithm = payload.get("algorithm")
        if algorithm is not None and not isinstance(algorithm, str):
            raise ProtocolError(f"algorithm must be a string, got {algorithm!r}")
        kernel = payload.get("kernel")
        if kernel is not None and not isinstance(kernel, str):
            raise ProtocolError(f"kernel must be a string, got {kernel!r}")
        transform = payload.get("transform")
        if transform is not None and not isinstance(transform, str):
            raise ProtocolError(f"transform must be a string, got {transform!r}")
        return QueryRequest(
            id=request_id,
            source=_check_node(_require(payload, "source"), "source"),
            sink=_check_node(_require(payload, "sink"), "sink"),
            delta=delta,
            algorithm=algorithm,
            kernel=kernel,
            transform=transform,
            timeout=_parse_timeout(payload),
            min_epoch=_parse_min_epoch(payload),
        )
    if op == "batch":
        raw_queries = _require(payload, "queries")
        if not isinstance(raw_queries, Sequence) or isinstance(
            raw_queries, (str, bytes)
        ):
            raise ProtocolError(f"queries must be an array, got {raw_queries!r}")
        if not raw_queries:
            raise ProtocolError("queries must not be empty")
        triples = []
        for position, item in enumerate(raw_queries):
            if not isinstance(item, Sequence) or len(item) != 3:
                raise ProtocolError(
                    f"queries[{position}] must be [source, sink, delta], "
                    f"got {item!r}"
                )
            source, sink, delta = item
            triples.append(
                (
                    _check_node(source, f"queries[{position}].source"),
                    _check_node(sink, f"queries[{position}].sink"),
                    _check_delta(delta, f"queries[{position}].delta"),
                )
            )
        plan = payload.get("plan", "shared")
        if plan not in BATCH_PLANS:
            raise ProtocolError(
                f"plan must be one of {', '.join(BATCH_PLANS)}, got {plan!r}"
            )
        return BatchRequest(
            id=request_id,
            queries=tuple(triples),
            plan=plan,
            timeout=_parse_timeout(payload),
            min_epoch=_parse_min_epoch(payload),
        )
    if op == "topk":
        raw_pairs = _require(payload, "pairs")
        if not isinstance(raw_pairs, Sequence) or isinstance(
            raw_pairs, (str, bytes)
        ):
            raise ProtocolError(f"pairs must be an array, got {raw_pairs!r}")
        if not raw_pairs:
            raise ProtocolError("pairs must not be empty")
        pairs = []
        for position, item in enumerate(raw_pairs):
            if not isinstance(item, Sequence) or len(item) != 2:
                raise ProtocolError(
                    f"pairs[{position}] must be [source, sink], got {item!r}"
                )
            source, sink = item
            pairs.append(
                (
                    _check_node(source, f"pairs[{position}].source"),
                    _check_node(sink, f"pairs[{position}].sink"),
                )
            )
        k = payload.get("k", 10)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ProtocolError(f"k must be a positive int, got {k!r}")
        return TopKRequest(
            id=request_id,
            pairs=tuple(pairs),
            delta=_check_delta(_require(payload, "delta")),
            k=k,
            timeout=_parse_timeout(payload),
            min_epoch=_parse_min_epoch(payload),
        )
    if op == "append":
        raw_edges = _require(payload, "edges")
        if not isinstance(raw_edges, Sequence) or isinstance(raw_edges, (str, bytes)):
            raise ProtocolError(f"edges must be an array, got {raw_edges!r}")
        edges = []
        for position, item in enumerate(raw_edges):
            if not isinstance(item, Sequence) or len(item) != 4:
                raise ProtocolError(
                    f"edges[{position}] must be [u, v, tau, capacity], got {item!r}"
                )
            u, v, tau, capacity = item
            if not isinstance(tau, int) or isinstance(tau, bool):
                raise ProtocolError(
                    f"edges[{position}] timestamp must be an int, got {tau!r}"
                )
            if not isinstance(capacity, (int, float)) or isinstance(capacity, bool):
                raise ProtocolError(
                    f"edges[{position}] capacity must be a number, got {capacity!r}"
                )
            edges.append(
                (
                    _check_node(u, f"edges[{position}].u"),
                    _check_node(v, f"edges[{position}].v"),
                    tau,
                    float(capacity),
                )
            )
        return AppendRequest(id=request_id, edges=tuple(edges))
    if op == "scan":
        raw_pairs = payload.get("pairs")
        pairs: tuple[tuple[NodeId, NodeId], ...] | None = None
        if raw_pairs is not None:
            if not isinstance(raw_pairs, Sequence) or isinstance(
                raw_pairs, (str, bytes)
            ):
                raise ProtocolError(f"pairs must be an array, got {raw_pairs!r}")
            if not raw_pairs:
                raise ProtocolError("pairs must not be empty when given")
            parsed = []
            for position, item in enumerate(raw_pairs):
                if not isinstance(item, Sequence) or len(item) != 2:
                    raise ProtocolError(
                        f"pairs[{position}] must be [source, sink], got {item!r}"
                    )
                source, sink = item
                parsed.append(
                    (
                        _check_node(source, f"pairs[{position}].source"),
                        _check_node(sink, f"pairs[{position}].sink"),
                    )
                )
            pairs = tuple(parsed)
        top = payload.get("top")
        if top is not None and (
            not isinstance(top, int) or isinstance(top, bool) or top < 1
        ):
            raise ProtocolError(f"top must be a positive int, got {top!r}")
        min_volume = payload.get("min_volume")
        if min_volume is not None:
            if not isinstance(min_volume, (int, float)) or isinstance(
                min_volume, bool
            ) or min_volume < 0:
                raise ProtocolError(
                    f"min_volume must be a non-negative number, got {min_volume!r}"
                )
            min_volume = float(min_volume)
        persist = payload.get("persist", "flagged")
        if persist not in SCAN_PERSIST_MODES:
            raise ProtocolError(
                f"persist must be one of {', '.join(SCAN_PERSIST_MODES)}, "
                f"got {persist!r}"
            )
        return ScanRequest(
            id=request_id,
            delta=_check_delta(_require(payload, "delta")),
            pairs=pairs,
            top=top,
            min_volume=min_volume,
            persist=persist,
            timeout=_parse_timeout(payload),
            min_epoch=_parse_min_epoch(payload),
        )
    if op == "patterns":
        source = payload.get("source")
        if source is not None:
            source = _check_node(source, "source")
        sink = payload.get("sink")
        if sink is not None:
            sink = _check_node(sink, "sink")
        since = payload.get("since")
        if since is not None and (
            not isinstance(since, int) or isinstance(since, bool)
        ):
            raise ProtocolError(f"since must be an int timestamp, got {since!r}")
        until = payload.get("until")
        if until is not None and (
            not isinstance(until, int) or isinstance(until, bool)
        ):
            raise ProtocolError(f"until must be an int timestamp, got {until!r}")
        min_density = payload.get("min_density")
        if min_density is not None:
            if not isinstance(min_density, (int, float)) or isinstance(
                min_density, bool
            ):
                raise ProtocolError(
                    f"min_density must be a number, got {min_density!r}"
                )
            min_density = float(min_density)
        limit = payload.get("limit")
        if limit is not None and (
            not isinstance(limit, int) or isinstance(limit, bool) or limit < 1
        ):
            raise ProtocolError(f"limit must be a positive int, got {limit!r}")
        return PatternsRequest(
            id=request_id,
            source=source,
            sink=sink,
            since=since,
            until=until,
            min_density=min_density,
            limit=limit,
        )
    if op == "metrics":
        return MetricsRequest(id=request_id)
    if op == "ping":
        return PingRequest(id=request_id)
    if op == "drain":
        return DrainRequest(id=request_id)
    raise ProtocolError(f"unknown op {op!r}")


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def request_payload(request: Request) -> dict[str, Any]:
    """The JSON-able dict form of a request (client side)."""
    payload: dict[str, Any] = {"v": PROTOCOL_VERSION, "id": request.id, "op": request.op}
    if isinstance(request, QueryRequest):
        payload.update(source=request.source, sink=request.sink, delta=request.delta)
        if request.algorithm is not None:
            payload["algorithm"] = request.algorithm
        if request.kernel is not None:
            payload["kernel"] = request.kernel
        if request.transform is not None:
            payload["transform"] = request.transform
        if request.timeout is not None:
            payload["timeout"] = request.timeout
        if request.min_epoch is not None:
            payload["min_epoch"] = request.min_epoch
    elif isinstance(request, BatchRequest):
        payload["queries"] = [list(triple) for triple in request.queries]
        payload["plan"] = request.plan
        if request.timeout is not None:
            payload["timeout"] = request.timeout
        if request.min_epoch is not None:
            payload["min_epoch"] = request.min_epoch
    elif isinstance(request, TopKRequest):
        payload["pairs"] = [list(pair) for pair in request.pairs]
        payload["delta"] = request.delta
        payload["k"] = request.k
        if request.timeout is not None:
            payload["timeout"] = request.timeout
        if request.min_epoch is not None:
            payload["min_epoch"] = request.min_epoch
    elif isinstance(request, AppendRequest):
        payload["edges"] = [list(edge) for edge in request.edges]
    elif isinstance(request, ScanRequest):
        payload["delta"] = request.delta
        if request.pairs is not None:
            payload["pairs"] = [list(pair) for pair in request.pairs]
        if request.top is not None:
            payload["top"] = request.top
        if request.min_volume is not None:
            payload["min_volume"] = request.min_volume
        payload["persist"] = request.persist
        if request.timeout is not None:
            payload["timeout"] = request.timeout
        if request.min_epoch is not None:
            payload["min_epoch"] = request.min_epoch
    elif isinstance(request, PatternsRequest):
        for key in ("source", "sink", "since", "until", "min_density", "limit"):
            value = getattr(request, key)
            if value is not None:
                payload[key] = value
    return payload


def reply_payload(reply: Reply) -> dict[str, Any]:
    """The JSON-able dict form of a reply (server side)."""
    payload: dict[str, Any] = {"v": PROTOCOL_VERSION, "id": reply.id, "ok": reply.ok}
    if isinstance(reply, QueryReply):
        payload["result"] = {
            "density": reply.density,
            "interval": list(reply.interval) if reply.interval is not None else None,
            "flow_value": reply.flow_value,
            "cached": reply.cached,
            "epoch": reply.epoch,
            "elapsed_ms": reply.elapsed_ms,
        }
    elif isinstance(reply, BatchReply):
        payload["result"] = {
            "results": [
                {
                    "density": entry.density,
                    "interval": (
                        list(entry.interval) if entry.interval is not None else None
                    ),
                    "flow_value": entry.flow_value,
                    "cached": entry.cached,
                }
                for entry in reply.results
            ],
            "epoch": reply.epoch,
            "elapsed_ms": reply.elapsed_ms,
            "planner": dict(reply.planner),
        }
    elif isinstance(reply, TopKReply):
        payload["result"] = {
            "entries": [
                {
                    "source": entry.source,
                    "sink": entry.sink,
                    "delta": entry.delta,
                    "density": entry.density,
                    "interval": list(entry.interval),
                    "flow_value": entry.flow_value,
                }
                for entry in reply.entries
            ],
            "epoch": reply.epoch,
            "elapsed_ms": reply.elapsed_ms,
            "cached": reply.cached,
        }
    elif isinstance(reply, AppendReply):
        payload["result"] = {
            "appended": reply.appended,
            "epoch": reply.epoch,
            "invalidated": reply.invalidated,
        }
    elif isinstance(reply, ScanReply):
        payload["result"] = {
            "new_ids": list(reply.new_ids),
            "deduped": reply.deduped,
            "funnel": dict(reply.funnel),
            "epoch": reply.epoch,
            "elapsed_ms": reply.elapsed_ms,
        }
    elif isinstance(reply, PatternsReply):
        payload["result"] = {
            "patterns": [dict(record) for record in reply.patterns],
        }
    elif isinstance(reply, MetricsReply):
        payload["result"] = dict(reply.snapshot)
    elif isinstance(reply, PongReply):
        payload["result"] = {"epoch": reply.epoch}
    elif isinstance(reply, DrainReply):
        payload["result"] = {
            "draining": reply.draining,
            "inflight": reply.inflight,
        }
    elif isinstance(reply, ErrorReply):
        error: dict[str, Any] = {"kind": reply.kind, "message": reply.message}
        if reply.retry_after_ms is not None:
            error["retry_after_ms"] = reply.retry_after_ms
        if reply.epoch is not None:
            error["epoch"] = reply.epoch
        payload["error"] = error
    return payload


def encode(payload: Mapping[str, Any]) -> bytes:
    """Serialize one message as an NDJSON line (trailing newline included)."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def parse_reply(raw: bytes | str | Mapping[str, Any]) -> Reply:
    """Decode one reply message (client side).

    Raises:
        ProtocolError: malformed JSON or a reply shape this client does
            not understand.
    """
    if isinstance(raw, (bytes, bytearray, str)):
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"malformed JSON reply: {exc}") from None
    else:
        payload = raw
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"reply must be a JSON object, got {payload!r}")
    reply_id = payload.get("id", "")
    if payload.get("ok"):
        result = payload.get("result")
        if not isinstance(result, Mapping):
            raise ProtocolError(f"ok reply without result object: {payload!r}")
        if "results" in result:
            entries = result["results"]
            if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
                raise ProtocolError(f"batch reply results must be an array: {payload!r}")
            answers = []
            for entry in entries:
                if not isinstance(entry, Mapping) or "density" not in entry:
                    raise ProtocolError(f"malformed batch answer: {entry!r}")
                interval = entry.get("interval")
                answers.append(
                    BatchAnswer(
                        density=float(entry["density"]),
                        interval=tuple(interval) if interval is not None else None,
                        flow_value=float(entry["flow_value"]),
                        cached=bool(entry.get("cached", False)),
                    )
                )
            planner = result.get("planner")
            return BatchReply(
                id=reply_id,
                results=tuple(answers),
                epoch=int(result.get("epoch", 0)),
                elapsed_ms=float(result.get("elapsed_ms", 0.0)),
                planner=dict(planner) if isinstance(planner, Mapping) else {},
            )
        if "entries" in result:
            entries = result["entries"]
            if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
                raise ProtocolError(f"topk reply entries must be an array: {payload!r}")
            bursts = []
            for entry in entries:
                if not isinstance(entry, Mapping) or "density" not in entry:
                    raise ProtocolError(f"malformed topk entry: {entry!r}")
                bursts.append(
                    TopKBurst(
                        source=entry["source"],
                        sink=entry["sink"],
                        delta=int(entry["delta"]),
                        density=float(entry["density"]),
                        interval=tuple(entry["interval"]),
                        flow_value=float(entry["flow_value"]),
                    )
                )
            return TopKReply(
                id=reply_id,
                entries=tuple(bursts),
                epoch=int(result.get("epoch", 0)),
                elapsed_ms=float(result.get("elapsed_ms", 0.0)),
                cached=bool(result.get("cached", False)),
            )
        if "density" in result:
            interval = result.get("interval")
            return QueryReply(
                id=reply_id,
                density=float(result["density"]),
                interval=tuple(interval) if interval is not None else None,
                flow_value=float(result["flow_value"]),
                cached=bool(result.get("cached", False)),
                epoch=int(result.get("epoch", 0)),
                elapsed_ms=float(result.get("elapsed_ms", 0.0)),
            )
        if "appended" in result:
            return AppendReply(
                id=reply_id,
                appended=int(result["appended"]),
                epoch=int(result["epoch"]),
                invalidated=int(result.get("invalidated", 0)),
            )
        if "funnel" in result:
            new_ids = result.get("new_ids", [])
            if not isinstance(new_ids, Sequence) or isinstance(new_ids, (str, bytes)):
                raise ProtocolError(f"scan reply new_ids must be an array: {payload!r}")
            funnel = result.get("funnel")
            return ScanReply(
                id=reply_id,
                new_ids=tuple(str(pattern_id) for pattern_id in new_ids),
                deduped=int(result.get("deduped", 0)),
                funnel=dict(funnel) if isinstance(funnel, Mapping) else {},
                epoch=int(result.get("epoch", 0)),
                elapsed_ms=float(result.get("elapsed_ms", 0.0)),
            )
        if "patterns" in result:
            records = result["patterns"]
            if not isinstance(records, Sequence) or isinstance(records, (str, bytes)):
                raise ProtocolError(
                    f"patterns reply must carry an array: {payload!r}"
                )
            for record in records:
                if not isinstance(record, Mapping) or "pattern_id" not in record:
                    raise ProtocolError(f"malformed pattern record: {record!r}")
            return PatternsReply(
                id=reply_id,
                patterns=tuple(dict(record) for record in records),
            )
        if tuple(result) == ("epoch",):
            return PongReply(id=reply_id, epoch=int(result["epoch"]))
        if set(result) == {"draining", "inflight"}:
            return DrainReply(
                id=reply_id,
                draining=bool(result["draining"]),
                inflight=int(result.get("inflight", 0)),
            )
        return MetricsReply(id=reply_id, snapshot=dict(result))
    error = payload.get("error")
    if not isinstance(error, Mapping) or "kind" not in error:
        raise ProtocolError(f"error reply without typed error object: {payload!r}")
    return ErrorReply(
        id=reply_id,
        kind=str(error["kind"]),
        message=str(error.get("message", "")),
        retry_after_ms=error.get("retry_after_ms"),
        epoch=error.get("epoch"),
    )


def raise_for_error(reply: Reply) -> Reply:
    """Raise the matching typed exception for an :class:`ErrorReply`.

    Returns the reply unchanged when it is not an error, so the call can
    be chained: ``raise_for_error(parse_reply(line))``.
    """
    if not isinstance(reply, ErrorReply):
        return reply
    if reply.kind == ERROR_OVERLOADED:
        raise OverloadedError(
            reply.message, retry_after_ms=reply.retry_after_ms or 100
        )
    if reply.kind == ERROR_TIMEOUT:
        raise DeadlineExceededError(reply.message)
    if reply.kind == ERROR_STALE:
        raise StaleEpochError(
            reply.message,
            epoch=reply.epoch if reply.epoch is not None else -1,
            retry_after_ms=reply.retry_after_ms,
        )
    if reply.kind in (ERROR_INVALID, ERROR_UNSUPPORTED_VERSION):
        raise ProtocolError(reply.message, kind=reply.kind)
    raise RemoteServiceError(f"[{reply.kind}] {reply.message}")
