"""Epoch-keyed LRU+TTL result cache for served delta-BFlow answers.

Keys are ``(epoch, source, sink, delta, algorithm, kernel)`` where
``epoch`` is :attr:`repro.temporal.network.TemporalFlowNetwork.epoch` at
solve time.  Because every streaming append bumps the epoch, a stale
answer can never be served: entries computed against an older network
state simply stop matching.  :meth:`ResultCache.purge_epochs_below`
additionally evicts those dead entries eagerly (the server calls it on
every append), so capacity is not wasted carrying unreachable keys and
the invalidation count is observable.

Entries optionally expire after a TTL — useful when operators prefer
bounded staleness *visibility* (metrics) even though epoch keying already
guarantees correctness.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable, Hashable

#: A cached answer: (density, interval, flow_value).
CachedAnswer = tuple[float, tuple[int, int] | None, float]

CacheKey = tuple[Hashable, ...]


class ResultCache:
    """A bounded LRU cache with optional TTL and instrumentation.

    Args:
        capacity: maximum live entries; the least recently used entry is
            evicted when full.  Must be >= 1.
        ttl: seconds after which an entry expires, or ``None`` to keep
            entries until evicted/invalidated.
        clock: injectable monotonic clock (tests freeze it).
    """

    def __init__(
        self,
        capacity: int = 4096,
        *,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive seconds or None, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        # key -> (value, expires_at | None); insertion/access order = LRU.
        self._entries: "OrderedDict[CacheKey, tuple[Any, float | None]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Any | None:
        """The cached value, or ``None`` on miss/expiry (LRU-bumps hits)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        value, expires_at = entry
        if expires_at is not None and self._clock() >= expires_at:
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: CacheKey, value: Any) -> None:
        """Insert/overwrite an entry, evicting the LRU one when full."""
        expires_at = self._clock() + self.ttl if self.ttl is not None else None
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (value, expires_at)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def purge_epochs_below(self, epoch: int) -> int:
        """Drop every entry whose key epoch precedes ``epoch``.

        Epoch keying already makes those entries unreachable; purging
        reclaims their capacity immediately and counts them as
        invalidations.  Returns the number of dropped entries.
        """
        stale = [key for key in self._entries if key[0] < epoch]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self.invalidations += len(self._entries)
        self._entries.clear()

    def snapshot(self) -> dict[str, Any]:
        """JSON-able cache statistics."""
        total = self.hits + self.misses
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "ttl_seconds": self.ttl,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else None,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
        }
