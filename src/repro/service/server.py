"""The asyncio delta-BFlow query server.

:class:`BurstingFlowService` owns one live
:class:`~repro.temporal.network.TemporalFlowNetwork` and serves
versioned-JSON requests against it (see :mod:`repro.service.protocol`)
over two transports on the *same* listening port:

* **NDJSON over TCP** — one JSON object per line, pipelined replies in
  request order (the primary, lowest-overhead transport;
  :class:`repro.service.client.ServiceClient` speaks it);
* **HTTP/1.1** — ``POST /query``, ``POST /batch``, ``POST /topk``,
  ``POST /append`` (JSON request body), ``GET /metrics`` (snapshot),
  ``GET /healthz``.  The transport is sniffed from the first bytes of
  the connection.

The request path layers the three production concerns of this module's
package: the epoch-keyed :class:`~repro.service.cache.ResultCache`
(streaming appends bump the network epoch, so stale answers can never be
served), :class:`~repro.service.admission.AdmissionController` (bounded
in-flight work, absolute deadlines, typed ``overloaded`` shedding) and
:class:`~repro.service.metrics.ServiceMetrics` (counters plus latency
histograms, exposed via ``/metrics``).

Consistency model: queries take a shared (reader) lock, appends take the
exclusive (writer) lock.  The network epoch is therefore stable for the
whole of any query's execution, every answer is computed on — and cached
under — exactly one network state, and a served answer is always equal
to a fresh :func:`repro.core.engine.find_bursting_flow` on that state.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.parse
from contextlib import asynccontextmanager
from typing import Any, AsyncIterator

from repro.core.engine import (
    DEFAULT_ALGORITHM,
    KERNEL_ALGORITHMS,
    TRANSFORM_ALGORITHMS,
    get_algorithm,
)
from repro.core.query import BurstingFlowQuery
from repro.core.skeleton import DEFAULT_TRANSFORM, KNOWN_TRANSFORMS
from repro.exceptions import ReproError
from repro.flownet.algorithms.registry import ENGINE_KERNELS
from repro.service.admission import AdmissionController
from repro.service.cache import ResultCache
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    BATCH_PLANS,
    ERROR_INTERNAL,
    ERROR_INVALID,
    ERROR_OVERLOADED,
    ERROR_STALE,
    ERROR_TIMEOUT,
    AppendReply,
    AppendRequest,
    BatchAnswer,
    BatchReply,
    BatchRequest,
    DeadlineExceededError,
    DrainReply,
    DrainRequest,
    ErrorReply,
    MetricsReply,
    MetricsRequest,
    OverloadedError,
    PatternsReply,
    PatternsRequest,
    PingRequest,
    PongReply,
    ProtocolError,
    QueryReply,
    QueryRequest,
    Reply,
    Request,
    ScanReply,
    ScanRequest,
    TopKBurst,
    TopKReply,
    TopKRequest,
    encode,
    parse_request,
    reply_payload,
)
from repro.mining.pipeline import MiningPipeline
from repro.service.workers import InlineEngine, ProcessEnginePool
from repro.temporal.edge import TemporalEdge
from repro.temporal.network import TemporalFlowNetwork

#: Kernels the service accepts on the wire — derived from the solver
#: registry, the single source of truth for ``kernel=`` values.
KNOWN_KERNELS = frozenset(ENGINE_KERNELS)


def _reject_unknown_kernel(kernel: str) -> None:
    """Raise the typed ``invalid`` error listing the registry's kernels."""
    raise ReproError(
        f"unknown kernel {kernel!r}; known: {', '.join(ENGINE_KERNELS)}"
    )


class _ReadWriteLock:
    """Many concurrent readers (queries) or one writer (append)."""

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writing = False
        self._writers_waiting = 0

    @asynccontextmanager
    async def read(self) -> AsyncIterator[None]:
        async with self._cond:
            # Writer priority: an append waiting for the lock blocks new
            # queries, otherwise a steady query stream starves appends.
            while self._writing or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @asynccontextmanager
    async def write(self) -> AsyncIterator[None]:
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            async with self._cond:
                self._writing = False
                self._cond.notify_all()


class BurstingFlowService:
    """A concurrent delta-BFlow query service over one live network.

    Args:
        network: the temporal flow network to serve (appends mutate it).
        algorithm: default solution when requests do not name one.
        kernel: default maxflow kernel for the incremental solutions.
        processes: engine parallelism.  ``None`` or ``1`` solves on
            threads against the live network (:class:`InlineEngine`);
            ``>= 2`` (or ``0`` = cpu count) uses an epoch-aware process
            pool (:class:`ProcessEnginePool`).
        mp_context: start method for the process pool.
        cache_capacity / cache_ttl: result-cache sizing (TTL in seconds,
            ``None`` = no expiry; correctness never depends on the TTL —
            epoch keying already invalidates on append).
        max_pending: admission bound on in-flight requests.
        default_timeout / max_timeout: per-request deadline budget.
        replica_id: name this instance carries when serving as a cluster
            replica (surfaced in ``/healthz`` and the metrics snapshot);
            ``None`` for a standalone service.
        mining: a :class:`repro.mining.MiningPipeline` over the *same*
            network, enabling the ``scan``/``patterns`` wire ops (with a
            durable pattern store).  ``None`` (default) answers those
            ops with a typed ``invalid`` error.
    """

    def __init__(
        self,
        network: TemporalFlowNetwork,
        *,
        algorithm: str = DEFAULT_ALGORITHM,
        kernel: str | None = None,
        processes: int | None = None,
        mp_context: str | None = None,
        cache_capacity: int = 4096,
        cache_ttl: float | None = None,
        max_pending: int = 64,
        default_timeout: float = 30.0,
        max_timeout: float = 300.0,
        replica_id: str | None = None,
        mining: MiningPipeline | None = None,
    ) -> None:
        get_algorithm(algorithm)  # fail fast on unknown defaults
        if kernel is not None and kernel not in KNOWN_KERNELS:
            _reject_unknown_kernel(kernel)
        self.network = network
        self.algorithm = algorithm
        self.kernel = kernel
        self.metrics = ServiceMetrics()
        self.cache = ResultCache(cache_capacity, ttl=cache_ttl)
        self.admission = AdmissionController(
            max_pending=max_pending,
            default_timeout=default_timeout,
            max_timeout=max_timeout,
        )
        self._lock = _ReadWriteLock()
        if processes is None or processes == 1:
            self.engine: InlineEngine | ProcessEnginePool = InlineEngine(
                network, threads=2
            )
        else:
            self.engine = ProcessEnginePool(
                network,
                processes=processes,
                mp_context=mp_context,
                on_restart=self.metrics.observe_restart,
            )
        if mining is not None and mining.network is not network:
            raise ReproError(
                "the mining pipeline must mine the same network the "
                "service serves (appends would diverge otherwise)"
            )
        self.mining = mining
        self._scan_lock = asyncio.Lock()
        self.replica_id = replica_id
        self._draining = False
        # Build the lazy indexes before the first concurrent read.
        if network.num_edges:
            _ = network.timestamps
        self._server: asyncio.base_events.Server | None = None

    @property
    def draining(self) -> bool:
        """Whether a graceful drain is in progress."""
        return self._draining

    # ------------------------------------------------------------------
    # Programmatic entry points (the oracle backend and tests use these)
    # ------------------------------------------------------------------
    async def handle_request(self, request: Request) -> Reply:
        """Dispatch one parsed request to its handler."""
        self.metrics.count_request(request.op)
        if (
            isinstance(
                request,
                (
                    QueryRequest,
                    BatchRequest,
                    TopKRequest,
                    AppendRequest,
                    ScanRequest,
                ),
            )
            and self._draining
        ):
            reply: Reply = ErrorReply(
                request.id,
                ERROR_OVERLOADED,
                "server is draining",
                retry_after_ms=1000,
            )
        elif isinstance(request, QueryRequest):
            reply = await self._handle_query(request)
        elif isinstance(request, BatchRequest):
            reply = await self._handle_batch(request)
        elif isinstance(request, TopKRequest):
            reply = await self._handle_topk(request)
        elif isinstance(request, AppendRequest):
            reply = await self._handle_append(request)
        elif isinstance(request, ScanRequest):
            reply = await self._handle_scan(request)
        elif isinstance(request, PatternsRequest):
            reply = await self._handle_patterns(request)
        elif isinstance(request, MetricsRequest):
            reply = MetricsReply(id=request.id, snapshot=self.snapshot())
        elif isinstance(request, PingRequest):
            reply = PongReply(id=request.id, epoch=self.network.epoch)
        elif isinstance(request, DrainRequest):
            self._draining = True
            reply = DrainReply(
                id=request.id, draining=True, inflight=self.admission.inflight
            )
        else:  # pragma: no cover - parse_request is exhaustive
            reply = ErrorReply(request.id, ERROR_INVALID, "unknown request type")
        if isinstance(reply, ErrorReply):
            self.metrics.count_error(reply.kind)
        return reply

    async def handle_raw(self, line: bytes | str) -> bytes:
        """Full serve path for one wire message: parse → handle → encode."""
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.metrics.count_error(exc.kind)
            return encode(
                reply_payload(ErrorReply("", exc.kind, str(exc)))
            )
        reply = await self.handle_request(request)
        return encode(reply_payload(reply))

    def snapshot(self) -> dict[str, Any]:
        """The metrics snapshot, extended with cache and network facts."""
        snapshot = self.metrics.snapshot()
        snapshot["cache_detail"] = self.cache.snapshot()
        snapshot["network"] = {
            "epoch": self.network.epoch,
            "nodes": self.network.num_nodes,
            "edges": self.network.num_edges,
        }
        snapshot["admission"] = {
            "max_pending": self.admission.max_pending,
            "inflight": self.admission.inflight,
            "admitted_total": self.admission.admitted_total,
            "shed_total": self.admission.shed_total,
        }
        if self.replica_id is not None:
            snapshot["replica"] = self.replica_id
        if self.mining is not None:
            snapshot["mining"] = {
                "scans": self.mining.scans,
                "patterns": len(self.mining.store),
                "stats_rebuilds": self.mining.stats.rebuilds,
            }
        snapshot["draining"] = self._draining
        return snapshot

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _handle_query(self, request: QueryRequest) -> Reply:
        started = time.perf_counter()
        algorithm = (request.algorithm or self.algorithm).lower()
        kernel = request.kernel if request.kernel is not None else self.kernel
        transform = request.transform
        try:
            get_algorithm(algorithm)
            if kernel is not None:
                if kernel not in KNOWN_KERNELS:
                    _reject_unknown_kernel(kernel)
                if algorithm not in KERNEL_ALGORITHMS:
                    kernel = None  # baselines have no incremental state
            if transform is not None:
                transform = transform.lower()
                if transform not in KNOWN_TRANSFORMS:
                    raise ReproError(
                        f"unknown transform {transform!r}; "
                        f"known: {', '.join(KNOWN_TRANSFORMS)}"
                    )
                if algorithm not in TRANSFORM_ALGORITHMS:
                    transform = None  # baselines have no window transform
            elif algorithm in TRANSFORM_ALGORITHMS:
                # Resolve the default explicitly so the cache key always
                # carries the transform that actually ran — "bfq* with
                # skeleton" and "bfq* with object" must never collide.
                transform = DEFAULT_TRANSFORM
            query = BurstingFlowQuery(request.source, request.sink, request.delta)
        except ReproError as exc:
            return ErrorReply(request.id, ERROR_INVALID, str(exc))

        try:
            self.admission.admit()
        except OverloadedError as exc:
            return ErrorReply(
                request.id,
                ERROR_OVERLOADED,
                str(exc),
                retry_after_ms=exc.retry_after_ms,
            )
        self.metrics.set_queue_depth(self.admission.inflight)
        try:
            deadline = self.admission.deadline_for(request.timeout)
            async with self._lock.read():
                epoch = self.network.epoch
                if request.min_epoch is not None and epoch < request.min_epoch:
                    # Read-your-writes fence: this instance has not yet
                    # applied every append the client observed.
                    return ErrorReply(
                        request.id,
                        ERROR_STALE,
                        f"epoch {epoch} is behind required "
                        f"min_epoch {request.min_epoch}",
                        retry_after_ms=25,
                        epoch=epoch,
                    )
                key = (
                    epoch,
                    request.source,
                    request.sink,
                    request.delta,
                    algorithm,
                    kernel,
                    transform,
                )
                answer = self.cache.get(key)
                if answer is not None:
                    density, interval, flow_value = answer
                    elapsed = time.perf_counter() - started
                    self.metrics.observe_hit(elapsed)
                    return QueryReply(
                        id=request.id,
                        density=density,
                        interval=interval,
                        flow_value=flow_value,
                        cached=True,
                        epoch=epoch,
                        elapsed_ms=elapsed * 1000.0,
                    )
                self.metrics.observe_miss()
                try:
                    query.validate_against(self.network)
                    remaining = self.admission.remaining(deadline)
                    answer = await asyncio.wait_for(
                        self.engine.answer(
                            request.source,
                            request.sink,
                            request.delta,
                            algorithm,
                            kernel,
                            transform,
                        ),
                        timeout=remaining,
                    )
                except (asyncio.TimeoutError, DeadlineExceededError):
                    return ErrorReply(
                        request.id, ERROR_TIMEOUT, "request deadline exceeded"
                    )
                except ReproError as exc:
                    return ErrorReply(request.id, ERROR_INVALID, str(exc))
                except Exception as exc:  # noqa: BLE001 - report, don't crash
                    return ErrorReply(
                        request.id,
                        ERROR_INTERNAL,
                        f"{type(exc).__name__}: {exc}",
                    )
                # Engines return (density, interval, flow_value) plus an
                # optional trailing phase-seconds dict; unpack defensively
                # so a custom engine backend without phases still works.
                density, interval, flow_value = answer[:3]
                phases = answer[3] if len(answer) > 3 else None
                self.cache.put(key, (density, interval, flow_value))
                solve_elapsed = time.perf_counter() - started
                self.metrics.observe_solve(algorithm, solve_elapsed)
                if phases:
                    self.metrics.observe_phases(algorithm, phases)
                return QueryReply(
                    id=request.id,
                    density=density,
                    interval=interval,
                    flow_value=flow_value,
                    cached=False,
                    epoch=epoch,
                    elapsed_ms=solve_elapsed * 1000.0,
                )
        finally:
            self.admission.release()
            self.metrics.set_queue_depth(self.admission.inflight)

    def _batch_key(
        self, epoch: int, source: Any, sink: Any, delta: int, plan: str
    ) -> tuple:
        """Per-entry cache key for batch answers.

        Planner answers are cached under the algorithm label ``"planner"``
        (kernel ``None``, transform ``"skeleton"`` — the planner always
        evaluates through compiled skeletons), so they can never collide
        with single-query engine entries; ``plan="independent"`` entries
        share the engine's default-algorithm key shape and therefore *do*
        interoperate with single-query caching.
        """
        if plan == "shared":
            return (epoch, source, sink, delta, "planner", None, "skeleton")
        algorithm = self.algorithm.lower()
        kernel = self.kernel if algorithm in KERNEL_ALGORITHMS else None
        transform = DEFAULT_TRANSFORM if algorithm in TRANSFORM_ALGORITHMS else None
        return (epoch, source, sink, delta, algorithm, kernel, transform)

    async def _handle_batch(self, request: BatchRequest) -> Reply:
        started = time.perf_counter()
        try:
            queries = [
                BurstingFlowQuery(source, sink, delta)
                for source, sink, delta in request.queries
            ]
        except ReproError as exc:
            return ErrorReply(request.id, ERROR_INVALID, str(exc))
        if request.plan not in BATCH_PLANS:
            # The wire parser rejects this too; guard the in-process path
            # so an unknown plan can never silently fall through to one of
            # the known evaluation strategies.
            return ErrorReply(
                request.id,
                ERROR_INVALID,
                f"plan must be one of {', '.join(BATCH_PLANS)}, "
                f"got {request.plan!r}",
            )

        try:
            self.admission.admit()
        except OverloadedError as exc:
            return ErrorReply(
                request.id,
                ERROR_OVERLOADED,
                str(exc),
                retry_after_ms=exc.retry_after_ms,
            )
        self.metrics.set_queue_depth(self.admission.inflight)
        try:
            deadline = self.admission.deadline_for(request.timeout)
            async with self._lock.read():
                epoch = self.network.epoch
                if request.min_epoch is not None and epoch < request.min_epoch:
                    return ErrorReply(
                        request.id,
                        ERROR_STALE,
                        f"epoch {epoch} is behind required "
                        f"min_epoch {request.min_epoch}",
                        retry_after_ms=25,
                        epoch=epoch,
                    )
                keys = [
                    self._batch_key(epoch, q.source, q.sink, q.delta, request.plan)
                    for q in queries
                ]
                answers: list[tuple | None] = [self.cache.get(key) for key in keys]
                cached_flags = [answer is not None for answer in answers]
                misses = [i for i, hit in enumerate(cached_flags) if not hit]
                planner: dict[str, Any] = {}
                if misses:
                    self.metrics.observe_miss()
                    try:
                        for index in misses:
                            queries[index].validate_against(self.network)
                        remaining = self.admission.remaining(deadline)
                        # Solving only the cache misses through the planner
                        # is sound: every answer is canonical per query, so
                        # a partial batch agrees with the full one.
                        raw, planner = await asyncio.wait_for(
                            self.engine.answer_batch(
                                tuple(
                                    (
                                        queries[i].source,
                                        queries[i].sink,
                                        queries[i].delta,
                                    )
                                    for i in misses
                                ),
                                request.plan,
                            ),
                            timeout=remaining,
                        )
                    except (asyncio.TimeoutError, DeadlineExceededError):
                        return ErrorReply(
                            request.id, ERROR_TIMEOUT, "request deadline exceeded"
                        )
                    except ReproError as exc:
                        return ErrorReply(request.id, ERROR_INVALID, str(exc))
                    except Exception as exc:  # noqa: BLE001 - report, don't crash
                        return ErrorReply(
                            request.id,
                            ERROR_INTERNAL,
                            f"{type(exc).__name__}: {exc}",
                        )
                    for position, index in enumerate(misses):
                        answers[index] = raw[position]
                        self.cache.put(keys[index], raw[position])
                    elapsed = time.perf_counter() - started
                    label = "planner" if request.plan == "shared" else self.algorithm
                    self.metrics.observe_solve(label, elapsed)
                else:
                    elapsed = time.perf_counter() - started
                    self.metrics.observe_hit(elapsed)
                planner = dict(planner)
                planner["cache_hits"] = len(queries) - len(misses)
                planner["cache_misses"] = len(misses)
                return BatchReply(
                    id=request.id,
                    results=tuple(
                        BatchAnswer(
                            density=answer[0],
                            interval=answer[1],
                            flow_value=answer[2],
                            cached=hit,
                        )
                        for answer, hit in zip(answers, cached_flags)
                    ),
                    epoch=epoch,
                    elapsed_ms=(time.perf_counter() - started) * 1000.0,
                    planner=planner,
                )
        finally:
            self.admission.release()
            self.metrics.set_queue_depth(self.admission.inflight)

    async def _handle_topk(self, request: TopKRequest) -> Reply:
        started = time.perf_counter()
        try:
            self.admission.admit()
        except OverloadedError as exc:
            return ErrorReply(
                request.id,
                ERROR_OVERLOADED,
                str(exc),
                retry_after_ms=exc.retry_after_ms,
            )
        self.metrics.set_queue_depth(self.admission.inflight)
        try:
            deadline = self.admission.deadline_for(request.timeout)
            async with self._lock.read():
                epoch = self.network.epoch
                if request.min_epoch is not None and epoch < request.min_epoch:
                    return ErrorReply(
                        request.id,
                        ERROR_STALE,
                        f"epoch {epoch} is behind required "
                        f"min_epoch {request.min_epoch}",
                        retry_after_ms=25,
                        epoch=epoch,
                    )
                # The ranking depends on the whole pair list (dedup order
                # included), so the reply is cached as one unit.
                key = (epoch, "topk", request.pairs, request.delta, request.k)
                raw = self.cache.get(key)
                cached = raw is not None
                if cached:
                    self.metrics.observe_hit(time.perf_counter() - started)
                else:
                    self.metrics.observe_miss()
                    try:
                        remaining = self.admission.remaining(deadline)
                        raw = await asyncio.wait_for(
                            self.engine.answer_topk(
                                request.pairs, request.delta, request.k
                            ),
                            timeout=remaining,
                        )
                    except (asyncio.TimeoutError, DeadlineExceededError):
                        return ErrorReply(
                            request.id, ERROR_TIMEOUT, "request deadline exceeded"
                        )
                    except ReproError as exc:
                        return ErrorReply(request.id, ERROR_INVALID, str(exc))
                    except Exception as exc:  # noqa: BLE001 - report, don't crash
                        return ErrorReply(
                            request.id,
                            ERROR_INTERNAL,
                            f"{type(exc).__name__}: {exc}",
                        )
                    self.cache.put(key, raw)
                    self.metrics.observe_solve(
                        "planner", time.perf_counter() - started
                    )
                return TopKReply(
                    id=request.id,
                    entries=tuple(
                        TopKBurst(
                            source=entry[0],
                            sink=entry[1],
                            delta=entry[2],
                            density=entry[3],
                            interval=tuple(entry[4]),
                            flow_value=entry[5],
                        )
                        for entry in raw
                    ),
                    epoch=epoch,
                    elapsed_ms=(time.perf_counter() - started) * 1000.0,
                    cached=cached,
                )
        finally:
            self.admission.release()
            self.metrics.set_queue_depth(self.admission.inflight)

    async def _handle_append(self, request: AppendRequest) -> Reply:
        applied: list[TemporalEdge] = []
        async with self._lock.write():
            try:
                for u, v, tau, capacity in request.edges:
                    edge = TemporalEdge(u, v, tau, capacity)
                    self.network.add_edge(edge)
                    applied.append(edge)
            except ReproError as exc:
                # Edges before the failing one are already in; surface the
                # new epoch so the client can resynchronise.
                self.cache.purge_epochs_below(self.network.epoch)
                return ErrorReply(request.id, ERROR_INVALID, str(exc))
            finally:
                if self.network.num_edges:
                    # Rebuild the lazy indexes while we hold the writer
                    # lock so concurrent readers never mutate them.
                    _ = self.network.timestamps
                # A shared-memory engine publishes exactly the edges that
                # made it in (commit order) instead of rebuilding its
                # pool; other engines ignore the argument.
                self.engine.mark_stale(applied)
                if self.mining is not None:
                    # Ingest the appended edges into the streaming stats
                    # while the writer lock guarantees a quiet network.
                    self.mining.sync()
            epoch = self.network.epoch
            invalidated = self.cache.purge_epochs_below(epoch)
        self.metrics.observe_append(len(request.edges))
        self.metrics.observe_invalidated(invalidated)
        return AppendReply(
            id=request.id,
            appended=len(request.edges),
            epoch=epoch,
            invalidated=invalidated,
        )

    async def _handle_scan(self, request: ScanRequest) -> Reply:
        started = time.perf_counter()
        if self.mining is None:
            return ErrorReply(
                request.id,
                ERROR_INVALID,
                "mining is not enabled on this server "
                "(start it with a pattern store)",
            )
        try:
            self.admission.admit()
        except OverloadedError as exc:
            return ErrorReply(
                request.id,
                ERROR_OVERLOADED,
                str(exc),
                retry_after_ms=exc.retry_after_ms,
            )
        self.metrics.set_queue_depth(self.admission.inflight)
        try:
            deadline = self.admission.deadline_for(request.timeout)
            async with self._lock.read():
                epoch = self.network.epoch
                if request.min_epoch is not None and epoch < request.min_epoch:
                    return ErrorReply(
                        request.id,
                        ERROR_STALE,
                        f"epoch {epoch} is behind required "
                        f"min_epoch {request.min_epoch}",
                        retry_after_ms=25,
                        epoch=epoch,
                    )
                # A scan has durable side effects (it persists patterns),
                # so it is never cached and scans are serialized among
                # themselves: concurrent scans would race on the shared
                # streaming statistics.
                mining = self.mining
                loop = asyncio.get_running_loop()
                async with self._scan_lock:
                    try:
                        remaining = self.admission.remaining(deadline)
                        outcome = await asyncio.wait_for(
                            loop.run_in_executor(
                                None,
                                lambda: mining.scan(
                                    request.delta,
                                    pairs=request.pairs,
                                    persist=request.persist,
                                    top=request.top,
                                    min_volume=request.min_volume,
                                ),
                            ),
                            timeout=remaining,
                        )
                    except (asyncio.TimeoutError, DeadlineExceededError):
                        return ErrorReply(
                            request.id, ERROR_TIMEOUT, "request deadline exceeded"
                        )
                    except ReproError as exc:
                        return ErrorReply(request.id, ERROR_INVALID, str(exc))
                    except Exception as exc:  # noqa: BLE001 - report, don't crash
                        return ErrorReply(
                            request.id,
                            ERROR_INTERNAL,
                            f"{type(exc).__name__}: {exc}",
                        )
                self.metrics.observe_solve(
                    "mining", time.perf_counter() - started
                )
                return ScanReply(
                    id=request.id,
                    new_ids=tuple(outcome.new_ids),
                    deduped=outcome.deduped,
                    funnel=outcome.funnel.as_dict(),
                    epoch=outcome.epoch,
                    elapsed_ms=(time.perf_counter() - started) * 1000.0,
                )
        finally:
            self.admission.release()
            self.metrics.set_queue_depth(self.admission.inflight)

    async def _handle_patterns(self, request: PatternsRequest) -> Reply:
        if self.mining is None:
            return ErrorReply(
                request.id,
                ERROR_INVALID,
                "mining is not enabled on this server "
                "(start it with a pattern store)",
            )
        # The pattern store is internally locked and the query is pure
        # read — no admission ticket or network lock needed.
        try:
            records = self.mining.patterns(
                source=request.source,
                sink=request.sink,
                since=request.since,
                until=request.until,
                min_density=request.min_density,
                limit=request.limit,
            )
        except ReproError as exc:
            return ErrorReply(request.id, ERROR_INVALID, str(exc))
        return PatternsReply(
            id=request.id,
            patterns=tuple(record.as_dict() for record in records),
        )

    # ------------------------------------------------------------------
    # TCP / HTTP front end
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(self._on_connection, host, port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (``start`` must have been called)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def drain(self, timeout: float = 30.0) -> bool:
        """Stop admitting work and wait for in-flight requests to finish.

        Returns True when the server drained fully within ``timeout``.
        """
        self._draining = True
        deadline = time.monotonic() + timeout
        while self.admission.inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        return self.admission.inflight == 0

    async def stop(self) -> None:
        """Close the listener and the engine backend."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.engine.close()

    async def __aenter__(self) -> "BurstingFlowService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            head = first.split(b" ", 1)[0]
            if head in (b"GET", b"POST", b"HEAD", b"PUT", b"DELETE"):
                await self._serve_http(first, reader, writer)
                return
            # NDJSON: the sniffed line is already the first request.
            line = first
            while line:
                if line.strip():
                    writer.write(await self.handle_raw(line))
                    await writer.drain()
                line = await reader.readline()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                # stop() closed the listener while this connection was
                # draining; the transport is already gone.
                pass

    async def _serve_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            method, target, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            _http_respond(writer, 400, {"error": "malformed request line"})
            await writer.drain()
            return
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    _http_respond(writer, 400, {"error": "bad Content-Length"})
                    await writer.drain()
                    return
        body = await reader.readexactly(content_length) if content_length else b""

        if method == "GET" and target in ("/metrics", "/metrics/"):
            self.metrics.count_request("metrics")
            _http_respond(writer, 200, self.snapshot())
        elif method == "GET" and target in ("/healthz", "/healthz/"):
            health = {
                "ok": not self._draining,
                "epoch": self.network.epoch,
                "draining": self._draining,
            }
            if self.replica_id is not None:
                health["replica"] = self.replica_id
            _http_respond(writer, 200 if health["ok"] else 503, health)
        elif method == "POST" and target in ("/drain", "/drain/"):
            self.metrics.count_request("drain")
            self._draining = True
            _http_respond(
                writer,
                200,
                {"draining": True, "inflight": self.admission.inflight},
            )
        elif method == "GET" and (
            target in ("/patterns", "/patterns/")
            or target.startswith("/patterns?")
        ):
            message = _patterns_message_from_target(target)
            payload = json.loads(await self.handle_raw(encode(message)))
            status = 200 if payload.get("ok") else _http_status(payload)
            _http_respond(writer, status, payload)
        elif method == "POST" and target in (
            "/query",
            "/append",
            "/batch",
            "/topk",
            "/scan",
            "/patterns",
            "/query/",
            "/append/",
            "/batch/",
            "/topk/",
            "/scan/",
            "/patterns/",
        ):
            payload = json.loads(await self.handle_raw(body))
            status = 200 if payload.get("ok") else _http_status(payload)
            _http_respond(writer, status, payload)
        else:
            _http_respond(
                writer,
                404,
                {"error": f"no route {method} {target}"},
            )
        await writer.drain()


def _patterns_message_from_target(target: str) -> dict[str, Any]:
    """Translate ``GET /patterns?...`` into a protocol ``patterns`` message.

    Query-string values arrive as strings; numeric filters are coerced
    (``since``/``until``/``limit`` to int, ``min_density`` to float) and
    left as-is otherwise so :func:`parse_request` reports the type error
    through the ordinary typed-reply path.
    """
    message: dict[str, Any] = {"v": 1, "id": "http", "op": "patterns"}
    query = urllib.parse.urlsplit(target).query
    for key, values in urllib.parse.parse_qs(query).items():
        value: Any = values[-1]
        if key in ("since", "until", "limit"):
            try:
                value = int(value)
            except ValueError:
                pass
        elif key == "min_density":
            try:
                value = float(value)
            except ValueError:
                pass
        message[key] = value
    return message


_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _http_status(payload: dict[str, Any]) -> int:
    kind = (payload.get("error") or {}).get("kind")
    if kind == ERROR_OVERLOADED:
        return 429
    if kind == ERROR_TIMEOUT:
        return 408
    if kind == ERROR_INTERNAL:
        return 500
    if kind == ERROR_STALE:
        return 503
    return 400


def _http_respond(
    writer: asyncio.StreamWriter, status: int, payload: dict[str, Any]
) -> None:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
