"""Service observability: counters, gauges and latency histograms.

:class:`ServiceMetrics` is the one instrument panel the server updates on
every request.  It is deliberately dependency-free and cheap — a lock,
a few ints and bounded deques — so it can sit on the hot path.  The
JSON-able :meth:`ServiceMetrics.snapshot` feeds three consumers:

* the ``GET /metrics`` endpoint and the ``op: "metrics"`` NDJSON request;
* the benchmark harness (``benchmarks/service_throughput.py``), which
  derives its cache-hit-rate and latency columns from it;
* the CI service-smoke job, which uploads it as a build artifact.

Latency quantiles are computed over a sliding window of the most recent
:data:`WINDOW` observations per histogram (exact order statistics, not
bucketed sketches — at service request rates the sort is negligible and
the numbers are honest).

Histograms sized *above* :data:`EXACT_WINDOW_LIMIT` (the open-loop load
harness records millions of observations per run) switch automatically
to a bounded-memory coarse path: a fixed array of logarithmic buckets
(~:data:`_BUCKET_GROWTH` relative width) accumulated over the whole
stream.  Quantiles then cost one O(buckets) walk instead of an
O(n log n) sort per snapshot, so ``/metrics`` never becomes its own
hotspot under load; the price is that quantiles are since-boot rather
than windowed and carry the bucket's relative error.  The two paths are
regression-tested to agree within that error on identical data.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Iterable, Mapping

#: Sliding-window size per latency histogram.
WINDOW = 4096

#: Windows larger than this switch to the coarse bounded-memory path.
EXACT_WINDOW_LIMIT = 8192

#: Coarse-path bucket geometry: bucket edges grow by this factor, so any
#: reported quantile is within ~4% of the exact order statistic.
_BUCKET_GROWTH = 1.04
#: Smallest representable latency (seconds); below it everything lands
#: in bucket 0.
_BUCKET_FLOOR = 1e-6
#: Bucket count: covers [1 microsecond, ~1000 seconds] at 4% steps.
_BUCKET_COUNT = int(math.log(1e9) / math.log(_BUCKET_GROWTH)) + 2
_LOG_GROWTH = math.log(_BUCKET_GROWTH)


class Counter:
    """A monotone counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, in-flight requests)."""

    __slots__ = ("value", "high_water")

    def __init__(self) -> None:
        self.value = 0
        self.high_water = 0

    def set(self, value: int) -> None:
        """Record the current value, tracking the high-water mark."""
        self.value = value
        if value > self.high_water:
            self.high_water = value


def _bucket_index(seconds: float) -> int:
    """The coarse-path bucket for one observation (clamped to range)."""
    if seconds <= _BUCKET_FLOOR:
        return 0
    index = int(math.log(seconds / _BUCKET_FLOOR) / _LOG_GROWTH) + 1
    return min(index, _BUCKET_COUNT - 1)


def _bucket_value(index: int) -> float:
    """A representative latency for one bucket (geometric midpoint)."""
    if index == 0:
        return _BUCKET_FLOOR
    return _BUCKET_FLOOR * _BUCKET_GROWTH ** (index - 0.5)


class LatencyHistogram:
    """Sliding-window latency quantiles plus lifetime totals.

    Windows up to :data:`EXACT_WINDOW_LIMIT` use exact order statistics
    over a deque of the most recent observations.  Larger windows (the
    load harness asks for millions) automatically switch to a fixed-size
    array of logarithmic buckets — bounded memory, O(buckets) quantiles,
    ~4% relative error, since-boot rather than windowed.  The
    :attr:`exact` flag reports which path is active.
    """

    __slots__ = ("count", "total_seconds", "max_seconds", "_window", "_buckets")

    def __init__(self, window: int = WINDOW) -> None:
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        if window <= EXACT_WINDOW_LIMIT:
            self._window: deque[float] | None = deque(maxlen=window)
            self._buckets: list[int] | None = None
        else:
            self._window = None
            self._buckets = [0] * _BUCKET_COUNT

    @property
    def exact(self) -> bool:
        """True on the exact sliding-window path, False on the coarse one."""
        return self._buckets is None

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        if self._buckets is not None:
            self._buckets[_bucket_index(seconds)] += 1
        else:
            assert self._window is not None
            self._window.append(seconds)

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile (0..1), or None before any observation.

        Exact path: the order statistic over the sliding window.
        Coarse path: the geometric midpoint of the bucket holding the
        q-th observation (within ~4% of exact, never windowed).
        """
        if self._buckets is not None:
            # Use the bucketed total, not the lifetime count: after a
            # mixed merge the buckets may hold only another histogram's
            # window, and the walk must rank within what it actually has.
            total = sum(self._buckets)
            if total == 0:
                return None
            target = min(total - 1, max(0, round(q * (total - 1))))
            running = 0
            for index, bucket_count in enumerate(self._buckets):
                running += bucket_count
                if running > target:
                    return _bucket_value(index)
            return _bucket_value(_BUCKET_COUNT - 1)  # pragma: no cover
        assert self._window is not None
        if not self._window:
            return None
        ordered = sorted(self._window)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict[str, Any]:
        """count / mean / p50 / p95 / p99, milliseconds."""
        if self._buckets is not None:

            def pick(q: float) -> float | None:
                value = self.quantile(q)
                return round(value * 1000.0, 6) if value is not None else None

        else:
            ordered = sorted(self._window or ())

            def pick(q: float) -> float | None:
                if not ordered:
                    return None
                index = min(
                    len(ordered) - 1, max(0, round(q * (len(ordered) - 1)))
                )
                return round(ordered[index] * 1000.0, 6)

        mean = self.total_seconds / self.count if self.count else None
        return {
            "count": self.count,
            "mean_ms": round(mean * 1000.0, 6) if mean is not None else None,
            "p50_ms": pick(0.50),
            "p95_ms": pick(0.95),
            "p99_ms": pick(0.99),
        }


class ServiceMetrics:
    """Every counter the delta-BFlow service maintains.

    Thread-safe: the event loop, worker completion callbacks and the
    (synchronous) oracle backend all update it under one lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests: dict[str, Counter] = {}
        self.errors: dict[str, Counter] = {}
        self.cache_hits = Counter()
        self.cache_misses = Counter()
        self.cache_invalidated = Counter()
        self.shed = Counter()
        self.timeouts = Counter()
        self.worker_restarts = Counter()
        self.appended_edges = Counter()
        #: Boot-time recovery: log records replayed (suffix-only when a
        #: snapshot seeded the state) and snapshot restores performed.
        self.replayed_records = Counter()
        self.snapshot_restores = Counter()
        self.queue_depth = Gauge()
        #: Per-algorithm solve latency (cache misses; full engine runs).
        self.solve_latency: dict[str, LatencyHistogram] = {}
        #: End-to-end latency of cache hits (lookup + serialization).
        self.hit_latency = LatencyHistogram()
        #: Per-algorithm cumulative engine phase seconds
        #: ({algorithm: {"transform": .., "maxflow": .., "prune": ..,
        #: "kernels": {kernel: ..}}}) — every entry is a flat float except
        #: the optional nested per-kernel split of the maxflow phase.
        self.phase_seconds: dict[str, dict[str, float | dict[str, float]]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count_request(self, op: str) -> None:
        """One request of the given op arrived."""
        with self._lock:
            self.requests.setdefault(op, Counter()).inc()

    def count_error(self, kind: str) -> None:
        """One typed error reply of the given kind was sent."""
        with self._lock:
            self.errors.setdefault(kind, Counter()).inc()
            if kind == "overloaded":
                self.shed.inc()
            elif kind == "timeout":
                self.timeouts.inc()

    def observe_solve(self, algorithm: str, seconds: float) -> None:
        """One full engine solve completed (cache miss path)."""
        with self._lock:
            self.solve_latency.setdefault(algorithm, LatencyHistogram()).observe(
                seconds
            )

    def observe_phases(
        self, algorithm: str, phases: dict[str, float | dict[str, float]]
    ) -> None:
        """Fold one solve's engine phase breakdown into the totals.

        Flat entries add; the nested ``"kernels"`` per-kernel dict merges
        key-wise (see :meth:`repro.core.query.QueryStats.phase_seconds`).
        """
        with self._lock:
            slot = self.phase_seconds.setdefault(algorithm, {})
            for phase, seconds in phases.items():
                if isinstance(seconds, dict):
                    nested = slot.setdefault(phase, {})
                    for name, amount in seconds.items():
                        nested[name] = nested.get(name, 0.0) + amount
                else:
                    slot[phase] = slot.get(phase, 0.0) + seconds

    def observe_hit(self, seconds: float) -> None:
        """One request was served from the result cache."""
        with self._lock:
            self.hit_latency.observe(seconds)
            self.cache_hits.inc()

    def observe_miss(self) -> None:
        """One query had to go to the engine workers."""
        with self._lock:
            self.cache_misses.inc()

    def observe_invalidated(self, entries: int) -> None:
        """An append invalidated ``entries`` cached answers."""
        with self._lock:
            self.cache_invalidated.inc(entries)

    def observe_append(self, edges: int) -> None:
        """One append of ``edges`` edges was applied."""
        with self._lock:
            self.appended_edges.inc(edges)

    def observe_restart(self) -> None:
        """A broken worker pool was rebuilt."""
        with self._lock:
            self.worker_restarts.inc()

    def observe_recovery(self, records: int, *, from_snapshot: bool) -> None:
        """One boot-time recovery replayed ``records`` log records
        (on top of a snapshot restore when ``from_snapshot``)."""
        with self._lock:
            self.replayed_records.inc(records)
            if from_snapshot:
                self.snapshot_restores.inc()

    def set_queue_depth(self, depth: int) -> None:
        """Record the number of admitted in-flight requests."""
        with self._lock:
            self.queue_depth.set(depth)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float | None:
        """hits / (hits + misses), or None before the first query."""
        total = self.cache_hits.value + self.cache_misses.value
        if total == 0:
            return None
        return self.cache_hits.value / total

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able point-in-time view of every metric.

        Schema (documented in ``docs/service.md``)::

            {"requests": {op: count}, "errors": {kind: count},
             "cache": {"hits": .., "misses": .., "hit_rate": ..,
                       "invalidated": ..},
             "queue": {"depth": .., "high_water": .., "shed": ..},
             "timeouts": .., "worker_restarts": .., "appended_edges": ..,
             "recovery": {"replayed_records": ..,
                          "snapshot_restores": ..},
             "latency": {"cache_hit": {histogram},
                         "solve": {algorithm: {histogram}}},
             "phases": {algorithm: {"transform": s, "maxflow": s,
                                    "prune": s,
                                    "kernels": {kernel: s}}}}

        where ``{histogram}`` is ``{"count", "mean_ms", "p50_ms",
        "p95_ms", "p99_ms"}``.
        """
        with self._lock:
            return {
                "requests": {op: c.value for op, c in sorted(self.requests.items())},
                "errors": {kind: c.value for kind, c in sorted(self.errors.items())},
                "cache": {
                    "hits": self.cache_hits.value,
                    "misses": self.cache_misses.value,
                    "hit_rate": self.cache_hit_rate,
                    "invalidated": self.cache_invalidated.value,
                },
                "queue": {
                    "depth": self.queue_depth.value,
                    "high_water": self.queue_depth.high_water,
                    "shed": self.shed.value,
                },
                "timeouts": self.timeouts.value,
                "worker_restarts": self.worker_restarts.value,
                "appended_edges": self.appended_edges.value,
                "recovery": {
                    "replayed_records": self.replayed_records.value,
                    "snapshot_restores": self.snapshot_restores.value,
                },
                "latency": {
                    "cache_hit": self.hit_latency.snapshot(),
                    "solve": {
                        algorithm: histogram.snapshot()
                        for algorithm, histogram in sorted(
                            self.solve_latency.items()
                        )
                    },
                },
                "phases": {
                    algorithm: {
                        phase: (
                            {
                                name: round(amount, 6)
                                for name, amount in sorted(seconds.items())
                            }
                            if isinstance(seconds, dict)
                            else round(seconds, 6)
                        )
                        for phase, seconds in sorted(slot.items())
                    }
                    for algorithm, slot in sorted(self.phase_seconds.items())
                },
            }


def aggregate_snapshots(snapshots: Mapping[str, Mapping[str, Any]]) -> dict[str, Any]:
    """Fold per-replica :meth:`ServiceMetrics.snapshot` dicts into one.

    Counters sum, the queue gauge sums current depths and takes the max
    high-water mark, latency histograms combine counts and weighted
    means (window order statistics are per-replica artifacts, so the
    aggregate reports count/mean only), and per-algorithm phase seconds
    add up.  The cluster coordinator serves this as the ``aggregate``
    section of its ``/metrics`` reply.
    """
    aggregate: dict[str, Any] = {
        "replicas": sorted(snapshots),
        "requests": {},
        "errors": {},
        "cache": {"hits": 0, "misses": 0, "hit_rate": None, "invalidated": 0},
        "queue": {"depth": 0, "high_water": 0, "shed": 0},
        "timeouts": 0,
        "worker_restarts": 0,
        "appended_edges": 0,
        "recovery": {"replayed_records": 0, "snapshot_restores": 0},
        "latency": {"cache_hit": {"count": 0, "mean_ms": None},
                    "solve": {}},
        "phases": {},
    }

    def _fold_histogram(slot: dict[str, Any], histogram: Mapping[str, Any]) -> None:
        count = histogram.get("count", 0) or 0
        mean = histogram.get("mean_ms")
        if count and mean is not None:
            total = (slot["mean_ms"] or 0.0) * slot["count"] + mean * count
            slot["count"] += count
            slot["mean_ms"] = round(total / slot["count"], 6)
        else:
            slot["count"] += count

    for snapshot in snapshots.values():
        for op, value in snapshot.get("requests", {}).items():
            aggregate["requests"][op] = aggregate["requests"].get(op, 0) + value
        for kind, value in snapshot.get("errors", {}).items():
            aggregate["errors"][kind] = aggregate["errors"].get(kind, 0) + value
        cache = snapshot.get("cache", {})
        for key in ("hits", "misses", "invalidated"):
            aggregate["cache"][key] += cache.get(key, 0) or 0
        queue = snapshot.get("queue", {})
        aggregate["queue"]["depth"] += queue.get("depth", 0) or 0
        aggregate["queue"]["high_water"] = max(
            aggregate["queue"]["high_water"], queue.get("high_water", 0) or 0
        )
        aggregate["queue"]["shed"] += queue.get("shed", 0) or 0
        for key in ("timeouts", "worker_restarts", "appended_edges"):
            aggregate[key] += snapshot.get(key, 0) or 0
        recovery = snapshot.get("recovery", {})
        for key in ("replayed_records", "snapshot_restores"):
            aggregate["recovery"][key] += recovery.get(key, 0) or 0
        latency = snapshot.get("latency", {})
        _fold_histogram(
            aggregate["latency"]["cache_hit"], latency.get("cache_hit", {})
        )
        for algorithm, histogram in latency.get("solve", {}).items():
            slot = aggregate["latency"]["solve"].setdefault(
                algorithm, {"count": 0, "mean_ms": None}
            )
            _fold_histogram(slot, histogram)
        for algorithm, phases in snapshot.get("phases", {}).items():
            slot = aggregate["phases"].setdefault(algorithm, {})
            for phase, seconds in phases.items():
                if isinstance(seconds, dict):
                    nested = slot.setdefault(phase, {})
                    for name, amount in seconds.items():
                        nested[name] = round(nested.get(name, 0.0) + amount, 6)
                else:
                    slot[phase] = round(slot.get(phase, 0.0) + seconds, 6)

    lookups = aggregate["cache"]["hits"] + aggregate["cache"]["misses"]
    if lookups:
        aggregate["cache"]["hit_rate"] = aggregate["cache"]["hits"] / lookups
    return aggregate


def merge_latencies(histograms: Iterable[LatencyHistogram]) -> LatencyHistogram:
    """Pool several histograms into one (used by the benchmark harness).

    Pooling exact histograms yields an exact histogram; pooling any
    coarse (bounded-memory) histogram yields a coarse one — bucket
    counts add, so the merged quantiles keep the same error bound.
    """
    histograms = list(histograms)
    exact = all(h.exact for h in histograms)
    merged = LatencyHistogram(WINDOW if exact else EXACT_WINDOW_LIMIT + 1)
    for histogram in histograms:
        merged.count += histogram.count
        merged.total_seconds += histogram.total_seconds
        merged.max_seconds = max(merged.max_seconds, histogram.max_seconds)
        if exact:
            assert merged._window is not None and histogram._window is not None
            for value in histogram._window:  # noqa: SLF001 - same module
                merged._window.append(value)
        elif histogram._buckets is not None:
            assert merged._buckets is not None
            for index, bucket_count in enumerate(histogram._buckets):
                merged._buckets[index] += bucket_count
        else:
            assert merged._buckets is not None and histogram._window is not None
            for value in histogram._window:  # noqa: SLF001 - same module
                merged._buckets[_bucket_index(value)] += 1
    return merged
