"""Admission control: bounded in-flight work, deadlines, load shedding.

The service never queues unboundedly.  :class:`AdmissionController`
tracks the number of admitted (in-flight) requests; when the bound is
reached, further requests are *shed immediately* with a typed
``overloaded`` reply instead of waiting — the client owns the retry
policy (the ``retry_after_ms`` hint scales with the depth of the queue,
a crude but monotone congestion signal).

Deadlines propagate: each admitted request gets an absolute deadline
``now + min(requested timeout, max_timeout)`` and every later stage
(cache lookup, worker wait) charges against it via :meth:`remaining`, so
a request that spent its budget queued behind a slow solve fails with a
typed ``timeout`` rather than occupying a worker for an answer nobody is
waiting for.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.service.protocol import DeadlineExceededError, OverloadedError


class AdmissionController:
    """Bounded admission with deadline bookkeeping.

    Args:
        max_pending: maximum admitted (in-flight) requests; further
            requests are shed with :class:`OverloadedError`.
        default_timeout: per-request budget (seconds) when the request
            does not carry its own ``timeout``.
        max_timeout: hard ceiling on any requested budget.
        clock: injectable monotonic clock.
    """

    def __init__(
        self,
        *,
        max_pending: int = 64,
        default_timeout: float = 30.0,
        max_timeout: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if default_timeout <= 0 or max_timeout <= 0:
            raise ValueError("timeouts must be positive seconds")
        self.max_pending = max_pending
        self.default_timeout = min(default_timeout, max_timeout)
        self.max_timeout = max_timeout
        self._clock = clock
        self._inflight = 0
        self.admitted_total = 0
        self.shed_total = 0

    @property
    def inflight(self) -> int:
        """Currently admitted requests (= the queue-depth gauge)."""
        return self._inflight

    def admit(self) -> None:
        """Take one admission slot.

        Raises:
            OverloadedError: the bound is reached; carries a
                ``retry_after_ms`` hint proportional to the queue depth.
        """
        if self._inflight >= self.max_pending:
            self.shed_total += 1
            raise OverloadedError(
                f"admission queue full ({self._inflight}/{self.max_pending} "
                f"in flight)",
                retry_after_ms=25 * (1 + self._inflight),
            )
        self._inflight += 1
        self.admitted_total += 1

    def release(self) -> None:
        """Return one admission slot."""
        if self._inflight <= 0:
            raise RuntimeError("release() without a matching admit()")
        self._inflight -= 1

    def deadline_for(self, requested_timeout: float | None) -> float:
        """The absolute (monotonic-clock) deadline for a new request."""
        budget = (
            self.default_timeout
            if requested_timeout is None
            else min(requested_timeout, self.max_timeout)
        )
        return self._clock() + budget

    def remaining(self, deadline: float) -> float:
        """Seconds left until ``deadline``.

        Raises:
            DeadlineExceededError: the deadline already passed.
        """
        left = deadline - self._clock()
        if left <= 0:
            raise DeadlineExceededError("request deadline exceeded")
        return left
