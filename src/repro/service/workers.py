"""Engine execution backends for the query service.

Two interchangeable backends answer ``(s, t, delta)`` queries for the
server; both expose the same ``await answer(...)`` coroutine returning
the raw ``(density, interval, flow_value)`` triple:

* :class:`ProcessEnginePool` — a :class:`~concurrent.futures.
  ProcessPoolExecutor` whose workers receive the shared network through
  ``initializer``/``initargs`` with an explicit ``mp_context``, the exact
  pattern :func:`repro.core.batch.answer_many` uses (every start method
  produces identical results).  The pool is **epoch-aware**: streaming
  appends bump the network epoch, and the next query transparently
  rebuilds the pool so workers never answer from a stale snapshot.  A
  :class:`BrokenProcessPool` (crashed/OOM-killed worker) is survived by
  rebuilding the pool once and resubmitting.

* :class:`InlineEngine` — a small thread pool running the solver on the
  *live* network object.  This is the default for modest deployments and
  for the differential-oracle backend: no pickling, no worker processes,
  and the server's reader/writer lock already serialises appends against
  in-flight queries.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable

from repro.core.engine import find_bursting_flow
from repro.core.query import BurstingFlowQuery
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork

#: A raw engine answer: (density, interval, flow_value, phase_seconds).
#: The trailing phase dict ({"transform": .., "maxflow": .., "prune": ..})
#: feeds the service's per-algorithm phase metrics; consumers that only
#: need the answer unpack ``answer[:3]``.
RawAnswer = tuple[
    float, "tuple[Timestamp, Timestamp] | None", float, dict[str, float]
]

# Per-worker state, installed by _init_service_worker in each pool
# process (initargs travel pickled for spawn/forkserver).
_WORKER_NETWORK: TemporalFlowNetwork | None = None


def _init_service_worker(network: TemporalFlowNetwork) -> None:
    """Pool initializer: install the service's network in this worker."""
    global _WORKER_NETWORK
    _WORKER_NETWORK = network
    # Build the lazy timestamp indexes once per worker instead of on the
    # first query it happens to receive.
    _ = network.timestamps


def _solve_one(
    source: NodeId,
    sink: NodeId,
    delta: int,
    algorithm: str,
    kernel: str | None,
) -> RawAnswer:
    """Worker task: one full engine solve on the installed network."""
    assert _WORKER_NETWORK is not None, "worker started outside the service"
    result = find_bursting_flow(
        _WORKER_NETWORK,
        BurstingFlowQuery(source, sink, delta),
        algorithm=algorithm,
        kernel=kernel,
    )
    return (
        result.density,
        result.interval,
        result.flow_value,
        result.stats.phase_seconds(),
    )


class ProcessEnginePool:
    """Epoch-aware process-pool engine backend with crash recovery.

    Args:
        network: the live network; re-shipped to workers whenever its
            epoch moves (the server guarantees the epoch is stable while
            answers are in flight via its reader/writer lock).
        processes: worker process count; ``0`` means ``os.cpu_count()``.
        mp_context: multiprocessing start method (``"fork"``,
            ``"forkserver"``, ``"spawn"``) or ``None`` for the platform
            default.
        on_restart: callback invoked whenever a broken pool is rebuilt.
    """

    def __init__(
        self,
        network: TemporalFlowNetwork,
        *,
        processes: int = 2,
        mp_context: str | None = None,
        on_restart: Callable[[], None] | None = None,
    ) -> None:
        if processes == 0:
            processes = os.cpu_count() or 1
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self._network = network
        self._processes = processes
        self._context = multiprocessing.get_context(mp_context)
        self._on_restart = on_restart
        self._pool: ProcessPoolExecutor | None = None
        self._pool_epoch = -1
        self._rebuild_lock = asyncio.Lock()
        self.restarts = 0

    # ------------------------------------------------------------------
    def _build_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self._processes,
            mp_context=self._context,
            initializer=_init_service_worker,
            initargs=(self._network,),
        )

    async def _ensure_fresh(self) -> ProcessPoolExecutor:
        """The current pool, rebuilt if the network epoch moved."""
        if self._pool is not None and self._pool_epoch == self._network.epoch:
            return self._pool
        async with self._rebuild_lock:
            if self._pool is None or self._pool_epoch != self._network.epoch:
                old = self._pool
                self._pool = self._build_pool()
                self._pool_epoch = self._network.epoch
                if old is not None:
                    old.shutdown(wait=False, cancel_futures=True)
        return self._pool

    async def answer(
        self,
        source: NodeId,
        sink: NodeId,
        delta: int,
        algorithm: str,
        kernel: str | None,
    ) -> RawAnswer:
        """Solve one query on a worker; survives one pool crash."""
        pool = await self._ensure_fresh()
        task = (source, sink, delta, algorithm, kernel)
        try:
            return await asyncio.wrap_future(pool.submit(_solve_one, *task))
        except BrokenProcessPool:
            # A worker died mid-solve.  Rebuild once and resubmit; a
            # second crash on the same query is systemic and propagates.
            async with self._rebuild_lock:
                if self._pool is pool:
                    self._pool = self._build_pool()
                    self._pool_epoch = self._network.epoch
                    pool.shutdown(wait=False, cancel_futures=True)
                    self.restarts += 1
                    if self._on_restart is not None:
                        self._on_restart()
                fresh = self._pool
            return await asyncio.wrap_future(fresh.submit(_solve_one, *task))

    def mark_stale(self) -> None:
        """Force a rebuild before the next answer (appends call this)."""
        self._pool_epoch = -1

    def close(self) -> None:
        """Shut the pool down."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


class InlineEngine:
    """Thread-pool engine backend solving on the live network.

    The server's reader/writer lock guarantees no append mutates the
    network while answers are in flight, and forces the lazy timestamp
    indexes after each append — so concurrent solves only ever *read*.
    """

    def __init__(
        self,
        network: TemporalFlowNetwork,
        *,
        threads: int = 2,
        on_restart: Callable[[], None] | None = None,
    ) -> None:
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self._network = network
        self._pool = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-service"
        )
        self.restarts = 0

    async def answer(
        self,
        source: NodeId,
        sink: NodeId,
        delta: int,
        algorithm: str,
        kernel: str | None,
    ) -> RawAnswer:
        """Solve one query on a worker thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool,
            lambda: _solve_inline(
                self._network, source, sink, delta, algorithm, kernel
            ),
        )

    def mark_stale(self) -> None:
        """No-op: inline solves always see the live network."""

    def close(self) -> None:
        """Shut the thread pool down."""
        self._pool.shutdown(wait=False, cancel_futures=True)


def _solve_inline(
    network: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    delta: int,
    algorithm: str,
    kernel: str | None,
) -> RawAnswer:
    result = find_bursting_flow(
        network,
        BurstingFlowQuery(source, sink, delta),
        algorithm=algorithm,
        kernel=kernel,
    )
    return (
        result.density,
        result.interval,
        result.flow_value,
        result.stats.phase_seconds(),
    )
